//! A scripted GDP session (§2 / Figure 3): draw with gestures, watch the
//! two-phase interaction bind parameters at recognition vs. manipulation
//! time, and render the scene.
//!
//! Run: `cargo run --example gdp_session`

use grandma::gdp::{render, Gdp, GdpConfig};
use grandma_geom::Transform;

fn main() {
    let mut gdp = Gdp::build(GdpConfig::default()).expect("training succeeds");

    // Figure 3's walkthrough: "The user presses the mouse button and
    // enters the rectangle gesture and then stops, holding the button
    // down. The gesture is recognized, and a rectangle is created ...
    // the latter endpoint can then be dragged by the mouse."
    let rect = gdp.sample_gesture("rectangle", 11);
    gdp.run_gesture_then_drag(&rect, &[(140.0, -40.0), (180.0, -90.0)], 300.0);

    // An ellipse: the center and initial size bind at recognition; the
    // manipulation drag then sets size and eccentricity (Figure 3).
    let ellipse = gdp
        .sample_gesture("ellipse", 3)
        .transformed(&Transform::translation(260.0, 30.0));
    let target = {
        let b = ellipse.bbox();
        (b.max_x + 18.0, b.max_y + 10.0)
    };
    gdp.run_gesture_then_drag(&ellipse, &[target], 300.0);
    let line = gdp
        .sample_gesture("line", 5)
        .transformed(&Transform::translation(-30.0, -30.0));
    gdp.run_gesture(&line);

    // A dot, then delete it by gesturing over it.
    let dot = gdp.sample_gesture("dot", 2);
    gdp.run_gesture(&dot);

    println!("interactions so far:");
    for trace in gdp.traces() {
        println!(
            "  {:12} via {:?}: recognized at {}/{} points, {} manipulation steps{}",
            trace.class_name,
            trace.transition,
            trace.points_at_recognition,
            trace.total_points,
            trace.manip_evaluations,
            if trace.errors.is_empty() {
                String::new()
            } else {
                format!(" (errors: {:?})", trace.errors)
            }
        );
    }

    let scene = gdp.scene().borrow();
    println!("\nscene: {} objects", scene.len());
    for obj in scene.iter() {
        let b = obj.shape.bbox();
        println!(
            "  #{} {:8} bbox [{:.0},{:.0}]..[{:.0},{:.0}]{}",
            obj.id,
            obj.shape.kind(),
            b.min_x,
            b.min_y,
            b.max_x,
            b.max_y,
            match obj.group {
                Some(g) => format!(" (group {g})"),
                None => String::new(),
            }
        );
    }

    let b = scene.bbox().expanded(10.0);
    println!("\nASCII rendering:");
    println!(
        "{}",
        render::ascii(&scene, 78, 24, (b.min_x, b.min_y, b.max_x, b.max_y))
    );
    println!("(render::svg(&scene) produces the same drawing as SVG)");
}
