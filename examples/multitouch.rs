//! The §6 multi-path extension: classify two-finger gestures and drive a
//! translate-rotate-scale manipulation, Sensor Frame style.
//!
//! Run: `cargo run --example multitouch`

use grandma::core::FeatureMask;
use grandma::gdp::{Scene, Shape};
use grandma::multipath::{trs_session, two_finger_gesture, MultiPathClassifier, TwoFingerKind};
use grandma_geom::Point;

fn main() {
    // 1. Train the multi-path classifier on the two-finger vocabulary.
    let training: Vec<Vec<_>> = TwoFingerKind::all()
        .iter()
        .enumerate()
        .map(|(k, &kind)| {
            (0..12)
                .map(|e| two_finger_gesture(kind, (k * 100 + e) as u64))
                .collect()
        })
        .collect();
    let classifier =
        MultiPathClassifier::train(&training, &FeatureMask::all(), 2).expect("training succeeds");

    let names = ["spread", "pinch", "rotate", "translate"];
    println!("two-finger gesture classification:");
    for (k, &kind) in TwoFingerKind::all().iter().enumerate() {
        let gesture = two_finger_gesture(kind, 9999 + k as u64);
        let class = classifier.classify(&gesture);
        // How early does the prefix margin stabilize? (the eager story
        // for multi-path gestures)
        let mut stable_at = gesture.min_len();
        for i in (4..gesture.min_len()).rev() {
            match classifier.classify_prefix(&gesture, i) {
                Some((c, margin)) if c == class && margin > 0.5 => stable_at = i,
                _ => break,
            }
        }
        println!(
            "  drew {:9} -> classified '{}' (stable from point {stable_at}/{})",
            names[k],
            names[class],
            gesture.min_len()
        );
    }

    // 2. Manipulation: a two-finger translate-rotate-scale session over a
    //    GDP rectangle.
    let mut scene = Scene::new();
    let rect = scene.create(Shape::rect(Point::xy(80.0, 80.0), Point::xy(120.0, 120.0)));
    println!(
        "\nrectangle before: {:?}",
        scene.get(rect).unwrap().shape.bbox()
    );

    let mut session = trs_session((Point::xy(70.0, 100.0), Point::xy(130.0, 100.0)));
    // Fingers spread apart and twist 90 degrees over the interaction.
    session.update(Point::xy(100.0, 40.0), Point::xy(100.0, 160.0));
    let transform = session.transform();
    scene.get_mut(rect).unwrap().shape.apply(&transform);
    let after = scene.get(rect).unwrap().shape.bbox();
    println!("rectangle after : {after:?}");
    println!(
        "(one two-finger motion translated, rotated, and scaled the object\n\
         simultaneously — §6's translate-rotate-scale gesture)"
    );
}
