//! Build a gesture interface for your own application: define a gesture
//! vocabulary with `PathBuilder`, synthesize training data, attach
//! `recog`/`manip`/`done` semantics to your own semantic object, and run
//! interactions through the GRANDMA toolkit.
//!
//! The toy application is a media player: a "play" caret, a "stop" box
//! gesture, and a "volume" stroke whose manipulation phase sets the level
//! with live feedback — the two-phase interaction on a non-drawing domain.
//!
//! Run: `cargo run --example custom_gestures`

use std::cell::RefCell;
use std::rc::Rc;

use grandma::core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma::events::{gesture_events, Button, DwellDetector};
use grandma::sem::{obj_ref, Expr, GestureSemantics, SemError, SemObject, Value};
use grandma::synth::{synthesize, PathBuilder, SynthRng, Variation};
use grandma::toolkit::{GestureClass, GestureHandler, GestureHandlerConfig, HandlerRef, Interface};
use grandma_geom::Gesture;

/// The application state, shared between the semantic object and `main`.
#[derive(Default)]
struct PlayerState {
    playing: bool,
    volume: f64,
    log: Vec<String>,
}

/// The semantic object gestures talk to.
struct Player(Rc<RefCell<PlayerState>>);

impl SemObject for Player {
    fn type_name(&self) -> &'static str {
        "Player"
    }
    fn send(&mut self, selector: &str, args: &[Value]) -> Result<Value, SemError> {
        let mut state = self.0.borrow_mut();
        match selector {
            "play" => {
                state.playing = true;
                state.log.push("play".into());
                Ok(Value::Bool(true))
            }
            "stop" => {
                state.playing = false;
                state.log.push("stop".into());
                Ok(Value::Bool(true))
            }
            "volumeFrom:to:" => {
                // Volume follows the vertical drag distance: live feedback
                // during the manipulation phase.
                let start_y = args[0].as_num().unwrap_or(0.0);
                let y = args[1].as_num().unwrap_or(0.0);
                state.volume = ((y - start_y) / 60.0).clamp(0.0, 1.0);
                Ok(Value::Num(state.volume))
            }
            "volumeDone" => {
                let volume = state.volume;
                state.log.push(format!("volume={volume:.2}"));
                Ok(Value::Nil)
            }
            _ => Err(SemError::unknown_selector(self.type_name(), selector)),
        }
    }
}

fn main() {
    // 1. The vocabulary: three single-stroke shapes.
    let specs = vec![
        (
            "play", // a caret: up-right then down-right
            PathBuilder::start(0.0, 0.0)
                .line_to(0.5, 0.7)
                .corner()
                .line_to(1.0, 0.0)
                .build(),
        ),
        (
            "stop", // three sides of a box, starting down
            PathBuilder::start(0.0, 0.0)
                .line_to(0.0, -0.8)
                .corner()
                .line_to(0.8, -0.8)
                .corner()
                .line_to(0.8, 0.0)
                .build(),
        ),
        (
            "volume", // a straight upward stroke
            PathBuilder::start(0.0, 0.0).line_to(0.0, 1.0).build(),
        ),
    ];

    // 2. Synthesize training data (in a real application these would be
    //    examples drawn by the user — "gesture recognizers automated").
    let mut rng = SynthRng::seed_from_u64(99);
    let variation = Variation::standard();
    let training: Vec<Vec<Gesture>> = specs
        .iter()
        .map(|(_, spec)| {
            (0..20)
                .map(|_| synthesize(spec, &variation, &mut rng).gesture)
                .collect()
        })
        .collect();
    let (recognizer, _) =
        EagerRecognizer::train(&training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");

    // 3. Semantics per class, against the Player object.
    let classes = vec![
        GestureClass::with_semantics(
            "play",
            GestureSemantics {
                recog: Expr::send(Expr::var("view"), "play", vec![]),
                manip: Expr::Nil,
                done: Expr::Nil,
            },
        ),
        GestureClass::with_semantics(
            "stop",
            GestureSemantics {
                recog: Expr::send(Expr::var("view"), "stop", vec![]),
                manip: Expr::Nil,
                done: Expr::Nil,
            },
        ),
        GestureClass::with_semantics(
            "volume",
            GestureSemantics {
                recog: Expr::Nil,
                manip: Expr::send(
                    Expr::var("view"),
                    "volumeFrom:to:",
                    vec![Expr::attr("startY"), Expr::attr("currentY")],
                ),
                done: Expr::send(Expr::var("view"), "volumeDone", vec![]),
            },
        ),
    ];

    // 4. Assemble the interface.
    let state = Rc::new(RefCell::new(PlayerState {
        volume: 0.3,
        ..PlayerState::default()
    }));
    let player = obj_ref(Player(state.clone()));
    let mut interface = Interface::new();
    interface.env_mut().bind("view", Value::Obj(player));
    let handler = Rc::new(RefCell::new(GestureHandler::new(
        Rc::new(recognizer),
        classes,
        GestureHandlerConfig::default(),
    )));
    let handler_dyn: HandlerRef = handler.clone();
    interface.attach_root_handler(handler_dyn);

    // 5. Replay one gesture of each kind.
    let mut rng = SynthRng::seed_from_u64(1234);
    for (name, spec) in &specs {
        let gesture = synthesize(spec, &variation, &mut rng).gesture;
        let mut dwell = DwellDetector::paper_default();
        for e in dwell.expand(&gesture_events(&gesture, Button::Left)) {
            interface.dispatch(&e);
        }
        let trace = handler.borrow().traces().last().cloned().expect("trace");
        println!(
            "drew '{name}': recognized as '{}' via {:?} at {}/{} points",
            trace.class_name, trace.transition, trace.points_at_recognition, trace.total_points
        );
    }

    // 6. The application saw it all.
    let state = state.borrow();
    println!("\napplication state after the session:");
    println!("  playing = {}", state.playing);
    println!("  volume  = {:.2}", state.volume);
    println!("  log     = {:?}", state.log);
}
