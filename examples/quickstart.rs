//! Quickstart: train a Rubine classifier and an eager recognizer on the
//! paper's eight-direction gesture set, then watch eager recognition fire
//! mid-gesture.
//!
//! Run: `cargo run --example quickstart`

use grandma::core::{Classifier, EagerConfig, EagerRecognizer, FeatureMask};
use grandma::synth::datasets;

fn main() {
    // 1. A dataset: eight two-segment gesture classes ("ru" = right,
    //    then up), 10 training and 5 test examples per class, synthesized
    //    deterministically from the seed.
    let data = datasets::eight_way(42, 10, 5);
    println!("classes: {:?}", data.class_names);

    // 2. The full classifier (§4.2): closed-form training over the
    //    thirteen incremental features.
    let classifier =
        Classifier::train(&data.training, &FeatureMask::all()).expect("training succeeds");
    let mut correct = 0;
    for labeled in &data.testing {
        let result = classifier.classify(&labeled.gesture);
        if result.class == labeled.class {
            correct += 1;
        }
    }
    println!(
        "full classifier: {correct}/{} test gestures correct",
        data.testing.len()
    );

    // 3. The eager recognizer (§4): the same machinery trained to answer
    //    "has enough of the gesture been seen?" on every mouse point.
    let (eager, report) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    println!(
        "eager training: {} subgestures labeled, {} moved as accidentally complete, \
         {} AUC classes",
        report.records.len(),
        report.move_outcome.moved,
        report.auc_classes.len()
    );

    // 4. Stream one gesture point by point; the session reports the class
    //    at the moment the prefix becomes unambiguous.
    let sample = &data.testing[0];
    let mut session = eager.session();
    for &point in sample.gesture.points() {
        if let Some(class) = session.feed(point) {
            println!(
                "eagerly recognized '{}' after {} of {} points ({:.0}% of the gesture)",
                data.class_names[class],
                session.points_seen(),
                sample.gesture.len(),
                100.0 * session.points_seen() as f64 / sample.gesture.len() as f64,
            );
            break;
        }
    }
    println!(
        "(truth: '{}'; the remaining points would drive the manipulation phase)",
        data.class_names[sample.class]
    );
}
