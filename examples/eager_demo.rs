//! Watch the ambiguous/unambiguous classifier work point by point on the
//! U/D example of Figures 5-7: both classes share a horizontal prelude and
//! only diverge after the corner.
//!
//! Run: `cargo run --example eager_demo`

use grandma::core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma::synth::datasets;

fn main() {
    let data = datasets::ud(7, 10, 2);
    let (eager, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");

    for labeled in &data.testing {
        println!(
            "gesture of class '{}', {} points:",
            data.class_names[labeled.class],
            labeled.gesture.len()
        );
        // Per-point verdicts: '.' while ambiguous, the class letter at the
        // moment of recognition, '-' afterwards (manipulation phase).
        let mut session = eager.session();
        let mut verdicts = String::new();
        for &p in labeled.gesture.points() {
            match session.feed(p) {
                Some(class) => verdicts.push_str(data.class_names[class]),
                None if session.decided().is_some() => verdicts.push('-'),
                None => verdicts.push('.'),
            }
        }
        println!("  {verdicts}");
        match session.recognition_point() {
            Some(at) => println!(
                "  -> unambiguous after {at} points; ground-truth corner at point {}\n",
                labeled.min_points.unwrap_or(0)
            ),
            None => {
                let class = session.finish().expect("classifies at mouse-up");
                println!(
                    "  -> stayed ambiguous; classified '{}' at mouse-up\n",
                    data.class_names[class]
                );
            }
        }
    }
    println!(
        "legend: '.' = still ambiguous (collection phase), class letter = the\n\
         eager recognition moment, '-' = manipulation phase."
    );
}
