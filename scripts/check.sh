#!/bin/sh
# Repo gate: build, test, chaos suite, lint. Run before every commit.
#
# Works fully offline. Clippy is skipped (with a warning) when the
# component is not installed, so the gate degrades gracefully on
# minimal toolchains.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

# The chaos suite already runs as part of the workspace tests above; two
# serve suites are worth calling out by name, and each runs once per
# reactor backend so both sides of the sys::Poller abstraction stay
# green: the loopback suite (64 concurrent TCP sessions held
# byte-identical to the in-process pipeline) and the wire v2 equivalence
# suite (batched EventBatch delivery byte-identical to single-Event
# delivery, over the in-process duplex transport and real TCP).
# An empty backend means the platform default (epoll on Linux).
for backend in "" poll; do
    label="${backend:-default}"
    for suite in loopback batch_equivalence; do
        echo "== serve $suite suite ($label backend) =="
        GRANDMA_POLL_BACKEND="$backend" \
            cargo test -p grandma-serve --test "$suite" -q
    done
done

# Fast-path smoke: a short serve_load run must finish with zero decode
# errors and zero busy rejections on both the batched and unbatched
# client disciplines, and the reactor (default backend: epoll on Linux)
# must hold a 256-connection sweep tier with zero connect failures and
# zero failed round trips.
echo "== serve_load smoke (batched + unbatched + 256-conn sweep) =="
cargo run -p grandma-bench --bin serve_load --release -- --smoke --connections 256

# Crash-safety drills (DESIGN.md §14). The chaos run forces mid-stream
# disconnects against an in-process service and holds the resume
# invariants; the kill drill SIGKILLs a real serve child mid-load,
# restarts it with --recover, and requires every session to resume and
# the control group to stay byte-identical.
echo "== serve_load chaos (reconnecting client, forced disconnects) =="
cargo run -p grandma-bench --bin serve_load --release -- --chaos

echo "== serve_load kill-recovery drill (SIGKILL + --recover) =="
cargo run -p grandma-bench --bin serve_load --release -- --kill-after-ms 400 --smoke

# Cluster drill (DESIGN.md §15): two registered nodes, consistent-hash
# routing, SIGKILL of the node owning the majority of sessions, WAL
# replay + live snapshot handoff to the ring successor, and every moved
# session must resume on the successor with zero cross-session
# contamination.
echo "== serve_load cluster drill (2 nodes, kill + handoff) =="
cargo run -p grandma-bench --bin serve_load --release -- --cluster 2 --kill-node --smoke

# grandma-lint is the always-on static-analysis gate: panic-freedom,
# wire-protocol lockstep, hot-path alloc/index hygiene, float-comparison
# and unsafe-code policy, plus the interprocedural concurrency rules
# (reactor-blocking-call, lock-order-cycle, guard-across-call) over the
# workspace call graph. Dependency-free, so it runs on any toolchain.
# The machine-readable report lands in target/lint-report.json (schema
# grandma-lint/2, including each finding's call chain) *before* the
# deny-warnings gate, so a red gate still leaves the full report behind
# for tooling. Any finding not covered by lint-baseline.txt (and any
# stale baseline entry) fails the gate; see DESIGN.md §12.
echo "== grandma-lint (json report -> target/lint-report.json) =="
mkdir -p target
cargo run -p grandma-lint --release -- --format json > target/lint-report.json || true
echo "== grandma-lint (static-analysis gate, deny warnings) =="
cargo run -p grandma-lint --release -- --deny-warnings

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
    # The interaction pipeline must not be able to panic on malformed
    # input: library code (not tests) in the recognition core, the linear
    # algebra kernel, the event substrate, the toolkit, and the serving
    # layer is held to a no-unwrap/no-expect/no-panic standard.
    echo "== clippy panic gate (core, linalg, events, toolkit, serve, cluster lib code) =="
    cargo clippy -p grandma-core -p grandma-linalg \
        -p grandma-events -p grandma-toolkit -p grandma-serve \
        -p grandma-cluster --lib --no-deps -- \
        -D warnings \
        -D clippy::unwrap_used \
        -D clippy::expect_used \
        -D clippy::panic
else
    echo "warning: clippy not installed; skipping lint" >&2
fi

echo "check.sh: all green"
