#!/bin/sh
# Repo gate: build, test, chaos suite, lint. Run before every commit.
#
# Works fully offline. Clippy is skipped (with a warning) when the
# component is not installed, so the gate degrades gracefully on
# minimal toolchains.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

echo "== chaos suite (seeded corrupted-stream replays) =="
cargo test --test chaos -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
    # The interaction pipeline must not be able to panic on malformed
    # input: library code (not tests) in the event substrate and the
    # toolkit is held to a no-unwrap/no-expect/no-panic standard.
    echo "== clippy panic gate (grandma-events, grandma-toolkit lib code) =="
    cargo clippy -p grandma-events -p grandma-toolkit --lib --no-deps -- \
        -D warnings \
        -D clippy::unwrap_used \
        -D clippy::expect_used \
        -D clippy::panic
else
    echo "warning: clippy not installed; skipping lint" >&2
fi

echo "check.sh: all green"
