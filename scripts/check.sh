#!/bin/sh
# Repo gate: build, test, lint. Run before every commit.
#
# Works fully offline. Clippy is skipped (with a warning) when the
# component is not installed, so the gate degrades gracefully on
# minimal toolchains.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace (quiet) =="
cargo test --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy --workspace --all-targets =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "warning: clippy not installed; skipping lint" >&2
fi

echo "check.sh: all green"
