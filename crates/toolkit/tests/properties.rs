//! Property-style tests for the dispatch layer: arbitrary event streams
//! must never wedge the interface, and the grab discipline must hold.
//!
//! Plain `#[test]` loops over a seeded xorshift generator (the build
//! environment is offline, so no proptest).

use std::cell::RefCell;
use std::rc::Rc;

use grandma_events::{Button, EventKind, InputEvent};
use grandma_geom::BBox;
use grandma_toolkit::{
    handler_ref, Ctx, DragHandler, EventHandler, HandlerResult, Interface, ViewStore,
};

/// Tiny deterministic PRNG (xorshift64*) for generating test cases.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Ev {
    Down(f64, f64),
    Move(f64, f64),
    Up(f64, f64),
    Timeout(f64, f64),
}

fn random_ev(rng: &mut TestRng) -> Ev {
    let x = rng.range(-50.0, 150.0);
    let y = rng.range(-50.0, 150.0);
    match rng.usize_in(0, 4) {
        0 => Ev::Down(x, y),
        1 => Ev::Move(x, y),
        2 => Ev::Up(x, y),
        _ => Ev::Timeout(x, y),
    }
}

fn to_input(ev: &Ev, t: f64) -> InputEvent {
    match *ev {
        Ev::Down(x, y) => InputEvent::new(
            EventKind::MouseDown {
                button: Button::Left,
            },
            x,
            y,
            t,
        ),
        Ev::Move(x, y) => InputEvent::new(EventKind::MouseMove, x, y, t),
        Ev::Up(x, y) => InputEvent::new(
            EventKind::MouseUp {
                button: Button::Left,
            },
            x,
            y,
            t,
        ),
        Ev::Timeout(x, y) => InputEvent::new(EventKind::Timeout, x, y, t),
    }
}

/// Records which handler instance saw each event.
struct Tap {
    tag: usize,
    log: Rc<RefCell<Vec<(usize, EventKind)>>>,
}

impl EventHandler for Tap {
    fn name(&self) -> &'static str {
        "tap"
    }
    fn wants(&self, _e: &InputEvent, _t: Option<usize>, _v: &ViewStore) -> bool {
        true
    }
    fn handle(&mut self, e: &InputEvent, _ctx: &mut Ctx<'_>) -> HandlerResult {
        self.log.borrow_mut().push((self.tag, e.kind));
        HandlerResult::Consumed
    }
}

#[test]
fn arbitrary_event_streams_never_panic() {
    let mut rng = TestRng::new(0x7001);
    for _ in 0..128 {
        let n = rng.usize_in(0, 80);
        let events: Vec<Ev> = (0..n).map(|_| random_ev(&mut rng)).collect();
        let mut interface = Interface::new();
        let view = interface
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let _ = view;
        interface.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Left)));
        for (i, ev) in events.iter().enumerate() {
            interface.dispatch(&to_input(ev, i as f64 * 10.0));
        }
        // Views remain valid afterwards.
        assert!(!interface.views().is_empty());
        let bounds = interface.views().iter().next().unwrap().bounds;
        assert!(bounds.min_x.is_finite() && bounds.max_y.is_finite());
    }
}

#[test]
fn grab_routes_a_whole_interaction_to_one_handler() {
    let mut rng = TestRng::new(0x7002);
    for _ in 0..128 {
        let n = rng.usize_in(1, 60);
        let events: Vec<Ev> = (0..n).map(|_| random_ev(&mut rng)).collect();
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut interface = Interface::new();
        let a = interface
            .views_mut()
            .add_view("A", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let b = interface
            .views_mut()
            .add_view("B", BBox::from_corners(70.0, 0.0, 140.0, 60.0));
        interface.attach_view_handler(
            a,
            handler_ref(Tap {
                tag: 1,
                log: log.clone(),
            }),
        );
        interface.attach_view_handler(
            b,
            handler_ref(Tap {
                tag: 2,
                log: log.clone(),
            }),
        );
        for (i, ev) in events.iter().enumerate() {
            interface.dispatch(&to_input(ev, i as f64 * 10.0));
        }
        // Between any down and the following up, all delivered events
        // carry the same handler tag.
        let log = log.borrow();
        let mut current: Option<usize> = None;
        for &(tag, kind) in log.iter() {
            match kind {
                EventKind::MouseDown { .. } => {
                    // A second down during a grab stays with the grab
                    // owner; otherwise it opens a new interaction.
                    match current {
                        Some(owner) => assert_eq!(owner, tag, "down leaked from a grab"),
                        None => current = Some(tag),
                    }
                }
                EventKind::MouseUp { .. } => {
                    if let Some(owner) = current {
                        assert_eq!(owner, tag, "up went to the wrong handler");
                    }
                    current = None;
                }
                _ => {
                    if let Some(owner) = current {
                        assert_eq!(owner, tag, "mid-interaction event leaked");
                    }
                }
            }
        }
    }
}

#[test]
fn pick_respects_view_bounds() {
    let mut rng = TestRng::new(0x7003);
    for _ in 0..256 {
        let x = rng.range(-50.0, 150.0);
        let y = rng.range(-50.0, 150.0);
        let mut interface = Interface::new();
        let v = interface
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let picked = interface.views().pick(x, y);
        let inside = (0.0..=60.0).contains(&x) && (0.0..=60.0).contains(&y);
        assert_eq!(picked.is_some(), inside);
        if let Some(id) = picked {
            assert_eq!(id, v);
        }
    }
}
