//! Property-based tests for the dispatch layer: arbitrary event streams
//! must never wedge the interface, and the grab discipline must hold.

use std::cell::RefCell;
use std::rc::Rc;

use grandma_events::{Button, EventKind, InputEvent};
use grandma_geom::BBox;
use grandma_toolkit::{
    handler_ref, Ctx, DragHandler, EventHandler, HandlerResult, Interface, ViewStore,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Ev {
    Down(f64, f64),
    Move(f64, f64),
    Up(f64, f64),
    Timeout(f64, f64),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    let xy = (-50.0f64..150.0, -50.0f64..150.0);
    prop_oneof![
        xy.clone().prop_map(|(x, y)| Ev::Down(x, y)),
        xy.clone().prop_map(|(x, y)| Ev::Move(x, y)),
        xy.clone().prop_map(|(x, y)| Ev::Up(x, y)),
        xy.prop_map(|(x, y)| Ev::Timeout(x, y)),
    ]
}

fn to_input(ev: &Ev, t: f64) -> InputEvent {
    match *ev {
        Ev::Down(x, y) => InputEvent::new(
            EventKind::MouseDown {
                button: Button::Left,
            },
            x,
            y,
            t,
        ),
        Ev::Move(x, y) => InputEvent::new(EventKind::MouseMove, x, y, t),
        Ev::Up(x, y) => InputEvent::new(
            EventKind::MouseUp {
                button: Button::Left,
            },
            x,
            y,
            t,
        ),
        Ev::Timeout(x, y) => InputEvent::new(EventKind::Timeout, x, y, t),
    }
}

/// Records which handler instance saw each event.
struct Tap {
    tag: usize,
    log: Rc<RefCell<Vec<(usize, EventKind)>>>,
}

impl EventHandler for Tap {
    fn name(&self) -> &'static str {
        "tap"
    }
    fn wants(&self, _e: &InputEvent, _t: Option<usize>, _v: &ViewStore) -> bool {
        true
    }
    fn handle(&mut self, e: &InputEvent, _ctx: &mut Ctx<'_>) -> HandlerResult {
        self.log.borrow_mut().push((self.tag, e.kind));
        HandlerResult::Consumed
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_event_streams_never_panic(events in proptest::collection::vec(ev_strategy(), 0..80)) {
        let mut interface = Interface::new();
        let view = interface.views_mut().add_view("Shape", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let _ = view;
        interface.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Left)));
        for (i, ev) in events.iter().enumerate() {
            interface.dispatch(&to_input(ev, i as f64 * 10.0));
        }
        // Views remain valid afterwards.
        prop_assert!(!interface.views().is_empty());
        let bounds = interface.views().iter().next().unwrap().bounds;
        prop_assert!(bounds.min_x.is_finite() && bounds.max_y.is_finite());
    }

    #[test]
    fn grab_routes_a_whole_interaction_to_one_handler(events in proptest::collection::vec(ev_strategy(), 1..60)) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut interface = Interface::new();
        let a = interface.views_mut().add_view("A", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let b = interface.views_mut().add_view("B", BBox::from_corners(70.0, 0.0, 140.0, 60.0));
        interface.attach_view_handler(a, handler_ref(Tap { tag: 1, log: log.clone() }));
        interface.attach_view_handler(b, handler_ref(Tap { tag: 2, log: log.clone() }));
        for (i, ev) in events.iter().enumerate() {
            interface.dispatch(&to_input(ev, i as f64 * 10.0));
        }
        // Between any down and the following up, all delivered events
        // carry the same handler tag.
        let log = log.borrow();
        let mut current: Option<usize> = None;
        for &(tag, kind) in log.iter() {
            match kind {
                EventKind::MouseDown { .. } => {
                    // A second down during a grab stays with the grab
                    // owner; otherwise it opens a new interaction.
                    match current {
                        Some(owner) => prop_assert_eq!(owner, tag, "down leaked from a grab"),
                        None => current = Some(tag),
                    }
                }
                EventKind::MouseUp { .. } => {
                    if let Some(owner) = current {
                        prop_assert_eq!(owner, tag, "up went to the wrong handler");
                    }
                    current = None;
                }
                _ => {
                    if let Some(owner) = current {
                        prop_assert_eq!(owner, tag, "mid-interaction event leaked");
                    }
                }
            }
        }
    }

    #[test]
    fn pick_respects_view_bounds(x in -50.0f64..150.0, y in -50.0f64..150.0) {
        let mut interface = Interface::new();
        let v = interface.views_mut().add_view("Shape", BBox::from_corners(0.0, 0.0, 60.0, 60.0));
        let picked = interface.views().pick(x, y);
        let inside = (0.0..=60.0).contains(&x) && (0.0..=60.0).contains(&y);
        prop_assert_eq!(picked.is_some(), inside);
        if let Some(id) = picked {
            prop_assert_eq!(id, v);
        }
    }
}
