#![forbid(unsafe_code)]
//! The GRANDMA architecture: Models, Views, and event-handler lists.
//!
//! §3: "GRANDMA is a Model/View/Controller-like system. In GRANDMA, models
//! are application objects, views are objects responsible for displaying
//! models, and event handlers deal with input directed at views. GRANDMA
//! generalizes MVC by allowing a list of event handlers (rather than a
//! single controller) to be associated with a view. Event handlers may be
//! associated with view classes as well, and are inherited."
//!
//! This crate reproduces that architecture headlessly:
//!
//! * [`ViewStore`] — views with bounds, z-order, class names, and attached
//!   models (semantic objects from `grandma-sem`).
//! * [`Interface`] — the dispatch loop: picks the view under a mouse-down,
//!   queries its per-view then per-class handler lists in order
//!   (unconsumed events propagate to the next handler, then to the root
//!   window's handlers), and routes the rest of the interaction to the
//!   handler that claimed it.
//! * [`DragHandler`] — the classic direct-manipulation interaction.
//! * [`GestureHandler`] — the paper's centrepiece: the two-phase
//!   collection→manipulation interaction, with all three phase-transition
//!   triggers (mouse-up, 200 ms dwell, eager recognition) and interpreted
//!   `recog`/`manip`/`done` semantics per gesture class.
//!
//! # Examples
//!
//! ```
//! use grandma_toolkit::{Interface, ViewStore};
//! use grandma_geom::BBox;
//!
//! let mut interface = Interface::new();
//! let id = interface
//!     .views_mut()
//!     .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
//! assert_eq!(interface.views().pick(5.0, 5.0), Some(id));
//! assert_eq!(interface.views().pick(50.0, 50.0), None);
//! ```

mod drag;
mod gesture_handler;
mod handler;
mod view;

pub use drag::DragHandler;
pub use gesture_handler::{
    GestureClass, GestureHandler, GestureHandlerConfig, InteractionOutcome, InteractionTrace,
    PhaseTransition,
};
pub use handler::{handler_ref, Ctx, EventHandler, HandlerRef, HandlerResult, Interface};
pub use view::{View, ViewId, ViewStore};
