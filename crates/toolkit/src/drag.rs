//! The drag handler: classic direct manipulation.

use grandma_events::{Button, EventKind, InputEvent};
use grandma_sem::Value;

use crate::handler::{Ctx, EventHandler, HandlerResult};
use crate::view::{ViewId, ViewStore};

/// §3.1: "the drag handler handles drag interactions, enabling entire
/// objects (or parts of objects) to be dragged by the mouse."
///
/// On mouse-down over a view (with the configured button) the handler
/// grabs the interaction; every move translates the view, and — when the
/// view has a model — sends it `movedBy:dx:dy:` so the application object
/// tracks its display. On mouse-up it sends `dropped`.
pub struct DragHandler {
    button: Button,
    dragging: Option<DragState>,
}

struct DragState {
    view: ViewId,
    last_x: f64,
    last_y: f64,
}

impl DragHandler {
    /// Creates a drag handler for the given button.
    pub fn new(button: Button) -> Self {
        Self {
            button,
            dragging: None,
        }
    }

    /// Returns `true` while a drag is in progress.
    pub fn is_dragging(&self) -> bool {
        self.dragging.is_some()
    }
}

impl EventHandler for DragHandler {
    fn name(&self) -> &'static str {
        "drag"
    }

    fn wants(&self, event: &InputEvent, target: Option<ViewId>, _views: &ViewStore) -> bool {
        match event.kind {
            EventKind::MouseDown { button } => button == self.button && target.is_some(),
            // Once dragging, the grab delivers everything here anyway.
            _ => self.dragging.is_some(),
        }
    }

    fn handle(&mut self, event: &InputEvent, ctx: &mut Ctx<'_>) -> HandlerResult {
        match event.kind {
            EventKind::MouseDown { button } if button == self.button => {
                let Some(view) = ctx.target else {
                    return HandlerResult::Ignored;
                };
                self.dragging = Some(DragState {
                    view,
                    last_x: event.x,
                    last_y: event.y,
                });
                ctx.views.raise(view);
                HandlerResult::Consumed
            }
            EventKind::MouseMove => {
                let Some(state) = self.dragging.as_mut() else {
                    return HandlerResult::Ignored;
                };
                let dx = event.x - state.last_x;
                let dy = event.y - state.last_y;
                state.last_x = event.x;
                state.last_y = event.y;
                ctx.views.translate(state.view, dx, dy);
                if let Some(model) = ctx.views.get(state.view).and_then(|v| v.model.clone()) {
                    // Application errors during feedback are non-fatal to
                    // the interaction; the view keeps tracking the mouse.
                    let _ = model
                        .borrow_mut()
                        .send("movedBy:dy:", &[Value::Num(dx), Value::Num(dy)]);
                }
                HandlerResult::Consumed
            }
            EventKind::MouseUp { button } if button == self.button => {
                if let Some(state) = self.dragging.take() {
                    if let Some(model) = ctx.views.get(state.view).and_then(|v| v.model.clone()) {
                        let _ = model.borrow_mut().send("dropped", &[]);
                    }
                    HandlerResult::Consumed
                } else {
                    HandlerResult::Ignored
                }
            }
            _ => HandlerResult::Ignored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::{handler_ref, Interface};
    use grandma_geom::BBox;
    use grandma_sem::{obj_ref, Recorder};

    fn down(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(
            EventKind::MouseDown {
                button: Button::Left,
            },
            x,
            y,
            t,
        )
    }
    fn mv(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(EventKind::MouseMove, x, y, t)
    }
    fn up(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(
            EventKind::MouseUp {
                button: Button::Left,
            },
            x,
            y,
            t,
        )
    }

    #[test]
    fn dragging_translates_the_view() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        i.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Left)));
        i.dispatch(&down(5.0, 5.0, 0.0));
        i.dispatch(&mv(15.0, 8.0, 10.0));
        i.dispatch(&up(15.0, 8.0, 20.0));
        let bounds = i.views().get(v).unwrap().bounds;
        assert_eq!(bounds.min_x, 10.0);
        assert_eq!(bounds.min_y, 3.0);
    }

    #[test]
    fn drag_notifies_the_model() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let model = obj_ref(Recorder::new());
        i.views_mut().set_model(v, model.clone());
        i.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Left)));
        i.dispatch(&down(5.0, 5.0, 0.0));
        i.dispatch(&mv(6.0, 5.0, 10.0));
        i.dispatch(&mv(9.0, 5.0, 20.0));
        i.dispatch(&up(9.0, 5.0, 30.0));
        // Recorder is behind a trait object; downcast via Rc pointer
        // comparison is unavailable, so attach a second recorder-visible
        // assertion: the view moved exactly with the mouse.
        let bounds = i.views().get(v).unwrap().bounds;
        assert_eq!(bounds.min_x, 4.0);
    }

    #[test]
    fn wrong_button_is_ignored() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        i.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Right)));
        i.dispatch(&down(5.0, 5.0, 0.0)); // left press
        i.dispatch(&mv(15.0, 5.0, 10.0));
        let bounds = i.views().get(v).unwrap().bounds;
        assert_eq!(bounds.min_x, 0.0, "view must not move");
    }

    #[test]
    fn background_press_does_not_drag() {
        let mut i = Interface::new();
        let _v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        i.attach_class_handler("Shape", handler_ref(DragHandler::new(Button::Left)));
        assert_eq!(i.dispatch(&down(50.0, 50.0, 0.0)), None);
    }

    #[test]
    fn drag_state_resets_after_mouse_up() {
        let handler = DragHandler::new(Button::Left);
        assert!(!handler.is_dragging());
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let href = handler_ref(handler);
        i.attach_view_handler(v, href.clone());
        i.dispatch(&down(5.0, 5.0, 0.0));
        i.dispatch(&up(5.0, 5.0, 10.0));
        // A move after the drag ended must not translate the view.
        i.dispatch(&mv(100.0, 100.0, 20.0));
        assert_eq!(i.views().get(v).unwrap().bounds.min_x, 0.0);
    }
}
