//! Views: the display-side objects input is directed at.

use std::collections::HashMap;

use grandma_geom::BBox;
use grandma_sem::ObjRef;

/// Identifier of a view within a [`ViewStore`].
pub type ViewId = usize;

/// A view: bounds on the virtual screen, a class name (handler lists can
/// attach to classes and are inherited by every member view), a z-order,
/// and optionally the model (application object) it displays.
pub struct View {
    /// The view's id.
    pub id: ViewId,
    /// The view class name, e.g. `"GdpTopView"` or `"Shape"`.
    pub class: &'static str,
    /// Screen bounds.
    pub bounds: BBox,
    /// Stacking order; higher values are picked first.
    pub z: i32,
    /// The model this view displays, if any.
    pub model: Option<ObjRef>,
}

/// The collection of live views plus picking.
#[derive(Default)]
pub struct ViewStore {
    views: HashMap<ViewId, View>,
    next_id: ViewId,
    next_z: i32,
}

impl ViewStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a view of the given class and bounds; returns its id.
    pub fn add_view(&mut self, class: &'static str, bounds: BBox) -> ViewId {
        let id = self.next_id;
        self.next_id += 1;
        self.next_z += 1;
        self.views.insert(
            id,
            View {
                id,
                class,
                bounds,
                z: self.next_z,
                model: None,
            },
        );
        id
    }

    /// Attaches a model object to a view. A no-op when the view no longer
    /// exists (it may have been deleted by a concurrent interaction; a
    /// late model attach must not take the interface down).
    pub fn set_model(&mut self, id: ViewId, model: ObjRef) {
        if let Some(view) = self.views.get_mut(&id) {
            view.model = Some(model);
        }
    }

    /// Removes a view; returns `true` if it existed.
    pub fn remove(&mut self, id: ViewId) -> bool {
        self.views.remove(&id).is_some()
    }

    /// Returns a view.
    pub fn get(&self, id: ViewId) -> Option<&View> {
        self.views.get(&id)
    }

    /// Returns a view mutably.
    pub fn get_mut(&mut self, id: ViewId) -> Option<&mut View> {
        self.views.get_mut(&id)
    }

    /// Returns the topmost view whose bounds contain `(x, y)`.
    pub fn pick(&self, x: f64, y: f64) -> Option<ViewId> {
        self.views
            .values()
            .filter(|v| v.bounds.contains(x, y))
            .max_by_key(|v| v.z)
            .map(|v| v.id)
    }

    /// Returns every view whose bounds are entirely inside `region`
    /// (z-order ascending) — the `<enclosed>` gestural attribute.
    pub fn enclosed_by(&self, region: &BBox) -> Vec<ViewId> {
        let mut hits: Vec<&View> = self
            .views
            .values()
            .filter(|v| region.contains_box(&v.bounds))
            .collect();
        hits.sort_by_key(|v| v.z);
        hits.iter().map(|v| v.id).collect()
    }

    /// Raises a view to the top of the stacking order.
    pub fn raise(&mut self, id: ViewId) {
        self.next_z += 1;
        let z = self.next_z;
        if let Some(v) = self.views.get_mut(&id) {
            v.z = z;
        }
    }

    /// Translates a view's bounds.
    pub fn translate(&mut self, id: ViewId, dx: f64, dy: f64) {
        if let Some(v) = self.views.get_mut(&id) {
            v.bounds = BBox {
                min_x: v.bounds.min_x + dx,
                min_y: v.bounds.min_y + dy,
                max_x: v.bounds.max_x + dx,
                max_y: v.bounds.max_y + dy,
            };
        }
    }

    /// Number of live views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Returns `true` when no views exist.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Iterates over views in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &View> {
        self.views.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::from_corners(x0, y0, x1, y1)
    }

    #[test]
    fn add_and_get_views() {
        let mut s = ViewStore::new();
        let a = s.add_view("A", b(0.0, 0.0, 10.0, 10.0));
        assert_eq!(s.get(a).unwrap().class, "A");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn pick_returns_topmost() {
        let mut s = ViewStore::new();
        let bottom = s.add_view("A", b(0.0, 0.0, 10.0, 10.0));
        let top = s.add_view("B", b(5.0, 5.0, 15.0, 15.0));
        assert_eq!(s.pick(7.0, 7.0), Some(top));
        assert_eq!(s.pick(1.0, 1.0), Some(bottom));
        assert_eq!(s.pick(20.0, 20.0), None);
    }

    #[test]
    fn raise_changes_pick_order() {
        let mut s = ViewStore::new();
        let first = s.add_view("A", b(0.0, 0.0, 10.0, 10.0));
        let _second = s.add_view("B", b(0.0, 0.0, 10.0, 10.0));
        s.raise(first);
        assert_eq!(s.pick(5.0, 5.0), Some(first));
    }

    #[test]
    fn enclosed_by_requires_full_containment() {
        let mut s = ViewStore::new();
        let inside = s.add_view("A", b(2.0, 2.0, 4.0, 4.0));
        let _partial = s.add_view("B", b(8.0, 8.0, 15.0, 15.0));
        let hits = s.enclosed_by(&b(0.0, 0.0, 10.0, 10.0));
        assert_eq!(hits, vec![inside]);
    }

    #[test]
    fn translate_moves_bounds() {
        let mut s = ViewStore::new();
        let v = s.add_view("A", b(0.0, 0.0, 10.0, 10.0));
        s.translate(v, 5.0, -2.0);
        let bounds = s.get(v).unwrap().bounds;
        assert_eq!(bounds.min_x, 5.0);
        assert_eq!(bounds.max_y, 8.0);
    }

    #[test]
    fn remove_deletes_view() {
        let mut s = ViewStore::new();
        let v = s.add_view("A", b(0.0, 0.0, 1.0, 1.0));
        assert!(s.remove(v));
        assert!(!s.remove(v));
        assert_eq!(s.pick(0.5, 0.5), None);
    }
}
