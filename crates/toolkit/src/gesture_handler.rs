//! The gesture handler: the two-phase interaction technique.
//!
//! §3.2: "the gesture handler implements the two-phase interaction
//! technique. Each instance of a gesture handler recognizes its own set of
//! gestures, and can have its own semantics associated with each gesture.
//! The handler is responsible for collecting and inking the gesture,
//! determining when the phase transition occurs, classifying the gesture,
//! and executing the gesture's semantics."
//!
//! The phase transition happens at the first of (§1):
//!
//! 1. the mouse button is released (the manipulation phase is omitted),
//! 2. a 200 ms motionless timeout (delivered as a synthesized
//!    [`grandma_events::EventKind::Timeout`] — see
//!    [`grandma_events::DwellDetector`]), or
//! 3. *eager recognition*: the collected prefix becomes unambiguous.
//!
//! On the transition the gesture is classified and the class's `recog`
//! expression is evaluated (its value bound to the variable `recog`);
//! every further mouse point evaluates `manip`; releasing the button
//! evaluates `done`.

use std::collections::HashMap;
use std::rc::Rc;

use grandma_core::{EagerRecognizer, FeatureExtractor, PointFilter};
use grandma_events::{Button, EventKind, InputEvent, StreamFault};
use grandma_geom::{Gesture, Point};
use grandma_sem::{eval, GestureSemantics, SemError, Value};

use crate::handler::{Ctx, EventHandler, HandlerResult};
use crate::view::{ViewId, ViewStore};

/// How the collection→manipulation transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseTransition {
    /// The prefix became unambiguous (transition 3).
    Eager,
    /// The 200 ms dwell timeout fired (transition 2).
    Timeout,
    /// The button was released first (transition 1; no manipulation
    /// phase).
    MouseUp,
    /// No transition ever happened: the interaction was cancelled while
    /// still collecting (grab break or fault budget exhausted).
    Aborted,
}

/// The terminal state every gesture interaction reaches — exactly one of
/// these per [`InteractionTrace`], no matter how malformed the event
/// stream was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionOutcome {
    /// Classified at mouse-up; the manipulation phase was omitted.
    Recognized,
    /// Classified mid-gesture (eager or timeout) and the manipulation
    /// phase ran to a clean mouse-up.
    Manipulated,
    /// Classification declined to act: estimated probability below
    /// [`GestureHandlerConfig::min_probability`], or the collected
    /// gesture's features were non-finite/degenerate.
    Rejected,
    /// The interaction was torn down without running its remaining
    /// semantics: a [`EventKind::GrabBreak`] arrived, or the per-
    /// interaction fault budget was exhausted.
    Cancelled,
}

/// One gesture class the handler recognizes: its name plus its
/// `recog`/`manip`/`done` semantics.
#[derive(Debug, Clone)]
pub struct GestureClass {
    /// Class name (diagnostics and traces).
    pub name: String,
    /// The class's interaction semantics.
    pub semantics: GestureSemantics,
}

impl GestureClass {
    /// A class with no-op semantics.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            semantics: GestureSemantics::noop(),
        }
    }

    /// A class with the given semantics.
    pub fn with_semantics(name: &str, semantics: GestureSemantics) -> Self {
        Self {
            name: name.to_string(),
            semantics,
        }
    }
}

/// Gesture-handler configuration.
#[derive(Debug, Clone)]
pub struct GestureHandlerConfig {
    /// Which button starts a gesture.
    pub button: Button,
    /// Whether eager recognition (transition 3) is enabled. Figure 3's
    /// walkthrough has it off; §5's evaluations have it on.
    pub eager: bool,
    /// Jitter filter: collected points closer than this to the previous
    /// kept point are discarded (Rubine used 3 px).
    pub min_point_distance: f64,
    /// Whether a mouse-down over the background (no view) starts a
    /// gesture. GDP gestures at the top window, so `true` there.
    pub over_background: bool,
    /// Optional rejection: minimum estimated probability for the
    /// classification to be acted upon.
    pub min_probability: Option<f64>,
    /// Maximum number of stream faults tolerated within one interaction
    /// (non-finite samples seen by the handler plus any faults reported
    /// via [`GestureHandler::note_faults`]). Exceeding it cancels the
    /// interaction: a corrupted-beyond-repair stream must not be
    /// classified.
    pub fault_budget: usize,
}

impl Default for GestureHandlerConfig {
    fn default() -> Self {
        Self {
            button: Button::Left,
            eager: true,
            min_point_distance: 3.0,
            over_background: true,
            min_probability: None,
            fault_budget: 8,
        }
    }
}

/// A record of one completed gesture interaction, for tests and traces.
#[derive(Debug, Clone)]
pub struct InteractionTrace {
    /// The recognized class, or `None` when rejected.
    pub class: Option<usize>,
    /// The class name ("?" when rejected).
    pub class_name: String,
    /// Which trigger caused the phase transition.
    pub transition: PhaseTransition,
    /// Points collected when classification fired.
    pub points_at_recognition: usize,
    /// Points in the whole interaction.
    pub total_points: usize,
    /// Number of `manip` evaluations that ran.
    pub manip_evaluations: usize,
    /// Semantic errors encountered (kept, not raised — an interaction
    /// must not wedge the interface).
    pub errors: Vec<SemError>,
    /// The terminal state the interaction reached.
    pub outcome: InteractionOutcome,
    /// Stream faults observed during this interaction: non-finite samples
    /// the handler skipped itself, plus anything the pipeline reported
    /// through [`GestureHandler::note_faults`].
    pub faults: Vec<StreamFault>,
}

/// The per-interaction session state machine.
///
/// ```text
/// Idle ──down──▶ Collecting ──transition──▶ Manipulating ──up──▶ Idle
///   ▲                │  │                       │    │
///   │                │  └──up (recognize/reject at up)──────────▶ Idle
///   │                └────grab-break / budget──▶ Draining ──end──┘
///   └──────grab-break / budget (from Manipulating) via Draining───┘
/// ```
///
/// `Draining` is the cancelled-but-still-grabbed state: the trace is
/// final (outcome [`InteractionOutcome::Cancelled`] or
/// [`InteractionOutcome::Rejected`]), no further semantics run, and the
/// handler swallows events until one that
/// [ends the interaction](InputEvent::ends_interaction) returns it to
/// `Idle`. Every path terminates in `Idle`.
enum State {
    Idle,
    Collecting {
        gesture: Gesture,
        extractor: FeatureExtractor,
        filter: PointFilter,
        target: Option<ViewId>,
    },
    Manipulating {
        trace: InteractionTrace,
        semantics: GestureSemantics,
        attrs: HashMap<String, Value>,
        total_points: usize,
    },
    Draining {
        trace: InteractionTrace,
    },
}

/// The gesture handler. Attach to a view, a view class, or the root
/// (§3.1's "mouse press over the background window is interpreted as
/// gesture" pattern).
pub struct GestureHandler {
    recognizer: Rc<EagerRecognizer>,
    classes: Vec<GestureClass>,
    config: GestureHandlerConfig,
    state: State,
    traces: Vec<InteractionTrace>,
    /// Fault log of the interaction in progress; attached to its trace
    /// when the interaction reaches a terminal state.
    faults: Vec<StreamFault>,
}

impl GestureHandler {
    /// Creates a gesture handler.
    ///
    /// `classes[c]` must line up with the recognizer's class indices.
    ///
    /// # Panics
    ///
    /// Panics if the class list length differs from the recognizer's
    /// class count.
    pub fn new(
        recognizer: Rc<EagerRecognizer>,
        classes: Vec<GestureClass>,
        config: GestureHandlerConfig,
    ) -> Self {
        assert_eq!(
            classes.len(),
            recognizer.full_classifier().num_classes(),
            "one GestureClass per recognizer class"
        );
        Self {
            recognizer,
            classes,
            config,
            state: State::Idle,
            traces: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Completed interaction traces, oldest first.
    pub fn traces(&self) -> &[InteractionTrace] {
        &self.traces
    }

    /// Clears accumulated traces.
    pub fn clear_traces(&mut self) {
        self.traces.clear();
    }

    /// `true` while an interaction is in progress (any non-idle state,
    /// including the cancelled-but-still-grabbed drain).
    pub fn interaction_in_progress(&self) -> bool {
        !matches!(self.state, State::Idle)
    }

    /// Reports stream faults (typically from an upstream
    /// [`grandma_events::EventSanitizer`]) against the interaction in
    /// progress. They are attached to the interaction's trace and count
    /// toward [`GestureHandlerConfig::fault_budget`]; exhausting the
    /// budget cancels the interaction. Faults reported while idle are
    /// dropped — there is no interaction to charge them to.
    pub fn note_faults(&mut self, faults: &[StreamFault]) {
        if faults.is_empty() || matches!(self.state, State::Idle) {
            return;
        }
        self.faults.extend_from_slice(faults);
        self.enforce_fault_budget();
    }

    /// Records one handler-detected fault and applies the budget.
    fn record_fault(&mut self, fault: StreamFault) {
        self.faults.push(fault);
        self.enforce_fault_budget();
    }

    /// Cancels the in-progress interaction when the fault budget is
    /// exhausted: the trace becomes final with
    /// [`InteractionOutcome::Cancelled`] and the handler drains the rest
    /// of the grab.
    fn enforce_fault_budget(&mut self) {
        if self.faults.len() <= self.config.fault_budget {
            return;
        }
        match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => {}
            State::Collecting { gesture, .. } => {
                self.state = State::Draining {
                    trace: Self::cancelled_trace(gesture.len()),
                };
            }
            State::Manipulating {
                mut trace,
                total_points,
                ..
            } => {
                trace.outcome = InteractionOutcome::Cancelled;
                trace.total_points = total_points;
                self.state = State::Draining { trace };
            }
            State::Draining { trace } => self.state = State::Draining { trace },
        }
    }

    /// Cancels the in-progress interaction *now* (grab break or corrupted
    /// ending event): the trace is finalized with
    /// [`InteractionOutcome::Cancelled`] and the handler returns to idle.
    fn cancel_interaction(&mut self) {
        match std::mem::replace(&mut self.state, State::Idle) {
            State::Idle => {}
            State::Collecting { gesture, .. } => {
                self.finish_interaction(Self::cancelled_trace(gesture.len()));
            }
            State::Manipulating {
                mut trace,
                total_points,
                ..
            } => {
                trace.outcome = InteractionOutcome::Cancelled;
                trace.total_points = total_points;
                self.finish_interaction(trace);
            }
            State::Draining { trace } => self.finish_interaction(trace),
        }
    }

    /// The trace of an interaction cancelled before any phase transition.
    fn cancelled_trace(points: usize) -> InteractionTrace {
        InteractionTrace {
            class: None,
            class_name: "?".to_string(),
            transition: PhaseTransition::Aborted,
            points_at_recognition: points,
            total_points: points,
            manip_evaluations: 0,
            errors: Vec::new(),
            outcome: InteractionOutcome::Cancelled,
            faults: Vec::new(),
        }
    }

    /// Finalizes an interaction: attaches the fault log, records the
    /// trace, and returns to idle. The single exit point of the state
    /// machine.
    fn finish_interaction(&mut self, mut trace: InteractionTrace) {
        trace.faults = std::mem::take(&mut self.faults);
        self.traces.push(trace);
        self.state = State::Idle;
    }

    /// Builds the gestural attribute map at the moment of recognition.
    fn attrs_at_recognition(gesture: &Gesture, views: &ViewStore) -> HashMap<String, Value> {
        let mut attrs = HashMap::new();
        if let (Some(first), Some(last)) = (gesture.first(), gesture.last()) {
            attrs.insert("startX".into(), Value::Num(first.x));
            attrs.insert("startY".into(), Value::Num(first.y));
            attrs.insert("startT".into(), Value::Num(first.t));
            attrs.insert("currentX".into(), Value::Num(last.x));
            attrs.insert("currentY".into(), Value::Num(last.y));
            attrs.insert("endX".into(), Value::Num(last.x));
            attrs.insert("endY".into(), Value::Num(last.y));
            attrs.insert("prevX".into(), Value::Num(last.x));
            attrs.insert("prevY".into(), Value::Num(last.y));
            attrs.insert("duration".into(), Value::Num(gesture.duration()));
            // Bounding-box attributes of the collected stroke: GDP's
            // ellipse centers itself on the gesture's extent.
            let bbox = gesture.bbox();
            let center = bbox.center();
            attrs.insert("centerX".into(), Value::Num(center.x));
            attrs.insert("centerY".into(), Value::Num(center.y));
            attrs.insert("halfWidth".into(), Value::Num(bbox.width() / 2.0));
            attrs.insert("halfHeight".into(), Value::Num(bbox.height() / 2.0));
            attrs.insert("bboxMinX".into(), Value::Num(bbox.min_x));
            attrs.insert("bboxMinY".into(), Value::Num(bbox.min_y));
            attrs.insert("bboxMaxX".into(), Value::Num(bbox.max_x));
            attrs.insert("bboxMaxY".into(), Value::Num(bbox.max_y));
            // Attributes the "modified GDP" maps to application
            // parameters: stroke length (line thickness) and initial angle
            // (rectangle orientation).
            attrs.insert("length".into(), Value::Num(gesture.path_length()));
            let third = gesture.points().get(2).copied().unwrap_or(*last);
            attrs.insert(
                "initialAngle".into(),
                Value::Num((third.y - first.y).atan2(third.x - first.x)),
            );
            // The set of models fully enclosed by the gesture's bounding
            // box (GDP's group operand).
            let enclosed: Vec<Value> = views
                .enclosed_by(&gesture.bbox())
                .into_iter()
                .filter_map(|id| views.get(id).and_then(|v| v.model.clone()))
                .map(Value::Obj)
                .collect();
            attrs.insert("enclosed".into(), Value::List(enclosed));
        }
        attrs
    }

    fn install_attrs(attrs: &HashMap<String, Value>, ctx: &mut Ctx<'_>) {
        let shared: Rc<HashMap<String, Value>> = Rc::new(attrs.clone());
        ctx.env
            .set_attr_source(Rc::new(move |name| shared.get(name).cloned()));
    }

    /// Performs the phase transition: classify, evaluate `recog`, move to
    /// the manipulation phase (unless the interaction already ended).
    ///
    /// Classification goes through the checked path: a gesture whose
    /// features come out non-finite (corrupted or degenerate input) is
    /// rejected explicitly rather than argmaxed over NaN.
    fn transition(
        &mut self,
        gesture: Gesture,
        target: Option<ViewId>,
        trigger: PhaseTransition,
        ctx: &mut Ctx<'_>,
    ) {
        let classification = self.recognizer.classify_full_checked(&gesture);
        let rejected = match &classification {
            None => true,
            Some(c) => self
                .config
                .min_probability
                .is_some_and(|p| c.probability < p),
        };
        let mut trace = InteractionTrace {
            class: if rejected {
                None
            } else {
                classification.as_ref().map(|c| c.class)
            },
            class_name: match (&classification, rejected) {
                (Some(c), false) => self.classes[c.class].name.clone(),
                _ => "?".to_string(),
            },
            transition: trigger,
            points_at_recognition: gesture.len(),
            total_points: gesture.len(),
            manip_evaluations: 0,
            errors: Vec::new(),
            outcome: if rejected {
                InteractionOutcome::Rejected
            } else if trigger == PhaseTransition::MouseUp {
                InteractionOutcome::Recognized
            } else {
                InteractionOutcome::Manipulated
            },
            faults: Vec::new(),
        };
        let Some(classification) = classification else {
            // Non-finite features: reject. The grab may still be live
            // (eager/timeout trigger), so drain until the stream ends the
            // interaction.
            if trigger == PhaseTransition::MouseUp {
                self.finish_interaction(trace);
            } else {
                self.state = State::Draining { trace };
            }
            return;
        };
        if rejected {
            if trigger == PhaseTransition::MouseUp {
                self.finish_interaction(trace);
            } else {
                self.state = State::Draining { trace };
            }
            return;
        }
        let semantics = self.classes[classification.class].semantics.clone();
        let attrs = Self::attrs_at_recognition(&gesture, ctx.views);
        // Bind `view` to the target view's model when it has one;
        // otherwise leave the application's existing binding (GDP binds
        // `view` to its top-level window object).
        if let Some(model) = target
            .and_then(|id| ctx.views.get(id))
            .and_then(|v| v.model.clone())
        {
            ctx.env.bind("view", Value::Obj(model));
        }
        Self::install_attrs(&attrs, ctx);
        match eval(&semantics.recog, ctx.env) {
            Ok(value) => ctx.env.bind("recog", value),
            Err(e) => trace.errors.push(e),
        }
        if trigger == PhaseTransition::MouseUp {
            // Manipulation omitted; run `done` immediately.
            match eval(&semantics.done, ctx.env) {
                Ok(_) => {}
                Err(e) => trace.errors.push(e),
            }
            self.finish_interaction(trace);
        } else {
            self.state = State::Manipulating {
                trace,
                semantics,
                attrs,
                total_points: gesture.len(),
            };
        }
    }
}

impl EventHandler for GestureHandler {
    fn name(&self) -> &'static str {
        "gesture"
    }

    fn wants(&self, event: &InputEvent, target: Option<ViewId>, _views: &ViewStore) -> bool {
        match event.kind {
            EventKind::MouseDown { button } => {
                button == self.config.button && (self.config.over_background || target.is_some())
            }
            _ => !matches!(self.state, State::Idle),
        }
    }

    fn handle(&mut self, event: &InputEvent, ctx: &mut Ctx<'_>) -> HandlerResult {
        let in_progress = !matches!(self.state, State::Idle);
        // A corrupted sample never reaches collection or semantics. If it
        // also ends the interaction (a NaN mouse-up), the end is honored
        // as a cancellation — the kind is trustworthy, the payload is not.
        if in_progress && !event.is_finite() {
            let fault = if event.x.is_finite() && event.y.is_finite() {
                StreamFault::NonFiniteTimestamp { repaired: false }
            } else {
                StreamFault::NonFiniteCoordinates {
                    t: event.t,
                    repaired: false,
                }
            };
            self.record_fault(fault);
            if event.ends_interaction() {
                self.cancel_interaction();
            }
            return HandlerResult::Consumed;
        }
        // A grab break unconditionally tears down whatever is in
        // progress; no further semantics run.
        if event.is_grab_break() {
            if in_progress {
                self.cancel_interaction();
                return HandlerResult::Consumed;
            }
            return HandlerResult::Ignored;
        }
        // Cancelled/rejected but still grabbed: swallow events until the
        // stream ends the interaction.
        if matches!(self.state, State::Draining { .. }) {
            if event.ends_interaction() {
                if let State::Draining { trace } =
                    std::mem::replace(&mut self.state, State::Idle)
                {
                    self.finish_interaction(trace);
                }
            }
            return HandlerResult::Consumed;
        }
        match (&mut self.state, event.kind) {
            (State::Idle, EventKind::MouseDown { button })
                if button == self.config.button && !event.is_finite() =>
            {
                // A corrupted down cannot anchor a gesture; stay idle.
                HandlerResult::Ignored
            }
            (State::Idle, EventKind::MouseDown { button }) if button == self.config.button => {
                let mut gesture = Gesture::new();
                let mut extractor = FeatureExtractor::new();
                let mut filter = PointFilter::new(self.config.min_point_distance);
                let p = Point::new(event.x, event.y, event.t);
                filter.accept(&p);
                gesture.push(p);
                extractor.update(p);
                self.state = State::Collecting {
                    gesture,
                    extractor,
                    filter,
                    target: ctx.target,
                };
                HandlerResult::Consumed
            }
            (State::Idle, _) => HandlerResult::Ignored,
            (
                State::Collecting {
                    gesture,
                    extractor,
                    filter,
                    target,
                },
                EventKind::MouseMove,
            ) => {
                let p = Point::new(event.x, event.y, event.t);
                if !filter.accept(&p) {
                    return HandlerResult::Consumed;
                }
                gesture.push(p);
                extractor.update(p);
                let min_points = self.recognizer.config().min_subgesture_points;
                if self.config.eager && extractor.count() >= min_points {
                    let features =
                        extractor.masked_features(self.recognizer.full_classifier().mask());
                    if self.recognizer.auc().is_unambiguous(&features) {
                        let gesture = std::mem::take(gesture);
                        let target = *target;
                        self.transition(gesture, target, PhaseTransition::Eager, ctx);
                    }
                }
                HandlerResult::Consumed
            }
            (
                State::Collecting {
                    gesture, target, ..
                },
                EventKind::Timeout,
            ) => {
                let gesture = std::mem::take(gesture);
                let target = *target;
                self.transition(gesture, target, PhaseTransition::Timeout, ctx);
                HandlerResult::Consumed
            }
            (
                State::Collecting {
                    gesture, target, ..
                },
                EventKind::MouseUp { button },
            ) if button == self.config.button => {
                let gesture = std::mem::take(gesture);
                let target = *target;
                self.transition(gesture, target, PhaseTransition::MouseUp, ctx);
                HandlerResult::Consumed
            }
            (State::Collecting { .. }, EventKind::MouseDown { .. }) => {
                // A second down mid-collection is a stream defect (the
                // sanitizer demotes these upstream); on the raw path it is
                // recorded and otherwise ignored.
                self.record_fault(StreamFault::DuplicateMouseDown { t: event.t });
                HandlerResult::Consumed
            }
            (State::Collecting { .. }, _) => HandlerResult::Consumed,
            (
                State::Manipulating {
                    trace,
                    semantics,
                    attrs,
                    total_points,
                },
                EventKind::MouseMove,
            ) => {
                *total_points += 1;
                // The previous mouse position, so `manip` semantics can
                // express incremental dragging (`moveFromX:y:toX:y:`).
                let prev_x = attrs
                    .get("currentX")
                    .cloned()
                    .unwrap_or(Value::Num(event.x));
                let prev_y = attrs
                    .get("currentY")
                    .cloned()
                    .unwrap_or(Value::Num(event.y));
                attrs.insert("prevX".into(), prev_x);
                attrs.insert("prevY".into(), prev_y);
                attrs.insert("currentX".into(), Value::Num(event.x));
                attrs.insert("currentY".into(), Value::Num(event.y));
                attrs.insert("currentT".into(), Value::Num(event.t));
                Self::install_attrs(attrs, ctx);
                let manip = semantics.manip.clone();
                match eval(&manip, ctx.env) {
                    Ok(_) => trace.manip_evaluations += 1,
                    Err(e) => trace.errors.push(e),
                }
                HandlerResult::Consumed
            }
            (State::Manipulating { .. }, EventKind::MouseUp { button })
                if button == self.config.button =>
            {
                if let State::Manipulating {
                    mut trace,
                    semantics,
                    attrs,
                    total_points,
                } = std::mem::replace(&mut self.state, State::Idle)
                {
                    trace.total_points = total_points;
                    Self::install_attrs(&attrs, ctx);
                    match eval(&semantics.done, ctx.env) {
                        Ok(_) => {}
                        Err(e) => trace.errors.push(e),
                    }
                    self.finish_interaction(trace);
                }
                HandlerResult::Consumed
            }
            (State::Manipulating { .. }, _) => HandlerResult::Consumed,
            // Draining is fully handled before the match; this arm exists
            // only to keep the state machine exhaustive.
            (State::Draining { .. }, _) => HandlerResult::Consumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::Interface;
    use grandma_core::{EagerConfig, FeatureMask};
    use grandma_events::{gesture_events, gesture_events_with_hold, DwellDetector};
    use grandma_sem::{obj_ref, Expr, Recorder};
    use std::cell::RefCell;

    /// Two L-shaped classes: right-then-up (0), right-then-down (1).
    fn training() -> Vec<Vec<Gesture>> {
        let make = |sign: f64, jiggle: f64| {
            let mut pts = Vec::new();
            for i in 0..10 {
                pts.push(Point::new(
                    i as f64 * 8.0 + jiggle * (i % 3) as f64,
                    jiggle * (i % 2) as f64,
                    i as f64 * 10.0,
                ));
            }
            for i in 1..10 {
                pts.push(Point::new(
                    72.0 + jiggle,
                    sign * i as f64 * 8.0,
                    90.0 + i as f64 * 10.0,
                ));
            }
            Gesture::from_points(pts)
        };
        vec![
            (0..10).map(|e| make(1.0, 0.1 + e as f64 * 0.05)).collect(),
            (0..10).map(|e| make(-1.0, 0.1 + e as f64 * 0.05)).collect(),
        ]
    }

    fn recognizer() -> Rc<EagerRecognizer> {
        let (rec, _) =
            EagerRecognizer::train(&training(), &FeatureMask::all(), &EagerConfig::default())
                .unwrap();
        Rc::new(rec)
    }

    fn handler_with(
        recorder_msgs: &GestureSemantics,
        config: GestureHandlerConfig,
    ) -> (Interface, Rc<RefCell<GestureHandler>>, grandma_sem::ObjRef) {
        let mut interface = Interface::new();
        let app = obj_ref(Recorder::new());
        interface.env_mut().bind("view", Value::Obj(app.clone()));
        let classes = vec![
            GestureClass::with_semantics("ru", recorder_msgs.clone()),
            GestureClass::named("rd"),
        ];
        let gh = Rc::new(RefCell::new(GestureHandler::new(
            recognizer(),
            classes,
            config,
        )));
        let gh_dyn: HandlerRef = gh.clone();
        interface.attach_root_handler(gh_dyn);
        (interface, gh, app)
    }

    use crate::handler::HandlerRef;

    fn semantics_counting() -> GestureSemantics {
        GestureSemantics {
            recog: Expr::send(Expr::var("view"), "recognized", vec![]),
            manip: Expr::send(
                Expr::var("view"),
                "manip:y:",
                vec![Expr::attr("currentX"), Expr::attr("currentY")],
            ),
            done: Expr::send(Expr::var("view"), "done", vec![]),
        }
    }

    fn run_gesture(interface: &mut Interface, g: &Gesture, hold: Option<(usize, f64)>) {
        let events = match hold {
            None => gesture_events(g, Button::Left),
            Some((at, ms)) => gesture_events_with_hold(g, Button::Left, Some((at, ms))),
        };
        let mut dwell = DwellDetector::paper_default();
        for e in dwell.expand(&events) {
            interface.dispatch(&e);
        }
    }

    #[test]
    fn eager_transition_enters_manipulation_early() {
        let (mut interface, gh, app) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][0];
        run_gesture(&mut interface, g, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.class, Some(0));
        assert_eq!(trace.transition, PhaseTransition::Eager);
        assert!(trace.points_at_recognition < trace.total_points);
        assert!(trace.errors.is_empty(), "errors: {:?}", trace.errors);
        assert!(trace.manip_evaluations > 0);
        let app = app.borrow();
        let _ = app.type_name();
    }

    #[test]
    fn mouse_up_transition_omits_manipulation() {
        let config = GestureHandlerConfig {
            eager: false,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][1];
        run_gesture(&mut interface, g, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.transition, PhaseTransition::MouseUp);
        assert_eq!(trace.manip_evaluations, 0);
        assert_eq!(trace.points_at_recognition, trace.total_points);
    }

    #[test]
    fn dwell_timeout_triggers_transition() {
        let config = GestureHandlerConfig {
            eager: false,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][2];
        // Hold still for 300 ms after point 12 (past the corner).
        run_gesture(&mut interface, g, Some((12, 300.0)));
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.transition, PhaseTransition::Timeout);
        assert_eq!(trace.class, Some(0));
        assert!(trace.points_at_recognition <= 13);
        assert!(trace.manip_evaluations > 0, "manipulation follows the hold");
    }

    #[test]
    fn eager_fires_before_timeout_would() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][3];
        run_gesture(&mut interface, g, Some((15, 400.0)));
        let gh = gh.borrow();
        assert_eq!(gh.traces()[0].transition, PhaseTransition::Eager);
    }

    #[test]
    fn recog_value_is_bound_to_recog_variable() {
        let semantics = GestureSemantics {
            recog: Expr::num(42.0),
            manip: Expr::Nil,
            done: Expr::Nil,
        };
        let (mut interface, _, _) = handler_with(&semantics, GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        assert_eq!(
            interface.env().lookup("recog").unwrap().as_num(),
            Some(42.0)
        );
    }

    #[test]
    fn semantic_errors_are_collected_not_fatal() {
        let semantics = GestureSemantics {
            recog: Expr::var("no_such_variable"),
            manip: Expr::Nil,
            done: Expr::Nil,
        };
        let (mut interface, gh, _) = handler_with(&semantics, GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        let gh = gh.borrow();
        assert_eq!(gh.traces().len(), 1, "interaction completed despite error");
        assert!(!gh.traces()[0].errors.is_empty());
    }

    #[test]
    fn consecutive_interactions_reset_state() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        run_gesture(&mut interface, &training()[1][0], None);
        let gh = gh.borrow();
        assert_eq!(gh.traces().len(), 2);
        assert_eq!(gh.traces()[0].class, Some(0));
        assert_eq!(gh.traces()[1].class, Some(1));
    }

    #[test]
    fn rejection_threshold_suppresses_semantics() {
        let config = GestureHandlerConfig {
            eager: false,
            min_probability: Some(1.1), // impossible: always reject
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        run_gesture(&mut interface, &training()[0][0], None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.class, None);
        assert_eq!(trace.class_name, "?");
    }

    #[test]
    fn grab_break_cancels_collection_without_semantics() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][0];
        let mut events = gesture_events(g, Button::Left);
        // Replace everything from point 5 on with a grab break.
        events.truncate(5);
        let t = events.last().map_or(0.0, |e| e.t) + 1.0;
        events.push(InputEvent::new(EventKind::GrabBreak, 0.0, 0.0, t));
        for e in &events {
            interface.dispatch(e);
        }
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.outcome, InteractionOutcome::Cancelled);
        assert_eq!(trace.transition, PhaseTransition::Aborted);
        assert_eq!(trace.class, None);
        assert_eq!(trace.manip_evaluations, 0);
        assert!(!gh.interaction_in_progress(), "must return to idle");
    }

    #[test]
    fn grab_break_cancels_manipulation_and_releases_the_grab() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][0];
        let events = gesture_events(g, Button::Left);
        // Feed all but the mouse-up, then break the grab.
        for e in &events[..events.len() - 1] {
            interface.dispatch(e);
        }
        let t = events[events.len() - 2].t + 1.0;
        interface.dispatch(&InputEvent::new(EventKind::GrabBreak, 0.0, 0.0, t));
        {
            let gh = gh.borrow();
            let trace = &gh.traces()[0];
            assert_eq!(trace.outcome, InteractionOutcome::Cancelled);
            assert_eq!(trace.transition, PhaseTransition::Eager);
            assert!(!gh.interaction_in_progress());
        }
        // The interface grab is released: the next gesture works normally.
        run_gesture(&mut interface, &training()[1][0], None);
        let gh = gh.borrow();
        assert_eq!(gh.traces().len(), 2);
        assert_eq!(gh.traces()[1].class, Some(1));
    }

    #[test]
    fn non_finite_samples_are_skipped_and_logged() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][0];
        let events = gesture_events(g, Button::Left);
        for (i, e) in events.iter().enumerate() {
            interface.dispatch(e);
            if i == 3 {
                // Inject a corrupted move mid-collection.
                interface.dispatch(&InputEvent::new(
                    EventKind::MouseMove,
                    f64::NAN,
                    10.0,
                    e.t + 0.5,
                ));
            }
        }
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.class, Some(0), "clean samples still classify");
        assert_eq!(trace.faults.len(), 1);
        assert!(matches!(
            trace.faults[0],
            StreamFault::NonFiniteCoordinates { .. }
        ));
    }

    #[test]
    fn fault_budget_exhaustion_cancels_the_interaction() {
        let config = GestureHandlerConfig {
            fault_budget: 2,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][0];
        let events = gesture_events(g, Button::Left);
        for (i, e) in events.iter().enumerate() {
            interface.dispatch(e);
            if i < 4 {
                // One corrupted sample after each of the first four
                // events: blows a budget of 2 mid-collection.
                interface.dispatch(&InputEvent::new(
                    EventKind::MouseMove,
                    f64::INFINITY,
                    0.0,
                    e.t + 0.5,
                ));
            }
        }
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.outcome, InteractionOutcome::Cancelled);
        assert!(trace.faults.len() > 2);
        assert!(!gh.interaction_in_progress());
    }

    #[test]
    fn note_faults_counts_toward_the_budget() {
        let config = GestureHandlerConfig {
            fault_budget: 1,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][0];
        let events = gesture_events(g, Button::Left);
        interface.dispatch(&events[0]);
        interface.dispatch(&events[1]);
        gh.borrow_mut().note_faults(&[
            StreamFault::NonFiniteTimestamp { repaired: true },
            StreamFault::DuplicateMouseDown { t: 5.0 },
        ]);
        for e in &events[2..] {
            interface.dispatch(e);
        }
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.outcome, InteractionOutcome::Cancelled);
        assert_eq!(trace.faults.len(), 2);
    }

    #[test]
    fn note_faults_while_idle_is_dropped() {
        let (_, gh, _) = handler_with(&semantics_counting(), GestureHandlerConfig::default());
        gh.borrow_mut()
            .note_faults(&[StreamFault::NonFiniteTimestamp { repaired: false }]);
        assert!(!gh.borrow().interaction_in_progress());
        assert!(gh.borrow().traces().is_empty());
    }

    #[test]
    fn outcomes_map_to_transitions() {
        // Mouse-up transition → Recognized; eager transition → Manipulated.
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        let eager_cfg = GestureHandlerConfig {
            eager: false,
            ..GestureHandlerConfig::default()
        };
        let (mut iface2, gh2, _) = handler_with(&semantics_counting(), eager_cfg);
        run_gesture(&mut iface2, &training()[0][1], None);
        assert_eq!(
            gh.borrow().traces()[0].outcome,
            InteractionOutcome::Manipulated
        );
        assert_eq!(
            gh2.borrow().traces()[0].outcome,
            InteractionOutcome::Recognized
        );
    }

    #[test]
    fn rejection_outcome_is_terminal_and_returns_to_idle() {
        let config = GestureHandlerConfig {
            min_probability: Some(1.1),
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        run_gesture(&mut interface, &training()[0][0], None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.outcome, InteractionOutcome::Rejected);
        assert_eq!(trace.class, None);
        assert!(!gh.interaction_in_progress());
    }

    #[test]
    fn jitter_filter_drops_close_points() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        // A gesture whose points are all within 1 px: only the first
        // survives the 3 px filter, so classification happens at mouse-up
        // with one point.
        let tiny = Gesture::from_xy(&[(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)], 10.0);
        run_gesture(&mut interface, &tiny, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.points_at_recognition, 1);
    }
}
