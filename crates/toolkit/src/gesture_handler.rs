//! The gesture handler: the two-phase interaction technique.
//!
//! §3.2: "the gesture handler implements the two-phase interaction
//! technique. Each instance of a gesture handler recognizes its own set of
//! gestures, and can have its own semantics associated with each gesture.
//! The handler is responsible for collecting and inking the gesture,
//! determining when the phase transition occurs, classifying the gesture,
//! and executing the gesture's semantics."
//!
//! The phase transition happens at the first of (§1):
//!
//! 1. the mouse button is released (the manipulation phase is omitted),
//! 2. a 200 ms motionless timeout (delivered as a synthesized
//!    [`grandma_events::EventKind::Timeout`] — see
//!    [`grandma_events::DwellDetector`]), or
//! 3. *eager recognition*: the collected prefix becomes unambiguous.
//!
//! On the transition the gesture is classified and the class's `recog`
//! expression is evaluated (its value bound to the variable `recog`);
//! every further mouse point evaluates `manip`; releasing the button
//! evaluates `done`.

use std::collections::HashMap;
use std::rc::Rc;

use grandma_core::{EagerRecognizer, FeatureExtractor, PointFilter};
use grandma_events::{Button, EventKind, InputEvent};
use grandma_geom::{Gesture, Point};
use grandma_sem::{eval, GestureSemantics, SemError, Value};

use crate::handler::{Ctx, EventHandler, HandlerResult};
use crate::view::{ViewId, ViewStore};

/// How the collection→manipulation transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseTransition {
    /// The prefix became unambiguous (transition 3).
    Eager,
    /// The 200 ms dwell timeout fired (transition 2).
    Timeout,
    /// The button was released first (transition 1; no manipulation
    /// phase).
    MouseUp,
}

/// One gesture class the handler recognizes: its name plus its
/// `recog`/`manip`/`done` semantics.
#[derive(Debug, Clone)]
pub struct GestureClass {
    /// Class name (diagnostics and traces).
    pub name: String,
    /// The class's interaction semantics.
    pub semantics: GestureSemantics,
}

impl GestureClass {
    /// A class with no-op semantics.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            semantics: GestureSemantics::noop(),
        }
    }

    /// A class with the given semantics.
    pub fn with_semantics(name: &str, semantics: GestureSemantics) -> Self {
        Self {
            name: name.to_string(),
            semantics,
        }
    }
}

/// Gesture-handler configuration.
#[derive(Debug, Clone)]
pub struct GestureHandlerConfig {
    /// Which button starts a gesture.
    pub button: Button,
    /// Whether eager recognition (transition 3) is enabled. Figure 3's
    /// walkthrough has it off; §5's evaluations have it on.
    pub eager: bool,
    /// Jitter filter: collected points closer than this to the previous
    /// kept point are discarded (Rubine used 3 px).
    pub min_point_distance: f64,
    /// Whether a mouse-down over the background (no view) starts a
    /// gesture. GDP gestures at the top window, so `true` there.
    pub over_background: bool,
    /// Optional rejection: minimum estimated probability for the
    /// classification to be acted upon.
    pub min_probability: Option<f64>,
}

impl Default for GestureHandlerConfig {
    fn default() -> Self {
        Self {
            button: Button::Left,
            eager: true,
            min_point_distance: 3.0,
            over_background: true,
            min_probability: None,
        }
    }
}

/// A record of one completed gesture interaction, for tests and traces.
#[derive(Debug, Clone)]
pub struct InteractionTrace {
    /// The recognized class, or `None` when rejected.
    pub class: Option<usize>,
    /// The class name ("?" when rejected).
    pub class_name: String,
    /// Which trigger caused the phase transition.
    pub transition: PhaseTransition,
    /// Points collected when classification fired.
    pub points_at_recognition: usize,
    /// Points in the whole interaction.
    pub total_points: usize,
    /// Number of `manip` evaluations that ran.
    pub manip_evaluations: usize,
    /// Semantic errors encountered (kept, not raised — an interaction
    /// must not wedge the interface).
    pub errors: Vec<SemError>,
}

enum State {
    Idle,
    Collecting {
        gesture: Gesture,
        extractor: FeatureExtractor,
        filter: PointFilter,
        target: Option<ViewId>,
    },
    Manipulating {
        trace: InteractionTrace,
        semantics: GestureSemantics,
        attrs: HashMap<String, Value>,
        total_points: usize,
    },
}

/// The gesture handler. Attach to a view, a view class, or the root
/// (§3.1's "mouse press over the background window is interpreted as
/// gesture" pattern).
pub struct GestureHandler {
    recognizer: Rc<EagerRecognizer>,
    classes: Vec<GestureClass>,
    config: GestureHandlerConfig,
    state: State,
    traces: Vec<InteractionTrace>,
}

impl GestureHandler {
    /// Creates a gesture handler.
    ///
    /// `classes[c]` must line up with the recognizer's class indices.
    ///
    /// # Panics
    ///
    /// Panics if the class list length differs from the recognizer's
    /// class count.
    pub fn new(
        recognizer: Rc<EagerRecognizer>,
        classes: Vec<GestureClass>,
        config: GestureHandlerConfig,
    ) -> Self {
        assert_eq!(
            classes.len(),
            recognizer.full_classifier().num_classes(),
            "one GestureClass per recognizer class"
        );
        Self {
            recognizer,
            classes,
            config,
            state: State::Idle,
            traces: Vec::new(),
        }
    }

    /// Completed interaction traces, oldest first.
    pub fn traces(&self) -> &[InteractionTrace] {
        &self.traces
    }

    /// Clears accumulated traces.
    pub fn clear_traces(&mut self) {
        self.traces.clear();
    }

    /// Builds the gestural attribute map at the moment of recognition.
    fn attrs_at_recognition(gesture: &Gesture, views: &ViewStore) -> HashMap<String, Value> {
        let mut attrs = HashMap::new();
        if let (Some(first), Some(last)) = (gesture.first(), gesture.last()) {
            attrs.insert("startX".into(), Value::Num(first.x));
            attrs.insert("startY".into(), Value::Num(first.y));
            attrs.insert("startT".into(), Value::Num(first.t));
            attrs.insert("currentX".into(), Value::Num(last.x));
            attrs.insert("currentY".into(), Value::Num(last.y));
            attrs.insert("endX".into(), Value::Num(last.x));
            attrs.insert("endY".into(), Value::Num(last.y));
            attrs.insert("prevX".into(), Value::Num(last.x));
            attrs.insert("prevY".into(), Value::Num(last.y));
            attrs.insert("duration".into(), Value::Num(gesture.duration()));
            // Bounding-box attributes of the collected stroke: GDP's
            // ellipse centers itself on the gesture's extent.
            let bbox = gesture.bbox();
            let center = bbox.center();
            attrs.insert("centerX".into(), Value::Num(center.x));
            attrs.insert("centerY".into(), Value::Num(center.y));
            attrs.insert("halfWidth".into(), Value::Num(bbox.width() / 2.0));
            attrs.insert("halfHeight".into(), Value::Num(bbox.height() / 2.0));
            attrs.insert("bboxMinX".into(), Value::Num(bbox.min_x));
            attrs.insert("bboxMinY".into(), Value::Num(bbox.min_y));
            attrs.insert("bboxMaxX".into(), Value::Num(bbox.max_x));
            attrs.insert("bboxMaxY".into(), Value::Num(bbox.max_y));
            // Attributes the "modified GDP" maps to application
            // parameters: stroke length (line thickness) and initial angle
            // (rectangle orientation).
            attrs.insert("length".into(), Value::Num(gesture.path_length()));
            let third = gesture.points().get(2).copied().unwrap_or(*last);
            attrs.insert(
                "initialAngle".into(),
                Value::Num((third.y - first.y).atan2(third.x - first.x)),
            );
            // The set of models fully enclosed by the gesture's bounding
            // box (GDP's group operand).
            let enclosed: Vec<Value> = views
                .enclosed_by(&gesture.bbox())
                .into_iter()
                .filter_map(|id| views.get(id).and_then(|v| v.model.clone()))
                .map(Value::Obj)
                .collect();
            attrs.insert("enclosed".into(), Value::List(enclosed));
        }
        attrs
    }

    fn install_attrs(attrs: &HashMap<String, Value>, ctx: &mut Ctx<'_>) {
        let shared: Rc<HashMap<String, Value>> = Rc::new(attrs.clone());
        ctx.env
            .set_attr_source(Rc::new(move |name| shared.get(name).cloned()));
    }

    /// Performs the phase transition: classify, evaluate `recog`, move to
    /// the manipulation phase (unless the interaction already ended).
    fn transition(
        &mut self,
        gesture: Gesture,
        target: Option<ViewId>,
        trigger: PhaseTransition,
        ctx: &mut Ctx<'_>,
    ) {
        let classification = self.recognizer.classify_full(&gesture);
        let rejected = self
            .config
            .min_probability
            .is_some_and(|p| classification.probability < p);
        let mut trace = InteractionTrace {
            class: (!rejected).then_some(classification.class),
            class_name: if rejected {
                "?".to_string()
            } else {
                self.classes[classification.class].name.clone()
            },
            transition: trigger,
            points_at_recognition: gesture.len(),
            total_points: gesture.len(),
            manip_evaluations: 0,
            errors: Vec::new(),
        };
        if rejected {
            self.traces.push(trace);
            self.state = State::Idle;
            return;
        }
        let semantics = self.classes[classification.class].semantics.clone();
        let attrs = Self::attrs_at_recognition(&gesture, ctx.views);
        // Bind `view` to the target view's model when it has one;
        // otherwise leave the application's existing binding (GDP binds
        // `view` to its top-level window object).
        if let Some(model) = target
            .and_then(|id| ctx.views.get(id))
            .and_then(|v| v.model.clone())
        {
            ctx.env.bind("view", Value::Obj(model));
        }
        Self::install_attrs(&attrs, ctx);
        match eval(&semantics.recog, ctx.env) {
            Ok(value) => ctx.env.bind("recog", value),
            Err(e) => trace.errors.push(e),
        }
        if trigger == PhaseTransition::MouseUp {
            // Manipulation omitted; run `done` immediately.
            match eval(&semantics.done, ctx.env) {
                Ok(_) => {}
                Err(e) => trace.errors.push(e),
            }
            self.traces.push(trace);
            self.state = State::Idle;
        } else {
            self.state = State::Manipulating {
                trace,
                semantics,
                attrs,
                total_points: gesture.len(),
            };
        }
    }
}

impl EventHandler for GestureHandler {
    fn name(&self) -> &'static str {
        "gesture"
    }

    fn wants(&self, event: &InputEvent, target: Option<ViewId>, _views: &ViewStore) -> bool {
        match event.kind {
            EventKind::MouseDown { button } => {
                button == self.config.button && (self.config.over_background || target.is_some())
            }
            _ => !matches!(self.state, State::Idle),
        }
    }

    fn handle(&mut self, event: &InputEvent, ctx: &mut Ctx<'_>) -> HandlerResult {
        match (&mut self.state, event.kind) {
            (State::Idle, EventKind::MouseDown { button }) if button == self.config.button => {
                let mut gesture = Gesture::new();
                let mut extractor = FeatureExtractor::new();
                let mut filter = PointFilter::new(self.config.min_point_distance);
                let p = Point::new(event.x, event.y, event.t);
                filter.accept(&p);
                gesture.push(p);
                extractor.update(p);
                self.state = State::Collecting {
                    gesture,
                    extractor,
                    filter,
                    target: ctx.target,
                };
                HandlerResult::Consumed
            }
            (State::Idle, _) => HandlerResult::Ignored,
            (
                State::Collecting {
                    gesture,
                    extractor,
                    filter,
                    target,
                },
                EventKind::MouseMove,
            ) => {
                let p = Point::new(event.x, event.y, event.t);
                if !filter.accept(&p) {
                    return HandlerResult::Consumed;
                }
                gesture.push(p);
                extractor.update(p);
                let min_points = self.recognizer.config().min_subgesture_points;
                if self.config.eager && extractor.count() >= min_points {
                    let features =
                        extractor.masked_features(self.recognizer.full_classifier().mask());
                    if self.recognizer.auc().is_unambiguous(&features) {
                        let gesture = std::mem::take(gesture);
                        let target = *target;
                        self.transition(gesture, target, PhaseTransition::Eager, ctx);
                    }
                }
                HandlerResult::Consumed
            }
            (
                State::Collecting {
                    gesture, target, ..
                },
                EventKind::Timeout,
            ) => {
                let gesture = std::mem::take(gesture);
                let target = *target;
                self.transition(gesture, target, PhaseTransition::Timeout, ctx);
                HandlerResult::Consumed
            }
            (
                State::Collecting {
                    gesture, target, ..
                },
                EventKind::MouseUp { button },
            ) if button == self.config.button => {
                let gesture = std::mem::take(gesture);
                let target = *target;
                self.transition(gesture, target, PhaseTransition::MouseUp, ctx);
                HandlerResult::Consumed
            }
            (State::Collecting { .. }, _) => HandlerResult::Consumed,
            (
                State::Manipulating {
                    trace,
                    semantics,
                    attrs,
                    total_points,
                },
                EventKind::MouseMove,
            ) => {
                *total_points += 1;
                // The previous mouse position, so `manip` semantics can
                // express incremental dragging (`moveFromX:y:toX:y:`).
                let prev_x = attrs
                    .get("currentX")
                    .cloned()
                    .unwrap_or(Value::Num(event.x));
                let prev_y = attrs
                    .get("currentY")
                    .cloned()
                    .unwrap_or(Value::Num(event.y));
                attrs.insert("prevX".into(), prev_x);
                attrs.insert("prevY".into(), prev_y);
                attrs.insert("currentX".into(), Value::Num(event.x));
                attrs.insert("currentY".into(), Value::Num(event.y));
                attrs.insert("currentT".into(), Value::Num(event.t));
                Self::install_attrs(attrs, ctx);
                let manip = semantics.manip.clone();
                match eval(&manip, ctx.env) {
                    Ok(_) => trace.manip_evaluations += 1,
                    Err(e) => trace.errors.push(e),
                }
                HandlerResult::Consumed
            }
            (State::Manipulating { .. }, EventKind::MouseUp { button })
                if button == self.config.button =>
            {
                let State::Manipulating {
                    mut trace,
                    semantics,
                    attrs,
                    total_points,
                } = std::mem::replace(&mut self.state, State::Idle)
                else {
                    unreachable!("matched Manipulating above");
                };
                trace.total_points = total_points;
                Self::install_attrs(&attrs, ctx);
                match eval(&semantics.done, ctx.env) {
                    Ok(_) => {}
                    Err(e) => trace.errors.push(e),
                }
                self.traces.push(trace);
                HandlerResult::Consumed
            }
            (State::Manipulating { .. }, _) => HandlerResult::Consumed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::Interface;
    use grandma_core::{EagerConfig, FeatureMask};
    use grandma_events::{gesture_events, gesture_events_with_hold, DwellDetector};
    use grandma_sem::{obj_ref, Expr, Recorder};
    use std::cell::RefCell;

    /// Two L-shaped classes: right-then-up (0), right-then-down (1).
    fn training() -> Vec<Vec<Gesture>> {
        let make = |sign: f64, jiggle: f64| {
            let mut pts = Vec::new();
            for i in 0..10 {
                pts.push(Point::new(
                    i as f64 * 8.0 + jiggle * (i % 3) as f64,
                    jiggle * (i % 2) as f64,
                    i as f64 * 10.0,
                ));
            }
            for i in 1..10 {
                pts.push(Point::new(
                    72.0 + jiggle,
                    sign * i as f64 * 8.0,
                    90.0 + i as f64 * 10.0,
                ));
            }
            Gesture::from_points(pts)
        };
        vec![
            (0..10).map(|e| make(1.0, 0.1 + e as f64 * 0.05)).collect(),
            (0..10).map(|e| make(-1.0, 0.1 + e as f64 * 0.05)).collect(),
        ]
    }

    fn recognizer() -> Rc<EagerRecognizer> {
        let (rec, _) =
            EagerRecognizer::train(&training(), &FeatureMask::all(), &EagerConfig::default())
                .unwrap();
        Rc::new(rec)
    }

    fn handler_with(
        recorder_msgs: &GestureSemantics,
        config: GestureHandlerConfig,
    ) -> (Interface, Rc<RefCell<GestureHandler>>, grandma_sem::ObjRef) {
        let mut interface = Interface::new();
        let app = obj_ref(Recorder::new());
        interface.env_mut().bind("view", Value::Obj(app.clone()));
        let classes = vec![
            GestureClass::with_semantics("ru", recorder_msgs.clone()),
            GestureClass::named("rd"),
        ];
        let gh = Rc::new(RefCell::new(GestureHandler::new(
            recognizer(),
            classes,
            config,
        )));
        let gh_dyn: HandlerRef = gh.clone();
        interface.attach_root_handler(gh_dyn);
        (interface, gh, app)
    }

    use crate::handler::HandlerRef;

    fn semantics_counting() -> GestureSemantics {
        GestureSemantics {
            recog: Expr::send(Expr::var("view"), "recognized", vec![]),
            manip: Expr::send(
                Expr::var("view"),
                "manip:y:",
                vec![Expr::attr("currentX"), Expr::attr("currentY")],
            ),
            done: Expr::send(Expr::var("view"), "done", vec![]),
        }
    }

    fn run_gesture(interface: &mut Interface, g: &Gesture, hold: Option<(usize, f64)>) {
        let events = match hold {
            None => gesture_events(g, Button::Left),
            Some((at, ms)) => gesture_events_with_hold(g, Button::Left, Some((at, ms))),
        };
        let mut dwell = DwellDetector::paper_default();
        for e in dwell.expand(&events) {
            interface.dispatch(&e);
        }
    }

    #[test]
    fn eager_transition_enters_manipulation_early() {
        let (mut interface, gh, app) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][0];
        run_gesture(&mut interface, g, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.class, Some(0));
        assert_eq!(trace.transition, PhaseTransition::Eager);
        assert!(trace.points_at_recognition < trace.total_points);
        assert!(trace.errors.is_empty(), "errors: {:?}", trace.errors);
        assert!(trace.manip_evaluations > 0);
        let app = app.borrow();
        let _ = app.type_name();
    }

    #[test]
    fn mouse_up_transition_omits_manipulation() {
        let config = GestureHandlerConfig {
            eager: false,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][1];
        run_gesture(&mut interface, g, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.transition, PhaseTransition::MouseUp);
        assert_eq!(trace.manip_evaluations, 0);
        assert_eq!(trace.points_at_recognition, trace.total_points);
    }

    #[test]
    fn dwell_timeout_triggers_transition() {
        let config = GestureHandlerConfig {
            eager: false,
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        let g = &training()[0][2];
        // Hold still for 300 ms after point 12 (past the corner).
        run_gesture(&mut interface, g, Some((12, 300.0)));
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.transition, PhaseTransition::Timeout);
        assert_eq!(trace.class, Some(0));
        assert!(trace.points_at_recognition <= 13);
        assert!(trace.manip_evaluations > 0, "manipulation follows the hold");
    }

    #[test]
    fn eager_fires_before_timeout_would() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        let g = &training()[0][3];
        run_gesture(&mut interface, g, Some((15, 400.0)));
        let gh = gh.borrow();
        assert_eq!(gh.traces()[0].transition, PhaseTransition::Eager);
    }

    #[test]
    fn recog_value_is_bound_to_recog_variable() {
        let semantics = GestureSemantics {
            recog: Expr::num(42.0),
            manip: Expr::Nil,
            done: Expr::Nil,
        };
        let (mut interface, _, _) = handler_with(&semantics, GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        assert_eq!(
            interface.env().lookup("recog").unwrap().as_num(),
            Some(42.0)
        );
    }

    #[test]
    fn semantic_errors_are_collected_not_fatal() {
        let semantics = GestureSemantics {
            recog: Expr::var("no_such_variable"),
            manip: Expr::Nil,
            done: Expr::Nil,
        };
        let (mut interface, gh, _) = handler_with(&semantics, GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        let gh = gh.borrow();
        assert_eq!(gh.traces().len(), 1, "interaction completed despite error");
        assert!(!gh.traces()[0].errors.is_empty());
    }

    #[test]
    fn consecutive_interactions_reset_state() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        run_gesture(&mut interface, &training()[0][0], None);
        run_gesture(&mut interface, &training()[1][0], None);
        let gh = gh.borrow();
        assert_eq!(gh.traces().len(), 2);
        assert_eq!(gh.traces()[0].class, Some(0));
        assert_eq!(gh.traces()[1].class, Some(1));
    }

    #[test]
    fn rejection_threshold_suppresses_semantics() {
        let config = GestureHandlerConfig {
            eager: false,
            min_probability: Some(1.1), // impossible: always reject
            ..GestureHandlerConfig::default()
        };
        let (mut interface, gh, _) = handler_with(&semantics_counting(), config);
        run_gesture(&mut interface, &training()[0][0], None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.class, None);
        assert_eq!(trace.class_name, "?");
    }

    #[test]
    fn jitter_filter_drops_close_points() {
        let (mut interface, gh, _) =
            handler_with(&semantics_counting(), GestureHandlerConfig::default());
        // A gesture whose points are all within 1 px: only the first
        // survives the 3 px filter, so classification happens at mouse-up
        // with one point.
        let tiny = Gesture::from_xy(&[(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)], 10.0);
        run_gesture(&mut interface, &tiny, None);
        let gh = gh.borrow();
        let trace = &gh.traces()[0];
        assert_eq!(trace.points_at_recognition, 1);
    }
}
