//! Event handlers, handler lists, and the dispatch loop.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use grandma_events::InputEvent;
use grandma_sem::Env;

use crate::view::{ViewId, ViewStore};

/// What a handler did with an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerResult {
    /// The handler claimed the event (and, for a `MouseDown`, the rest of
    /// the interaction).
    Consumed,
    /// The event is propagated to the next handler in the list.
    Ignored,
}

/// The mutable state a handler may touch while handling an event: the view
/// store (create/move/delete views) and the shared semantic environment.
///
/// Splitting this out of [`Interface`] is what lets handlers mutate views
/// while the dispatcher holds the handler lists.
pub struct Ctx<'a> {
    /// All live views.
    pub views: &'a mut ViewStore,
    /// The shared semantic environment (`view`, `recog`, ... bindings).
    pub env: &'a mut Env,
    /// The view the interaction was initiated at, if any.
    pub target: Option<ViewId>,
}

/// An interaction technique: §3.1 "Each class of event handler implements
/// a particular kind of interaction technique."
///
/// `wants` is the handler's *predicate* — "Each handler has a predicate
/// that it uses to decide which events it will handle", typically
/// filtering by event type and button. `handle` performs the technique.
pub trait EventHandler {
    /// Handler name for diagnostics.
    fn name(&self) -> &'static str;

    /// The predicate: would this handler take this event, directed at this
    /// view?
    fn wants(&self, event: &InputEvent, target: Option<ViewId>, views: &ViewStore) -> bool;

    /// Handles one event.
    fn handle(&mut self, event: &InputEvent, ctx: &mut Ctx<'_>) -> HandlerResult;
}

/// Shared handle to a handler: one handler instance may serve a whole view
/// class ("a single handler is automatically shared by many objects",
/// §3).
pub type HandlerRef = Rc<RefCell<dyn EventHandler>>;

/// Wraps a handler into a [`HandlerRef`].
pub fn handler_ref<H: EventHandler + 'static>(handler: H) -> HandlerRef {
    Rc::new(RefCell::new(handler))
}

/// The dispatch loop binding views, handler lists, and the semantic
/// environment together — GRANDMA's window-and-input layer.
///
/// Dispatch rules (§3.1):
/// 1. A `MouseDown` picks the topmost view under the pointer; the
///    handler lists queried, in order, are: the view's own handlers, then
///    its class handlers, then the root handlers.
/// 2. Each queried handler's predicate runs first; the first handler to
///    consume the event *grabs* the interaction — every subsequent event
///    until `MouseUp` goes straight to it.
/// 3. Unconsumed events propagate down the list.
pub struct Interface {
    views: ViewStore,
    view_handlers: HashMap<ViewId, Vec<HandlerRef>>,
    class_handlers: HashMap<&'static str, Vec<HandlerRef>>,
    root_handlers: Vec<HandlerRef>,
    env: Env,
    grab: Option<(HandlerRef, Option<ViewId>)>,
}

impl Default for Interface {
    fn default() -> Self {
        Self::new()
    }
}

impl Interface {
    /// Creates an interface with no views or handlers.
    pub fn new() -> Self {
        Self {
            views: ViewStore::new(),
            view_handlers: HashMap::new(),
            class_handlers: HashMap::new(),
            root_handlers: Vec::new(),
            env: Env::new(),
            grab: None,
        }
    }

    /// Returns the view store.
    pub fn views(&self) -> &ViewStore {
        &self.views
    }

    /// Returns the view store mutably.
    pub fn views_mut(&mut self) -> &mut ViewStore {
        &mut self.views
    }

    /// Returns the shared environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Returns the shared environment mutably.
    pub fn env_mut(&mut self) -> &mut Env {
        &mut self.env
    }

    /// Attaches a handler to one specific view (highest priority).
    pub fn attach_view_handler(&mut self, view: ViewId, handler: HandlerRef) {
        self.view_handlers.entry(view).or_default().push(handler);
    }

    /// Attaches a handler to a view class; every view of that class
    /// inherits it.
    pub fn attach_class_handler(&mut self, class: &'static str, handler: HandlerRef) {
        self.class_handlers.entry(class).or_default().push(handler);
    }

    /// Attaches a handler at the root (lowest priority; receives input
    /// over the background too).
    pub fn attach_root_handler(&mut self, handler: HandlerRef) {
        self.root_handlers.push(handler);
    }

    /// Dispatches one event. Returns the name of the handler that consumed
    /// it, if any.
    pub fn dispatch(&mut self, event: &InputEvent) -> Option<&'static str> {
        // An in-progress interaction owns all events until mouse-up.
        if let Some((handler, target)) = self.grab.clone() {
            let mut ctx = Ctx {
                views: &mut self.views,
                env: &mut self.env,
                target,
            };
            let name = handler.borrow().name();
            handler.borrow_mut().handle(event, &mut ctx);
            // Both a mouse-up and a grab break end the interaction; a
            // broken grab must not leave the interface wedged on a
            // handler that will never see its mouse-up.
            if event.ends_interaction() {
                self.grab = None;
            }
            return Some(name);
        }
        if !event.is_down() {
            // Hover moves and stray events outside an interaction go to
            // root handlers only.
            return self.offer(event, None, self.root_handlers.clone(), false);
        }
        let target = self.views.pick(event.x, event.y);
        let chain = self.chain_for(target);
        self.offer(event, target, chain, true)
    }

    /// Dispatches a whole scripted event stream.
    pub fn run(&mut self, events: &[InputEvent]) {
        for e in events {
            self.dispatch(e);
        }
    }

    fn chain_for(&self, target: Option<ViewId>) -> Vec<HandlerRef> {
        let mut chain = Vec::new();
        if let Some(id) = target {
            if let Some(hs) = self.view_handlers.get(&id) {
                chain.extend(hs.iter().cloned());
            }
            if let Some(view) = self.views.get(id) {
                if let Some(hs) = self.class_handlers.get(view.class) {
                    chain.extend(hs.iter().cloned());
                }
            }
        }
        chain.extend(self.root_handlers.iter().cloned());
        chain
    }

    fn offer(
        &mut self,
        event: &InputEvent,
        target: Option<ViewId>,
        chain: Vec<HandlerRef>,
        grab_on_consume: bool,
    ) -> Option<&'static str> {
        for handler in chain {
            if !handler.borrow().wants(event, target, &self.views) {
                continue;
            }
            let mut ctx = Ctx {
                views: &mut self.views,
                env: &mut self.env,
                target,
            };
            let result = handler.borrow_mut().handle(event, &mut ctx);
            if result == HandlerResult::Consumed {
                let name = handler.borrow().name();
                if grab_on_consume && !event.ends_interaction() {
                    self.grab = Some((handler, target));
                }
                return Some(name);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grandma_events::{Button, EventKind};
    use grandma_geom::BBox;

    /// A handler that consumes the kinds of events it is configured for
    /// and counts what it saw.
    struct CountingHandler {
        name: &'static str,
        take_downs: bool,
        seen: Rc<RefCell<Vec<EventKind>>>,
    }

    impl EventHandler for CountingHandler {
        fn name(&self) -> &'static str {
            self.name
        }
        fn wants(&self, _e: &InputEvent, _t: Option<ViewId>, _v: &ViewStore) -> bool {
            true
        }
        fn handle(&mut self, event: &InputEvent, _ctx: &mut Ctx<'_>) -> HandlerResult {
            self.seen.borrow_mut().push(event.kind);
            if self.take_downs {
                HandlerResult::Consumed
            } else {
                HandlerResult::Ignored
            }
        }
    }

    fn down(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(
            EventKind::MouseDown {
                button: Button::Left,
            },
            x,
            y,
            t,
        )
    }
    fn mv(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(EventKind::MouseMove, x, y, t)
    }
    fn up(x: f64, y: f64, t: f64) -> InputEvent {
        InputEvent::new(
            EventKind::MouseUp {
                button: Button::Left,
            },
            x,
            y,
            t,
        )
    }

    fn counting(name: &'static str, take: bool) -> (HandlerRef, Rc<RefCell<Vec<EventKind>>>) {
        let seen = Rc::new(RefCell::new(Vec::new()));
        (
            handler_ref(CountingHandler {
                name,
                take_downs: take,
                seen: seen.clone(),
            }),
            seen,
        )
    }

    #[test]
    fn view_handlers_have_priority_over_class_and_root() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let (vh, vs) = counting("view", true);
        let (ch, cs) = counting("class", true);
        let (rh, rs) = counting("root", true);
        i.attach_class_handler("Shape", ch);
        i.attach_view_handler(v, vh);
        i.attach_root_handler(rh);
        assert_eq!(i.dispatch(&down(5.0, 5.0, 0.0)), Some("view"));
        assert_eq!(vs.borrow().len(), 1);
        assert_eq!(cs.borrow().len(), 0);
        assert_eq!(rs.borrow().len(), 0);
    }

    #[test]
    fn ignored_events_propagate_down_the_chain() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let (vh, vs) = counting("view", false); // ignores
        let (ch, cs) = counting("class", true); // consumes
        i.attach_view_handler(v, vh);
        i.attach_class_handler("Shape", ch);
        assert_eq!(i.dispatch(&down(5.0, 5.0, 0.0)), Some("class"));
        assert_eq!(vs.borrow().len(), 1, "view handler saw it first");
        assert_eq!(cs.borrow().len(), 1);
    }

    #[test]
    fn background_clicks_go_to_root_handlers() {
        let mut i = Interface::new();
        let (rh, rs) = counting("root", true);
        i.attach_root_handler(rh);
        assert_eq!(i.dispatch(&down(50.0, 50.0, 0.0)), Some("root"));
        assert_eq!(rs.borrow().len(), 1);
    }

    #[test]
    fn consuming_mouse_down_grabs_the_interaction() {
        let mut i = Interface::new();
        let v = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let (vh, vs) = counting("view", true);
        i.attach_view_handler(v, vh);
        i.dispatch(&down(5.0, 5.0, 0.0));
        // Moves far outside the view still reach the grabbing handler.
        i.dispatch(&mv(500.0, 500.0, 10.0));
        i.dispatch(&up(500.0, 500.0, 20.0));
        assert_eq!(vs.borrow().len(), 3);
        // After mouse-up the grab is released: a new down elsewhere does
        // not reach the view handler.
        i.dispatch(&down(500.0, 500.0, 30.0));
        assert_eq!(vs.borrow().len(), 3);
    }

    #[test]
    fn class_handler_is_shared_by_all_members() {
        let mut i = Interface::new();
        let a = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(0.0, 0.0, 10.0, 10.0));
        let b = i
            .views_mut()
            .add_view("Shape", BBox::from_corners(20.0, 0.0, 30.0, 10.0));
        let _ = (a, b);
        let (ch, cs) = counting("class", true);
        i.attach_class_handler("Shape", ch);
        i.dispatch(&down(5.0, 5.0, 0.0));
        i.dispatch(&up(5.0, 5.0, 1.0));
        i.dispatch(&down(25.0, 5.0, 2.0));
        i.dispatch(&up(25.0, 5.0, 3.0));
        assert_eq!(cs.borrow().len(), 4, "one handler served two views");
    }

    #[test]
    fn predicate_filters_before_handle() {
        struct OnlyRight;
        impl EventHandler for OnlyRight {
            fn name(&self) -> &'static str {
                "right-only"
            }
            fn wants(&self, event: &InputEvent, _t: Option<ViewId>, _v: &ViewStore) -> bool {
                event.button() == Some(Button::Right)
            }
            fn handle(&mut self, _e: &InputEvent, _c: &mut Ctx<'_>) -> HandlerResult {
                HandlerResult::Consumed
            }
        }
        let mut i = Interface::new();
        i.attach_root_handler(handler_ref(OnlyRight));
        assert_eq!(i.dispatch(&down(0.0, 0.0, 0.0)), None);
        let right = InputEvent::new(
            EventKind::MouseDown {
                button: Button::Right,
            },
            0.0,
            0.0,
            1.0,
        );
        assert_eq!(i.dispatch(&right), Some("right-only"));
    }
}
