//! Reusable scratch buffers for quadratic forms.
//!
//! The per-point classification path evaluates Mahalanobis quadratic forms
//! on every mouse event; allocating the centered and transformed
//! intermediates each time would dominate the cost. A [`Workspace`] owns
//! those two buffers and grows them on first use, so every evaluation after
//! warm-up performs zero heap allocations.

use crate::matrix::Matrix;
use crate::vector::dot_slices;

/// Scratch buffers for Mahalanobis / quadratic-form evaluation.
///
/// One workspace serves any dimension: the buffers grow to the largest
/// dimension seen and are reused from then on. Not thread-safe by design —
/// give each worker thread its own workspace.
///
/// # Examples
///
/// ```
/// use grandma_linalg::{Matrix, Workspace};
///
/// let inv = Matrix::identity(2);
/// let mut ws = Workspace::new();
/// let d2 = ws.mahalanobis_squared(&[3.0, 4.0], &[0.0, 0.0], &inv);
/// assert_eq!(d2, 25.0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    centered: Vec<f64>,
    transformed: Vec<f64>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for dimension `dim`, so even the first
    /// evaluation allocates nothing.
    pub fn with_dim(dim: usize) -> Self {
        Self {
            centered: vec![0.0; dim],
            transformed: vec![0.0; dim],
        }
    }

    /// Ensures both buffers hold at least `dim` slots.
    fn reserve(&mut self, dim: usize) {
        if self.centered.len() < dim {
            self.centered.resize(dim, 0.0);
            self.transformed.resize(dim, 0.0);
        }
    }

    /// Computes the squared Mahalanobis distance
    /// `(x − μ)ᵀ Σ⁻¹ (x − μ)` given the *inverse* covariance, without
    /// allocating (after the buffers have grown to `x.len()`).
    ///
    /// Matches [`crate::mahalanobis_squared`] exactly; the free function
    /// remains the convenient one-off form.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not agree.
    pub fn mahalanobis_squared(&mut self, x: &[f64], mean: &[f64], inverse_covariance: &Matrix) -> f64 {
        assert_eq!(x.len(), mean.len(), "dimension mismatch in mahalanobis");
        self.reserve(x.len());
        let centered = &mut self.centered[..x.len()];
        for ((c, a), b) in centered.iter_mut().zip(x.iter()).zip(mean.iter()) {
            *c = a - b;
        }
        let transformed = &mut self.transformed[..x.len()];
        inverse_covariance.mul_vec_into(centered, transformed);
        dot_slices(centered, transformed)
    }

    /// Computes the quadratic form `xᵀ M x` without allocating (after
    /// warm-up).
    ///
    /// With `M = Σ⁻¹` this is the shared term of the per-class Mahalanobis
    /// identity `d²_c(x) = xᵀΣ⁻¹x − 2·(Σ⁻¹μ_c)·x + μ_cᵀΣ⁻¹μ_c`: computed
    /// once per point, it turns each per-class distance into one dot
    /// product plus a cached constant.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not agree.
    pub fn quadratic_form(&mut self, x: &[f64], matrix: &Matrix) -> f64 {
        self.reserve(x.len());
        let transformed = &mut self.transformed[..x.len()];
        matrix.mul_vec_into(x, transformed);
        dot_slices(x, transformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mahalanobis_squared;
    use crate::vector::Vector;

    #[test]
    fn matches_allocating_mahalanobis() {
        let inv = Matrix::from_rows(&[&[0.5, 0.1], &[0.1, 2.0]]);
        let x = Vector::from_slice(&[3.0, -1.5]);
        let mu = Vector::from_slice(&[1.0, 0.5]);
        let expect = mahalanobis_squared(&x, &mu, &inv);
        let mut ws = Workspace::new();
        let got = ws.mahalanobis_squared(x.as_slice(), mu.as_slice(), &inv);
        assert_eq!(got, expect);
    }

    #[test]
    fn workspace_is_reusable_across_dimensions() {
        let mut ws = Workspace::new();
        let d2 = ws.mahalanobis_squared(&[1.0], &[0.0], &Matrix::identity(1));
        assert_eq!(d2, 1.0);
        let d3 = ws.mahalanobis_squared(&[1.0, 2.0, 2.0], &[0.0; 3], &Matrix::identity(3));
        assert_eq!(d3, 9.0);
        let d1 = ws.mahalanobis_squared(&[2.0], &[0.0], &Matrix::identity(1));
        assert_eq!(d1, 4.0);
    }

    #[test]
    fn quadratic_form_identity_is_squared_norm() {
        let mut ws = Workspace::with_dim(3);
        let q = ws.quadratic_form(&[1.0, 2.0, 2.0], &Matrix::identity(3));
        assert_eq!(q, 9.0);
    }

    #[test]
    fn quadratic_form_expands_mahalanobis_identity() {
        // d²(x) = x'Mx − 2(Mμ)·x + μ'Mμ for symmetric M.
        let m = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let x = [1.5, -2.0];
        let mu = [0.5, 1.0];
        let mut ws = Workspace::new();
        let direct = ws.mahalanobis_squared(&x, &mu, &m);
        let w = m.mul_vector(&Vector::from_slice(&mu));
        let via_identity =
            ws.quadratic_form(&x, &m) - 2.0 * w.dot_slice(&x) + w.dot_slice(&mu);
        assert!((direct - via_identity).abs() < 1e-12);
    }
}
