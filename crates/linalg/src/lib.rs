#![forbid(unsafe_code)]
//! Small dense linear-algebra library for the GRANDMA reproduction.
//!
//! Implements exactly what Rubine-style statistical gesture recognition
//! needs: dense vectors and matrices over `f64`, Gauss-Jordan inversion with
//! partial pivoting (plus a ridge-regularized fallback for singular pooled
//! covariance matrices), and the statistical helpers (means, scatter
//! matrices, pooled covariance, Mahalanobis distance) used by both the full
//! classifier and the eager-recognition training pipeline.
//!
//! The library is deliberately free of external dependencies so the
//! reproduction is self-contained and auditable.
//!
//! # Examples
//!
//! ```
//! use grandma_linalg::{Matrix, Vector};
//!
//! let m = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
//! let inv = m.inverse().unwrap();
//! let x = inv.mul_vector(&Vector::from_slice(&[2.0, 4.0]));
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 1.0).abs() < 1e-12);
//! ```

mod matrix;
mod solve;
mod stats;
mod vector;
mod workspace;

pub use matrix::Matrix;
pub use solve::{InversionOutcome, SolveError};
pub use stats::{mahalanobis_squared, mean_vector, pooled_covariance, scatter_matrix};
pub use vector::{dot_slices, Vector};
pub use workspace::Workspace;
