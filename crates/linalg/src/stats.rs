//! Statistical helpers used by classifier training.
//!
//! These implement the quantities in §4.2 of the paper: per-class feature
//! means, per-class scatter matrices, the pooled ("average") covariance
//! estimate shared by all classes, and the Mahalanobis distance that both
//! drives rejection in the full classifier and identifies *accidentally
//! complete* subgestures in the eager-recognition training pipeline (§4.5).

use std::borrow::Borrow;

use crate::matrix::Matrix;
use crate::vector::Vector;

/// Computes the mean of a set of equally sized vectors.
///
/// Accepts owned samples (`&[Vector]`) or borrowed ones (`&[&Vector]`), so
/// callers aggregating over stored records need not clone.
///
/// # Panics
///
/// Panics if `samples` is empty or the vectors have differing lengths.
///
/// # Examples
///
/// ```
/// use grandma_linalg::{mean_vector, Vector};
///
/// let samples = vec![
///     Vector::from_slice(&[0.0, 2.0]),
///     Vector::from_slice(&[2.0, 4.0]),
/// ];
/// assert_eq!(mean_vector(&samples).as_slice(), &[1.0, 3.0]);
/// ```
pub fn mean_vector<S: Borrow<Vector>>(samples: &[S]) -> Vector {
    assert!(!samples.is_empty(), "mean of an empty sample set");
    let dim = samples[0].borrow().len();
    let mut mean = Vector::zeros(dim);
    for s in samples {
        let s = s.borrow();
        assert_eq!(s.len(), dim, "all samples must have equal dimension");
        mean += s;
    }
    mean.scaled(1.0 / samples.len() as f64)
}

/// Computes the scatter matrix `Σ (x − μ)(x − μ)ᵀ` of a sample set around
/// the given mean.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
pub fn scatter_matrix<S: Borrow<Vector>>(samples: &[S], mean: &Vector) -> Matrix {
    let dim = mean.len();
    let mut scatter = Matrix::zeros(dim, dim);
    for s in samples {
        let centered = s.borrow() - mean;
        scatter.add_outer(1.0, &centered);
    }
    scatter
}

/// Computes the pooled (common) covariance estimate from per-class scatter
/// matrices and per-class sample counts.
///
/// This is the paper's "optimal given some normality assumptions" common
/// covariance: `Σ_avg = (Σ_c S_c) / (Σ_c E_c − C)`. When the denominator is
/// not positive (too few samples), the raw sum divided by the total count is
/// used instead so callers always get a finite matrix; the ridge fallback in
/// [`Matrix::inverse_with_ridge`] absorbs the resulting bias.
///
/// # Panics
///
/// Panics if `scatters` is empty or counts/scatters lengths differ.
pub fn pooled_covariance(scatters: &[Matrix], counts: &[usize]) -> Matrix {
    assert!(!scatters.is_empty(), "no scatter matrices");
    assert_eq!(scatters.len(), counts.len(), "scatter/count mismatch");
    let dim = scatters[0].rows();
    let mut sum = Matrix::zeros(dim, dim);
    for s in scatters {
        sum.add_assign_matrix(s);
    }
    let total: usize = counts.iter().sum();
    let classes = scatters.len();
    let denom = if total > classes {
        (total - classes) as f64
    } else {
        total.max(1) as f64
    };
    sum.scaled(1.0 / denom)
}

/// Computes the squared Mahalanobis distance
/// `(x − μ)ᵀ Σ⁻¹ (x − μ)` given the *inverse* covariance.
///
/// # Panics
///
/// Panics if the dimensions do not agree.
///
/// # Examples
///
/// ```
/// use grandma_linalg::{mahalanobis_squared, Matrix, Vector};
///
/// let inv = Matrix::identity(2);
/// let x = Vector::from_slice(&[3.0, 4.0]);
/// let mu = Vector::from_slice(&[0.0, 0.0]);
/// assert_eq!(mahalanobis_squared(&x, &mu, &inv), 25.0);
/// ```
pub fn mahalanobis_squared(x: &Vector, mean: &Vector, inverse_covariance: &Matrix) -> f64 {
    let centered = x - mean;
    let transformed = inverse_covariance.mul_vector(&centered);
    centered.dot(&transformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_single_sample_is_itself() {
        let s = vec![Vector::from_slice(&[5.0, -1.0])];
        assert_eq!(mean_vector(&s).as_slice(), &[5.0, -1.0]);
    }

    #[test]
    fn scatter_of_symmetric_samples() {
        let samples = vec![
            Vector::from_slice(&[-1.0, 0.0]),
            Vector::from_slice(&[1.0, 0.0]),
        ];
        let mean = mean_vector(&samples);
        let scatter = scatter_matrix(&samples, &mean);
        assert_eq!(scatter[(0, 0)], 2.0);
        assert_eq!(scatter[(1, 1)], 0.0);
        assert_eq!(scatter[(0, 1)], 0.0);
    }

    #[test]
    fn pooled_covariance_uses_paper_denominator() {
        // Two classes, three samples each: denominator = 6 - 2 = 4.
        let s = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 4.0]]);
        let pooled = pooled_covariance(&[s.clone(), s], &[3, 3]);
        assert_eq!(pooled[(0, 0)], 2.0);
        assert_eq!(pooled[(1, 1)], 2.0);
    }

    #[test]
    fn pooled_covariance_survives_tiny_sample_counts() {
        let s = Matrix::from_rows(&[&[1.0]]);
        let pooled = pooled_covariance(&[s.clone(), s], &[1, 1]);
        assert!(pooled.is_finite());
        assert!(pooled[(0, 0)] > 0.0);
    }

    #[test]
    fn mahalanobis_reduces_to_euclidean_for_identity() {
        let inv = Matrix::identity(3);
        let x = Vector::from_slice(&[1.0, 2.0, 2.0]);
        let mu = Vector::zeros(3);
        assert_eq!(mahalanobis_squared(&x, &mu, &inv), 9.0);
    }

    #[test]
    fn mahalanobis_scales_with_inverse_variance() {
        // Variance 4 along axis 0 → inverse covariance 0.25.
        let inv = Matrix::from_rows(&[&[0.25, 0.0], &[0.0, 1.0]]);
        let x = Vector::from_slice(&[2.0, 0.0]);
        let mu = Vector::zeros(2);
        assert_eq!(mahalanobis_squared(&x, &mu, &inv), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_of_empty_set_panics() {
        let empty: Vec<Vector> = vec![];
        let _ = mean_vector(&empty);
    }
}
