//! Matrix inversion with a ridge-regularized fallback.
//!
//! Rubine's training procedure inverts the pooled covariance matrix of the
//! per-class feature scatter. With few training examples (the paper uses 10
//! to 15 per class) that matrix is frequently ill-conditioned or outright
//! singular — e.g. a feature that is constant over the training set produces
//! a zero row. The original implementation repaired this by discarding
//! dependent features; we instead escalate a ridge term `λI` until the
//! matrix becomes invertible, which keeps every feature available and is the
//! standard regularized-discriminant remedy.

use std::fmt;

use crate::matrix::Matrix;

/// Error produced when a linear solve cannot be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is not square.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The matrix is singular and no fallback was permitted.
    Singular,
    /// The matrix contained non-finite entries.
    NotFinite,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, inversion needs square")
            }
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::NotFinite => write!(f, "matrix has non-finite entries"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The result of [`Matrix::inverse_with_ridge`], recording whether and how
/// much regularization was needed.
#[derive(Debug, Clone)]
pub struct InversionOutcome {
    /// The (possibly regularized) inverse.
    pub inverse: Matrix,
    /// The ridge term that was added to the diagonal (`0.0` if none).
    pub ridge: f64,
}

impl Matrix {
    /// Inverts the matrix via Gauss-Jordan elimination with partial
    /// pivoting.
    ///
    /// Returns [`SolveError::Singular`] when a pivot falls below a relative
    /// tolerance, [`SolveError::NotSquare`] for rectangular input, and
    /// [`SolveError::NotFinite`] when the matrix contains NaN or infinity.
    ///
    /// # Examples
    ///
    /// ```
    /// use grandma_linalg::Matrix;
    ///
    /// let m = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
    /// let inv = m.inverse().unwrap();
    /// let product = m.mul_matrix(&inv);
    /// assert!((product[(0, 0)] - 1.0).abs() < 1e-12);
    /// assert!(product[(0, 1)].abs() < 1e-12);
    /// ```
    pub fn inverse(&self) -> Result<Matrix, SolveError> {
        if !self.is_square() {
            return Err(SolveError::NotSquare {
                rows: self.rows(),
                cols: self.cols(),
            });
        }
        if !self.is_finite() {
            return Err(SolveError::NotFinite);
        }
        let n = self.rows();
        if n == 0 {
            return Ok(Matrix::zeros(0, 0));
        }
        // Relative pivot tolerance scaled by the matrix magnitude.
        let tol = self.max_abs().max(1.0) * 1e-13;

        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Partial pivoting: pick the row with the largest magnitude in
            // this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= tol {
                return Err(SolveError::Singular);
            }
            if pivot_row != col {
                swap_rows(&mut a, col, pivot_row);
                swap_rows(&mut inv, col, pivot_row);
            }
            let pivot = a[(col, col)];
            for c in 0..n {
                a[(col, c)] /= pivot;
                inv[(col, c)] /= pivot;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                // lint:allow(float-eq): elimination skip; exact zero only
                if factor == 0.0 {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] -= factor * ac;
                    inv[(r, c)] -= factor * ic;
                }
            }
        }
        Ok(inv)
    }

    /// Inverts the matrix, escalating a ridge term `λI` (starting at
    /// `initial_ridge` and growing tenfold) until inversion succeeds.
    ///
    /// This is the fallback used for singular pooled covariance matrices in
    /// classifier training. Returns the inverse together with the ridge that
    /// was needed.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is rectangular, contains non-finite
    /// values, or still cannot be inverted after `max_escalations` ridge
    /// increases.
    pub fn inverse_with_ridge(
        &self,
        initial_ridge: f64,
        max_escalations: u32,
    ) -> Result<InversionOutcome, SolveError> {
        match self.inverse() {
            Ok(inverse) => {
                return Ok(InversionOutcome {
                    inverse,
                    ridge: 0.0,
                })
            }
            Err(SolveError::Singular) => {}
            Err(e) => return Err(e),
        }
        // Scale the ridge relative to the matrix magnitude so the behaviour
        // is independent of feature units.
        let scale = self.max_abs().max(1.0);
        let mut ridge = initial_ridge * scale;
        for _ in 0..=max_escalations {
            let mut regularized = self.clone();
            regularized.add_ridge(ridge);
            if let Ok(inverse) = regularized.inverse() {
                return Ok(InversionOutcome { inverse, ridge });
            }
            ridge *= 10.0;
        }
        Err(SolveError::Singular)
    }

    /// Computes the determinant via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotSquare`] for rectangular input and
    /// [`SolveError::NotFinite`] for non-finite entries. A singular matrix
    /// yields `Ok(0.0)`.
    pub fn determinant(&self) -> Result<f64, SolveError> {
        if !self.is_square() {
            return Err(SolveError::NotSquare {
                rows: self.rows(),
                cols: self.cols(),
            });
        }
        if !self.is_finite() {
            return Err(SolveError::NotFinite);
        }
        let n = self.rows();
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            // lint:allow(float-eq): an exactly singular pivot column
            if pivot_val == 0.0 {
                return Ok(0.0);
            }
            if pivot_row != col {
                swap_rows(&mut a, col, pivot_row);
                det = -det;
            }
            let pivot = a[(col, col)];
            det *= pivot;
            for r in (col + 1)..n {
                let factor = a[(r, col)] / pivot;
                // lint:allow(float-eq): elimination skip; exact zero only
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
            }
        }
        Ok(det)
    }
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for c in 0..cols {
        let tmp = m[(a, c)];
        m[(a, c)] = m[(b, c)];
        m[(b, c)] = tmp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let m = Matrix::identity(4);
        let inv = m.inverse().unwrap();
        assert_eq!(inv, Matrix::identity(4));
    }

    #[test]
    fn inverse_round_trips_to_identity() {
        let m = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = m.inverse().unwrap();
        let prod = m.mul_matrix(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert_close(prod[(r, c)], expect, 1e-12);
            }
        }
    }

    #[test]
    fn singular_matrix_is_reported() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(m.inverse().unwrap_err(), SolveError::Singular);
    }

    #[test]
    fn ridge_fallback_recovers_singular_matrix() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let outcome = m.inverse_with_ridge(1e-6, 20).unwrap();
        assert!(outcome.ridge > 0.0);
        assert!(outcome.inverse.is_finite());
    }

    #[test]
    fn ridge_fallback_leaves_invertible_matrix_alone() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 5.0]]);
        let outcome = m.inverse_with_ridge(1e-6, 20).unwrap();
        assert_eq!(outcome.ridge, 0.0);
        assert_close(outcome.inverse[(0, 0)], 1.0 / 3.0, 1e-12);
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            m.inverse().unwrap_err(),
            SolveError::NotSquare { rows: 2, cols: 3 }
        ));
    }

    #[test]
    fn non_finite_matrix_is_rejected() {
        let mut m = Matrix::identity(2);
        m[(0, 1)] = f64::NAN;
        assert_eq!(m.inverse().unwrap_err(), SolveError::NotFinite);
    }

    #[test]
    fn determinant_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_close(m.determinant().unwrap(), -2.0, 1e-12);
    }

    #[test]
    fn determinant_of_singular_matrix_is_zero() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_close(m.determinant().unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = m.inverse().unwrap();
        // The permutation matrix is its own inverse.
        assert_eq!(inv[(0, 1)], 1.0);
        assert_eq!(inv[(1, 0)], 1.0);
    }

    #[test]
    fn empty_matrix_inverts_to_empty() {
        let m = Matrix::zeros(0, 0);
        let inv = m.inverse().unwrap();
        assert_eq!(inv.rows(), 0);
    }
}
