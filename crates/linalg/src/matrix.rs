//! Dense row-major `f64` matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::vector::Vector;

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use grandma_linalg::{Matrix, Vector};
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let v = Vector::from_slice(&[1.0, 1.0]);
/// assert_eq!(m.mul_vector(&v).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the given row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the given row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Computes `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vector(&self, v: &Vector) -> Vector {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vector");
        let mut out = Vector::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = 0.0;
            for (c, value) in self.row(r).iter().enumerate() {
                acc += value * v[c];
            }
            out[r] = acc;
        }
        out
    }

    /// Computes `self * v` into a caller-provided buffer, allocating
    /// nothing.
    ///
    /// This is the hot-path variant of [`Matrix::mul_vector`]: the per-point
    /// classification loop reuses one output buffer across calls.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()` or `out.len() != self.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use grandma_linalg::Matrix;
    ///
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let mut out = [0.0; 2];
    /// m.mul_vec_into(&[1.0, 1.0], &mut out);
    /// assert_eq!(out, [3.0, 7.0]);
    /// ```
    pub fn mul_vec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec_into");
        assert_eq!(out.len(), self.rows, "output length mismatch in mul_vec_into");
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (value, x) in self.row(r).iter().zip(v.iter()) {
                acc += value * x;
            }
            *slot = acc;
        }
    }

    /// Computes the matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul_matrix(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul_matrix");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                // lint:allow(float-eq): sparsity skip; exact zero only
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Adds `factor * I` to the matrix in place.
    ///
    /// Used as the ridge fallback when a pooled covariance matrix is
    /// singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_ridge(&mut self, factor: f64) {
        assert!(self.is_square(), "ridge requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += factor;
        }
    }

    /// Adds `factor * outer(v, v)` to the matrix in place.
    ///
    /// This is the rank-one update used to accumulate scatter matrices.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn add_outer(&mut self, factor: f64, v: &Vector) {
        assert_eq!(self.rows, v.len(), "dimension mismatch in add_outer");
        assert_eq!(self.cols, v.len(), "dimension mismatch in add_outer");
        for r in 0..self.rows {
            let vr = v[r] * factor;
            // lint:allow(float-eq): sparsity skip; exact zero only
            if vr == 0.0 {
                continue;
            }
            for c in 0..self.cols {
                self[(r, c)] += vr * v[c];
            }
        }
    }

    /// Adds another matrix in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign_matrix(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Returns `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns the largest absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_vector() {
        let m = Matrix::identity(3);
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.mul_vector(&v).as_slice(), v.as_slice());
    }

    #[test]
    fn mul_matrix_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul_matrix(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn add_outer_produces_rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        let v = Vector::from_slice(&[1.0, 2.0]);
        m.add_outer(2.0, &v);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn add_ridge_bumps_diagonal_only() {
        let mut m = Matrix::zeros(2, 2);
        m.add_ridge(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn max_abs_finds_largest_magnitude() {
        let m = Matrix::from_rows(&[&[1.0, -9.0], &[3.0, 4.0]]);
        assert_eq!(m.max_abs(), 9.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vector_panics_on_mismatch() {
        let m = Matrix::zeros(2, 3);
        let v = Vector::zeros(2);
        let _ = m.mul_vector(&v);
    }
}
