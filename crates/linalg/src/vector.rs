//! Dense `f64` vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense vector of `f64` components.
///
/// Used throughout the reproduction for feature vectors, class means, and
/// linear-evaluation weight vectors.
///
/// # Examples
///
/// ```
/// use grandma_linalg::Vector;
///
/// let a = Vector::from_slice(&[1.0, 2.0]);
/// let b = Vector::from_slice(&[3.0, 4.0]);
/// assert_eq!(a.dot(&b), 11.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector with `len` components.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector by copying the given slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from an owned `Vec<f64>` without copying.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { data: values }
    }

    /// Returns the number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the components as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Computes the dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Computes the dot product with a raw slice.
    ///
    /// The hot-path variant of [`Vector::dot`]: callers holding scratch
    /// buffers (plain `[f64]`) can take the product against a stored weight
    /// vector without wrapping the buffer in a `Vector` first.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use grandma_linalg::Vector;
    ///
    /// let w = Vector::from_slice(&[1.0, 2.0]);
    /// assert_eq!(w.dot_slice(&[3.0, 4.0]), 11.0);
    /// ```
    pub fn dot_slice(&self, other: &[f64]) -> f64 {
        dot_slices(self.as_slice(), other)
    }

    /// Returns the Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns a new vector scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Adds `other * factor` to this vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn axpy(&mut self, factor: f64, other: &Self) {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += factor * b;
        }
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns an iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

/// Computes the dot product of two raw slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// use grandma_linalg::dot_slices;
///
/// assert_eq!(dot_slices(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector{:?}", self.data)
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "addition requires equal lengths");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "subtraction requires equal lengths");
        Vector {
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "addition requires equal lengths");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(values: Vec<f64>) -> Self {
        Self::from_vec(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_zero_components() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dot_product_matches_hand_computation() {
        let a = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let b = Vector::from_slice(&[4.0, 5.0, -6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 - 18.0);
    }

    #[test]
    fn norm_of_unit_axis_is_one() {
        let v = Vector::from_slice(&[0.0, 1.0, 0.0]);
        assert_eq!(v.norm(), 1.0);
    }

    #[test]
    fn add_and_sub_are_componentwise() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates_scaled_vector() {
        let mut a = Vector::from_slice(&[1.0, 1.0]);
        let b = Vector::from_slice(&[2.0, -1.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn scaled_multiplies_every_component() {
        let v = Vector::from_slice(&[1.0, -2.0]).scaled(3.0);
        assert_eq!(v.as_slice(), &[3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_panics_on_length_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[1] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn indexing_reads_and_writes() {
        let mut v = Vector::zeros(2);
        v[0] = 7.0;
        assert_eq!(v[0], 7.0);
    }
}
