//! Property-based tests for the linear-algebra substrate.

use grandma_linalg::{mahalanobis_squared, mean_vector, Matrix, Vector};
use proptest::prelude::*;

/// Strategy producing well-conditioned symmetric positive-definite 3x3
/// matrices as `A Aᵀ + I`.
fn spd3() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, 9).prop_map(|v| {
        let a = Matrix::from_rows(&[&v[0..3], &v[3..6], &v[6..9]]);
        let mut m = a.mul_matrix(&a.transpose());
        m.add_ridge(1.0);
        m
    })
}

fn vec3() -> impl Strategy<Value = Vector> {
    proptest::collection::vec(-100.0f64..100.0, 3).prop_map(Vector::from_vec)
}

proptest! {
    #[test]
    fn inverse_round_trips(m in spd3()) {
        let inv = m.inverse().unwrap();
        let prod = m.mul_matrix(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[(r, c)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn inverse_solves_linear_systems(m in spd3(), v in vec3()) {
        let inv = m.inverse().unwrap();
        let x = inv.mul_vector(&v);
        let back = m.mul_vector(&x);
        for i in 0..3 {
            prop_assert!((back[i] - v[i]).abs() < 1e-6 * (1.0 + v[i].abs()));
        }
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(a in spd3(), b in spd3()) {
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.mul_matrix(&b).determinant().unwrap();
        prop_assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
    }

    #[test]
    fn mahalanobis_is_nonnegative_and_zero_at_mean(m in spd3(), v in vec3()) {
        let inv = m.inverse().unwrap();
        let mu = Vector::zeros(3);
        let d = mahalanobis_squared(&v, &mu, &inv);
        prop_assert!(d >= -1e-9);
        let at_mean = mahalanobis_squared(&mu, &mu, &inv);
        prop_assert!(at_mean.abs() < 1e-12);
    }

    #[test]
    fn mean_is_translation_equivariant(vs in proptest::collection::vec(vec3(), 1..8), shift in vec3()) {
        let mean = mean_vector(&vs);
        let shifted: Vec<Vector> = vs.iter().map(|v| v + &shift).collect();
        let shifted_mean = mean_vector(&shifted);
        for i in 0..3 {
            prop_assert!((shifted_mean[i] - (mean[i] + shift[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_is_commutative(a in vec3(), b in vec3()) {
        prop_assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn transpose_is_involutive(m in spd3()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}
