//! Property-style tests for the linear-algebra substrate.
//!
//! Written as plain `#[test]` loops over a seeded xorshift generator: the
//! build environment is offline, so no proptest. Each test sweeps many
//! random-ish cases deterministically.

use grandma_linalg::{mahalanobis_squared, mean_vector, Matrix, Vector};

/// Tiny deterministic PRNG (xorshift64*) for generating test cases.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform f64 in [lo, hi).
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// Well-conditioned symmetric positive-definite 3x3 matrix as `A Aᵀ + I`.
fn spd3(rng: &mut TestRng) -> Matrix {
    let v: Vec<f64> = (0..9).map(|_| rng.range(-3.0, 3.0)).collect();
    let a = Matrix::from_rows(&[&v[0..3], &v[3..6], &v[6..9]]);
    let mut m = a.mul_matrix(&a.transpose());
    m.add_ridge(1.0);
    m
}

fn vec3(rng: &mut TestRng) -> Vector {
    Vector::from_vec((0..3).map(|_| rng.range(-100.0, 100.0)).collect())
}

const CASES: usize = 128;

#[test]
fn inverse_round_trips() {
    let mut rng = TestRng::new(0x11a1);
    for _ in 0..CASES {
        let m = spd3(&mut rng);
        let inv = m.inverse().unwrap();
        let prod = m.mul_matrix(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((prod[(r, c)] - expect).abs() < 1e-8);
            }
        }
    }
}

#[test]
fn inverse_solves_linear_systems() {
    let mut rng = TestRng::new(0x11a2);
    for _ in 0..CASES {
        let m = spd3(&mut rng);
        let v = vec3(&mut rng);
        let inv = m.inverse().unwrap();
        let x = inv.mul_vector(&v);
        let back = m.mul_vector(&x);
        for i in 0..3 {
            assert!((back[i] - v[i]).abs() < 1e-6 * (1.0 + v[i].abs()));
        }
    }
}

#[test]
fn determinant_of_product_is_product_of_determinants() {
    let mut rng = TestRng::new(0x11a3);
    for _ in 0..CASES {
        let a = spd3(&mut rng);
        let b = spd3(&mut rng);
        let da = a.determinant().unwrap();
        let db = b.determinant().unwrap();
        let dab = a.mul_matrix(&b).determinant().unwrap();
        assert!((dab - da * db).abs() < 1e-6 * (1.0 + dab.abs()));
    }
}

#[test]
fn mahalanobis_is_nonnegative_and_zero_at_mean() {
    let mut rng = TestRng::new(0x11a4);
    for _ in 0..CASES {
        let m = spd3(&mut rng);
        let v = vec3(&mut rng);
        let inv = m.inverse().unwrap();
        let mu = Vector::zeros(3);
        let d = mahalanobis_squared(&v, &mu, &inv);
        assert!(d >= -1e-9);
        let at_mean = mahalanobis_squared(&mu, &mu, &inv);
        assert!(at_mean.abs() < 1e-12);
    }
}

#[test]
fn mean_is_translation_equivariant() {
    let mut rng = TestRng::new(0x11a5);
    for _ in 0..CASES {
        let n = 1 + (rng.next_u64() % 7) as usize;
        let vs: Vec<Vector> = (0..n).map(|_| vec3(&mut rng)).collect();
        let shift = vec3(&mut rng);
        let mean = mean_vector(&vs);
        let shifted: Vec<Vector> = vs.iter().map(|v| v + &shift).collect();
        let shifted_mean = mean_vector(&shifted);
        for i in 0..3 {
            assert!((shifted_mean[i] - (mean[i] + shift[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn dot_is_commutative() {
    let mut rng = TestRng::new(0x11a6);
    for _ in 0..CASES {
        let a = vec3(&mut rng);
        let b = vec3(&mut rng);
        assert_eq!(a.dot(&b), b.dot(&a));
    }
}

#[test]
fn transpose_is_involutive() {
    let mut rng = TestRng::new(0x11a7);
    for _ in 0..CASES {
        let m = spd3(&mut rng);
        assert_eq!(m.transpose().transpose(), m);
    }
}
