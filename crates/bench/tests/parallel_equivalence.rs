//! Batched evaluation must be worker-count-invariant: per-gesture scores
//! are computed in parallel but folded serially in dataset order, so every
//! [`grandma_bench::EvalSummary`] field — including the floating-point
//! accumulators — is identical for 1 and N workers.

use grandma_bench::{evaluate_with_workers, EvalSummary};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn assert_summaries_identical(a: &EvalSummary, b: &EvalSummary) {
    assert_eq!(a.dataset, b.dataset);
    assert_eq!(a.full_accuracy, b.full_accuracy);
    assert_eq!(a.eager_accuracy, b.eager_accuracy);
    assert_eq!(a.avg_fraction_seen, b.avg_fraction_seen);
    assert_eq!(a.avg_min_fraction, b.avg_min_fraction);
    assert_eq!(a.fired_early, b.fired_early);
    assert_eq!(a.total, b.total);
    assert_eq!(a.per_class.len(), b.per_class.len());
    for (x, y) in a.per_class.iter().zip(&b.per_class) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.full_correct, y.full_correct);
        assert_eq!(x.eager_correct, y.eager_correct);
        assert_eq!(x.total, y.total);
        assert_eq!(x.avg_fraction_seen, y.avg_fraction_seen);
        assert_eq!(x.avg_min_fraction, y.avg_min_fraction);
        assert_eq!(x.fired_early, y.fired_early);
    }
    assert_eq!(a.train_report.records, b.train_report.records);
    assert_eq!(
        a.train_report.auc_classes.as_ref(),
        b.train_report.auc_classes.as_ref()
    );
    assert_eq!(a.train_report.move_outcome, b.train_report.move_outcome);
    assert_eq!(a.train_report.tweaks, b.train_report.tweaks);
}

#[test]
fn evaluate_is_identical_for_every_worker_count() {
    let data = datasets::eight_way(23, 6, 4);
    let mask = FeatureMask::all();
    let config = EagerConfig::default();
    let serial = evaluate_with_workers(&data, &mask, &config, 1).unwrap();
    for workers in [2, 4, 8] {
        let parallel = evaluate_with_workers(&data, &mask, &config, workers).unwrap();
        assert_summaries_identical(&serial, &parallel);
    }
}

#[test]
fn evaluate_on_gdp_is_identical_serial_vs_parallel() {
    let data = datasets::gdp(7, 6, 3);
    let mask = FeatureMask::all();
    let config = EagerConfig::default();
    let serial = evaluate_with_workers(&data, &mask, &config, 1).unwrap();
    let parallel = evaluate_with_workers(&data, &mask, &config, 4).unwrap();
    assert_summaries_identical(&serial, &parallel);
}
