#![forbid(unsafe_code)]
//! Shared evaluation harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§5); this library holds the common machinery:
//! train a full classifier and an eager recognizer on a dataset's training
//! split, run both over the testing split, and summarize accuracy and
//! eagerness the way the paper reports them.

pub mod report;

use grandma_core::parallel::{available_workers, parallel_map};
use grandma_core::{
    Classifier, EagerConfig, EagerRecognizer, EagerTrainReport, FeatureMask, TrainError,
};
use grandma_synth::Dataset;

/// Per-class evaluation results.
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// Class name.
    pub name: String,
    /// Correct / total for the full classifier.
    pub full_correct: usize,
    /// Correct / total for the eager recognizer.
    pub eager_correct: usize,
    /// Test gestures of this class.
    pub total: usize,
    /// Mean fraction of mouse points the eager recognizer examined.
    pub avg_fraction_seen: f64,
    /// Mean ground-truth minimum fraction (when the dataset provides it).
    pub avg_min_fraction: Option<f64>,
    /// How many test gestures were classified before their final point.
    pub fired_early: usize,
}

/// Whole-dataset evaluation results — the numbers §5 quotes.
#[derive(Debug, Clone)]
pub struct EvalSummary {
    /// Dataset name.
    pub dataset: String,
    /// Full-classifier accuracy over the test split.
    pub full_accuracy: f64,
    /// Eager-recognizer accuracy over the test split.
    pub eager_accuracy: f64,
    /// Mean fraction of points examined before classification
    /// (the paper's 67.9 % / 60.5 % numbers).
    pub avg_fraction_seen: f64,
    /// Mean ground-truth minimum fraction (the paper's hand-measured
    /// 59.4 %), when available.
    pub avg_min_fraction: Option<f64>,
    /// Test gestures classified before their final point.
    pub fired_early: usize,
    /// Total test gestures.
    pub total: usize,
    /// Per-class breakdown.
    pub per_class: Vec<ClassSummary>,
    /// The eager training report (pipeline diagnostics).
    pub train_report: EagerTrainReport,
}

impl EvalSummary {
    /// Renders the §5-style headline sentence.
    pub fn headline(&self) -> String {
        format!(
            "{}: full classifier {:.1}% correct; eager recognizer {:.1}% correct, \
             examining {:.1}% of mouse points on average{}",
            self.dataset,
            100.0 * self.full_accuracy,
            100.0 * self.eager_accuracy,
            100.0 * self.avg_fraction_seen,
            match self.avg_min_fraction {
                Some(m) => format!(" (ground-truth minimum {:.1}%)", 100.0 * m),
                None => String::new(),
            }
        )
    }
}

/// Trains on `data.training`, evaluates on `data.testing`.
///
/// Test gestures are scored on [`available_workers`] threads; see
/// [`evaluate_with_workers`] for an explicit count. The summary is
/// identical for every worker count.
///
/// # Errors
///
/// Propagates [`TrainError`] from classifier training.
pub fn evaluate(
    data: &Dataset,
    mask: &FeatureMask,
    config: &EagerConfig,
) -> Result<EvalSummary, TrainError> {
    evaluate_with_workers(data, mask, config, available_workers())
}

/// [`evaluate`] with an explicit worker count for both eager training and
/// the batched test pass.
///
/// Each test gesture is scored independently and the per-gesture results
/// are folded into the summary serially, in dataset order — so every
/// worker count (including 1, which spawns no threads) produces an
/// identical [`EvalSummary`], down to the floating-point accumulators.
///
/// # Errors
///
/// Propagates [`TrainError`] from classifier training.
pub fn evaluate_with_workers(
    data: &Dataset,
    mask: &FeatureMask,
    config: &EagerConfig,
    workers: usize,
) -> Result<EvalSummary, TrainError> {
    let full = Classifier::train(&data.training, mask)?;
    let (eager, train_report) =
        EagerRecognizer::train_with_workers(&data.training, mask, config, workers)?;

    let mut per_class: Vec<ClassSummary> = data
        .class_names
        .iter()
        .map(|n| ClassSummary {
            name: n.to_string(),
            full_correct: 0,
            eager_correct: 0,
            total: 0,
            avg_fraction_seen: 0.0,
            avg_min_fraction: data.testing.first().and_then(|l| l.min_points).map(|_| 0.0),
            fired_early: 0,
        })
        .collect();

    // Score every test gesture in parallel, then fold the results in
    // dataset order below.
    let scored = parallel_map(&data.testing, workers, |_, labeled| {
        let full_class = full.classify(&labeled.gesture).class;
        let run = eager.run(&labeled.gesture);
        (full_class, run)
    });

    for (labeled, (full_class, run)) in data.testing.iter().zip(scored) {
        let summary = &mut per_class[labeled.class];
        summary.total += 1;
        if full_class == labeled.class {
            summary.full_correct += 1;
        }
        if run.class == labeled.class {
            summary.eager_correct += 1;
        }
        if run.eager {
            summary.fired_early += 1;
        }
        summary.avg_fraction_seen += run.fraction_seen();
        if let (Some(min_points), Some(acc)) = (labeled.min_points, &mut summary.avg_min_fraction) {
            *acc += (min_points as f64 / labeled.gesture.len() as f64).min(1.0);
        }
    }
    for s in &mut per_class {
        if s.total > 0 {
            s.avg_fraction_seen /= s.total as f64;
            if let Some(m) = &mut s.avg_min_fraction {
                *m /= s.total as f64;
            }
        }
    }
    let total: usize = per_class.iter().map(|s| s.total).sum();
    let full_correct: usize = per_class.iter().map(|s| s.full_correct).sum();
    let eager_correct: usize = per_class.iter().map(|s| s.eager_correct).sum();
    let fired_early: usize = per_class.iter().map(|s| s.fired_early).sum();
    let avg_fraction_seen = per_class
        .iter()
        .map(|s| s.avg_fraction_seen * s.total as f64)
        .sum::<f64>()
        / total as f64;
    let avg_min_fraction = if per_class.iter().all(|s| s.avg_min_fraction.is_some()) {
        Some(
            per_class
                .iter()
                .map(|s| s.avg_min_fraction.unwrap_or(0.0) * s.total as f64)
                .sum::<f64>()
                / total as f64,
        )
    } else {
        None
    };
    Ok(EvalSummary {
        dataset: data.name.to_string(),
        full_accuracy: full_correct as f64 / total as f64,
        eager_accuracy: eager_correct as f64 / total as f64,
        avg_fraction_seen,
        avg_min_fraction,
        fired_early,
        total,
        per_class,
        train_report,
    })
}

/// Prints the standard per-class table for an [`EvalSummary`].
pub fn print_per_class(summary: &EvalSummary) {
    let mut rows = Vec::new();
    for s in &summary.per_class {
        rows.push(vec![
            s.name.clone(),
            format!("{}/{}", s.full_correct, s.total),
            format!("{}/{}", s.eager_correct, s.total),
            format!("{:.1}%", 100.0 * s.avg_fraction_seen),
            match s.avg_min_fraction {
                Some(m) => format!("{:.1}%", 100.0 * m),
                None => "-".to_string(),
            },
            format!("{}/{}", s.fired_early, s.total),
        ]);
    }
    println!(
        "{}",
        report::table(
            &["class", "full", "eager", "seen", "min", "fired-early"],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use grandma_synth::datasets;

    #[test]
    fn evaluate_produces_consistent_totals() {
        let data = datasets::eight_way(11, 5, 4);
        let summary = evaluate(&data, &FeatureMask::all(), &EagerConfig::default()).unwrap();
        assert_eq!(summary.total, 32);
        assert_eq!(summary.per_class.len(), 8);
        assert!(summary.full_accuracy > 0.5);
        assert!(summary.eager_accuracy > 0.5);
        assert!(summary.avg_fraction_seen > 0.0 && summary.avg_fraction_seen <= 1.0);
        assert!(summary.avg_min_fraction.is_some());
    }

    #[test]
    fn headline_mentions_the_key_numbers() {
        let data = datasets::ud(3, 6, 4);
        let summary = evaluate(&data, &FeatureMask::all(), &EagerConfig::default()).unwrap();
        let h = summary.headline();
        assert!(h.contains("full classifier"));
        assert!(h.contains("eager recognizer"));
        assert!(h.contains('%'));
    }
}
