//! Plain-text table rendering for the reproduction binaries.

/// Renders rows as an aligned plain-text table with a header rule.
///
/// # Examples
///
/// ```
/// let t = grandma_bench::report::table(
///     &["name", "value"],
///     &[vec!["alpha".into(), "1".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.contains("alpha"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a `key: value` block (used for headline numbers).
pub fn kv_block(pairs: &[(&str, String)]) -> String {
    let width = pairs.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(&format!("{:width$} : {}\n", k, v, width = width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Column 2 starts at the same offset in every row.
        let offset = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), offset);
        assert_eq!(lines[3].find("22").unwrap(), offset);
    }

    #[test]
    fn kv_block_aligns_keys() {
        let b = kv_block(&[("a", "1".into()), ("longer", "2".into())]);
        assert!(b.contains("a      : 1"));
        assert!(b.contains("longer : 2"));
    }
}
