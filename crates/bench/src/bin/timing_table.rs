//! §5's compute-cost paragraph.
//!
//! "A fixed amount of computation needs to occur on each mouse point:
//! first the feature vector must be updated (taking 0.5 msec on a DEC
//! MicroVAX II), and then the vector must be classified by the AUC (taking
//! 0.27 msec per class, or 6 msec in the case of GDP)."
//!
//! This binary measures the same two quantities on the current machine,
//! plus the per-class scaling of AUC evaluation. Absolute numbers are of
//! course far smaller than a 1985 MicroVAX's; the reproduced *shape* is
//! (a) constant per-point feature cost independent of gesture length and
//! (b) AUC cost linear in the number of classes.
//!
//! Run: `cargo run -p grandma-bench --bin timing_table --release`

use std::time::Instant;

use grandma_bench::report;
use grandma_core::{EagerConfig, EagerRecognizer, FeatureExtractor, FeatureMask};
use grandma_geom::Point;
use grandma_synth::datasets;

fn main() {
    // (a) Per-point feature update cost, for increasing gesture lengths —
    // flat if the update really is O(1) per point.
    let mut rows = Vec::new();
    for &len in &[100usize, 1_000, 10_000, 100_000] {
        let points: Vec<Point> = (0..len)
            .map(|i| {
                let s = i as f64;
                Point::new(s.sin() * 50.0 + s * 0.1, s.cos() * 50.0, s * 10.0)
            })
            .collect();
        let start = Instant::now();
        let mut fx = FeatureExtractor::new();
        for &p in &points {
            fx.update(p);
        }
        let total = start.elapsed();
        std::hint::black_box(fx.features());
        rows.push(vec![
            len.to_string(),
            format!("{:.1} ns", total.as_nanos() as f64 / len as f64),
        ]);
    }
    println!("== per-point feature update (paper: 0.5 ms/point on a MicroVAX II) ==\n");
    println!(
        "{}",
        report::table(&["gesture points", "cost per point"], &rows)
    );

    // (b) AUC evaluation cost vs class count.
    let mut rows = Vec::new();
    for &classes in &[2usize, 4, 8] {
        let data = datasets::eight_way(0x7131, 10, 0);
        let training: Vec<_> = data.training.into_iter().take(classes).collect();
        let (rec, _) =
            EagerRecognizer::train(&training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        let features = FeatureExtractor::extract(
            &grandma_synth::datasets::eight_way(0x7132, 1, 0).training[0][0],
            &FeatureMask::all(),
        );
        let auc_classes = rec.auc().kinds().len();
        let iterations = 20_000;
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(rec.auc().is_unambiguous(std::hint::black_box(&features)));
        }
        let per_eval = start.elapsed().as_nanos() as f64 / iterations as f64;
        rows.push(vec![
            classes.to_string(),
            auc_classes.to_string(),
            format!("{:.0} ns", per_eval),
            format!("{:.1} ns", per_eval / auc_classes as f64),
        ]);
    }
    println!("== AUC evaluation vs class count (paper: 0.27 ms/class; ~6 ms for GDP) ==\n");
    println!(
        "{}",
        report::table(
            &[
                "gesture classes",
                "AUC classes",
                "per evaluation",
                "per AUC class"
            ],
            &rows
        )
    );
    println!("expected shape: per-point feature cost flat in gesture length; AUC cost\nlinear in the class count (roughly constant per-class figure).");
}
