//! Figure 9 + §5: the eight-direction two-segment gesture set.
//!
//! Paper numbers: full classifier 99.2 % correct; eager recognizer 97.0 %
//! correct, examining 67.9 % of mouse points on average, against a
//! hand-measured minimum of 59.4 %. Trained with 10 examples per class,
//! tested on 30.
//!
//! Run: `cargo run -p grandma-bench --bin fig9`

use grandma_bench::{evaluate, print_per_class, report};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let data = datasets::eight_way(0x0f19, 10, 30);
    let summary =
        evaluate(&data, &FeatureMask::all(), &EagerConfig::default()).expect("training succeeds");

    println!("== Figure 9: eight two-segment gesture classes ==\n");
    println!("{}", summary.headline());
    println!();
    print_per_class(&summary);

    // Figure 9 annotates each example "min,seen/total" (the hand-counted
    // minimum, the point the eager recognizer classified at, and the
    // total); print the first five test examples per class the same way,
    // with E marking an eager misclassification.
    let (eager, _) = grandma_core::EagerRecognizer::train(
        &data.training,
        &FeatureMask::all(),
        &EagerConfig::default(),
    )
    .expect("training succeeds");
    println!("per-example annotations (min,seen/total as in the figure):");
    for (c, name) in data.class_names.iter().enumerate() {
        let cells: Vec<String> = data
            .testing_of(c)
            .take(5)
            .map(|l| {
                let run = eager.run(&l.gesture);
                let mark = if run.class != l.class { " E" } else { "" };
                format!(
                    "{},{}/{}{}",
                    l.min_points.unwrap_or(0),
                    run.points_at_recognition,
                    run.total_points,
                    mark
                )
            })
            .collect();
        println!("  {name:3} {}", cells.join("  "));
    }
    println!();
    println!(
        "{}",
        report::kv_block(&[
            ("paper full accuracy", "99.2%".into()),
            (
                "ours  full accuracy",
                format!("{:.1}%", 100.0 * summary.full_accuracy),
            ),
            ("paper eager accuracy", "97.0%".into()),
            (
                "ours  eager accuracy",
                format!("{:.1}%", 100.0 * summary.eager_accuracy),
            ),
            ("paper points examined", "67.9%".into()),
            (
                "ours  points examined",
                format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
            ),
            ("paper minimum possible", "59.4% (hand-measured)".into()),
            (
                "ours  minimum possible",
                format!(
                    "{:.1}% (generator ground truth)",
                    100.0 * summary.avg_min_fraction.unwrap_or(0.0)
                ),
            ),
        ])
    );
    println!(
        "expected shape: eager accuracy slightly below full; points examined \
         above the minimum but well below 100%."
    );
}
