//! Ablation: which of the thirteen Rubine features carry the weight?
//!
//! §4.2 says "currently twelve" features without naming them; this sweep
//! measures the full and eager metrics for the canonical 13, the
//! 12-feature variant, the spatial-only 11, and leave-one-out for each
//! feature, quantifying how much each contributes on the GDP set.
//!
//! Run: `cargo run -p grandma-bench --bin ablate_features`

use grandma_bench::{evaluate, report};
use grandma_core::{EagerConfig, FeatureMask, FEATURE_NAMES};
use grandma_synth::datasets;

fn main() {
    let data = datasets::gdp(0xfea7, 10, 30);
    let config = EagerConfig::default();

    println!("== Ablation: feature subsets (GDP set) ==\n");
    let mut rows = Vec::new();
    let eval_mask = |label: String, mask: FeatureMask, rows: &mut Vec<Vec<String>>| {
        let summary = evaluate(&data, &mask, &config).expect("training succeeds");
        rows.push(vec![
            label,
            mask.count().to_string(),
            format!("{:.1}%", 100.0 * summary.full_accuracy),
            format!("{:.1}%", 100.0 * summary.eager_accuracy),
            format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
        ]);
    };
    eval_mask("all 13".into(), FeatureMask::all(), &mut rows);
    eval_mask(
        "paper-twelve (no max speed)".into(),
        FeatureMask::paper_twelve(),
        &mut rows,
    );
    eval_mask(
        "spatial 11 (no timing)".into(),
        FeatureMask::without_timing(),
        &mut rows,
    );
    for (i, name) in FEATURE_NAMES.iter().enumerate() {
        let mut mask = FeatureMask::all();
        mask.disable(i);
        eval_mask(format!("without {name}"), mask, &mut rows);
    }
    println!(
        "{}",
        report::table(
            &[
                "feature set",
                "dim",
                "full accuracy",
                "eager accuracy",
                "points seen"
            ],
            &rows
        )
    );
    println!(
        "expected shape: no single feature is load-bearing (the linear\n\
         discriminant redistributes weight), but dropping whole groups (timing)\n\
         visibly moves the eager numbers."
    );
}
