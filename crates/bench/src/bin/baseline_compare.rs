//! Baseline comparison: the paper's linear-discriminant classifier vs a
//! nearest-neighbour template matcher (the `$1`-family design that
//! descends from this line of work).
//!
//! §4.2 positions statistical recognition against the alternatives;
//! this harness quantifies the trade on the paper's own datasets:
//! accuracy, training cost, and per-classification cost (linear in the
//! *template count* for the baseline vs linear in the *class count* for
//! the paper's classifier).
//!
//! Run: `cargo run -p grandma-bench --bin baseline_compare --release`

use std::time::Instant;

use grandma_bench::report;
use grandma_core::baseline::{TemplateConfig, TemplateRecognizer};
use grandma_core::{Classifier, FeatureMask};
use grandma_synth::datasets;

fn main() {
    println!("== Baseline: Rubine linear discriminant vs template matching ==\n");
    for (name, data) in [
        ("eight_way", datasets::eight_way(0xba5e, 10, 30)),
        ("gdp", datasets::gdp(0xba5e, 10, 30)),
        ("buxton_notes", datasets::buxton_notes(0xba5e, 10, 30)),
    ] {
        let start = Instant::now();
        let rubine = Classifier::train(&data.training, &FeatureMask::all())
            .expect("training succeeds");
        let rubine_train = start.elapsed();
        let start = Instant::now();
        let template = TemplateRecognizer::train(&data.training, &TemplateConfig::default())
            .expect("training succeeds");
        let template_train = start.elapsed();

        let mut rubine_ok = 0;
        let start = Instant::now();
        for l in &data.testing {
            if rubine.classify(&l.gesture).class == l.class {
                rubine_ok += 1;
            }
        }
        let rubine_classify = start.elapsed() / data.testing.len() as u32;

        let mut template_ok = 0;
        let start = Instant::now();
        for l in &data.testing {
            if template.classify(&l.gesture).class == l.class {
                template_ok += 1;
            }
        }
        let template_classify = start.elapsed() / data.testing.len() as u32;

        let n = data.testing.len();
        println!("dataset: {name} ({} classes, {} templates)", data.num_classes(), template.template_count());
        println!(
            "{}",
            report::table(
                &["recognizer", "accuracy", "train time", "classify/gesture"],
                &[
                    vec![
                        "Rubine linear".to_string(),
                        format!("{:.1}%", 100.0 * rubine_ok as f64 / n as f64),
                        format!("{rubine_train:.2?}"),
                        format!("{rubine_classify:.2?}"),
                    ],
                    vec![
                        "template matching".to_string(),
                        format!("{:.1}%", 100.0 * template_ok as f64 / n as f64),
                        format!("{template_train:.2?}"),
                        format!("{template_classify:.2?}"),
                    ],
                ]
            )
        );
    }
    println!(
        "expected shape: comparable accuracy on well-separated sets; the linear\n\
         classifier classifies in O(classes x features) per gesture while the\n\
         template matcher pays O(templates x resampled points) — the cost gap\n\
         §4.2's closed-form training buys. Note the baseline has no eager\n\
         counterpart: template distance over a prefix says nothing about\n\
         ambiguity, which is exactly why §4.3 reuses the statistical machinery."
    );
}
