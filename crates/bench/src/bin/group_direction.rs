//! §5's gesture-set alteration: "the group gesture was trained clockwise
//! because when it was counterclockwise it prevented the copy gesture from
//! ever being eagerly recognized."
//!
//! Trains eager recognizers on both variants of the GDP set and compares
//! the copy class's eagerness.
//!
//! Run: `cargo run -p grandma-bench --bin group_direction`

use grandma_bench::{evaluate, report};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let mask = FeatureMask::all();
    let config = EagerConfig::default();
    let cw = evaluate(&datasets::gdp(0x0c0c, 10, 30), &mask, &config).expect("training succeeds");
    let ccw = evaluate(&datasets::gdp_ccw_group(0x0c0c, 10, 30), &mask, &config)
        .expect("training succeeds");

    let copy_cw = cw
        .per_class
        .iter()
        .find(|s| s.name == "copy")
        .expect("copy class");
    let copy_ccw = ccw
        .per_class
        .iter()
        .find(|s| s.name == "copy")
        .expect("copy class");

    println!("== §5 ablation: group drawn clockwise vs counterclockwise ==\n");
    let rows = vec![
        vec![
            "clockwise group (altered set, Figure 10)".to_string(),
            format!("{:.1}%", 100.0 * copy_cw.avg_fraction_seen),
            format!("{}/{}", copy_cw.fired_early, copy_cw.total),
            format!("{:.1}%", 100.0 * cw.avg_fraction_seen),
        ],
        vec![
            "counterclockwise group (original set)".to_string(),
            format!("{:.1}%", 100.0 * copy_ccw.avg_fraction_seen),
            format!("{}/{}", copy_ccw.fired_early, copy_ccw.total),
            format!("{:.1}%", 100.0 * ccw.avg_fraction_seen),
        ],
    ];
    println!(
        "{}",
        report::table(
            &[
                "variant",
                "copy: points seen",
                "copy: fired early",
                "all: points seen"
            ],
            &rows
        )
    );
    println!(
        "expected shape: with the counterclockwise group shadowing copy's\n\
         counterclockwise arc, copy is (almost) never eagerly recognized; the\n\
         clockwise group frees it."
    );
}
