//! Ablation A4: the three phase-transition modes (§1).
//!
//! The same gesture is replayed through the GRANDMA gesture handler under
//! each transition policy:
//!
//! 1. mouse-up only (manipulation omitted),
//! 2. the 200 ms dwell timeout, and
//! 3. eager recognition,
//!
//! measuring when application feedback becomes available — in points seen
//! before the transition and in interaction milliseconds.
//!
//! Run: `cargo run -p grandma-bench --bin phase_modes`

use std::cell::RefCell;
use std::rc::Rc;

use grandma_bench::report;
use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{gesture_events, gesture_events_with_hold, Button, DwellDetector};
use grandma_synth::datasets;
use grandma_toolkit::{
    GestureClass, GestureHandler, GestureHandlerConfig, HandlerRef, Interface, PhaseTransition,
};

fn main() {
    let data = datasets::eight_way(0xa4a4, 10, 10);
    let (recognizer, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    let recognizer = Rc::new(recognizer);

    let run_mode = |eager: bool, hold: bool| -> (f64, f64, usize) {
        let mut interface = Interface::new();
        let handler = Rc::new(RefCell::new(GestureHandler::new(
            recognizer.clone(),
            data.class_names
                .iter()
                .map(|n| GestureClass::named(n))
                .collect(),
            GestureHandlerConfig {
                eager,
                ..GestureHandlerConfig::default()
            },
        )));
        let dyn_ref: HandlerRef = handler.clone();
        interface.attach_root_handler(dyn_ref);
        for labeled in &data.testing {
            let g = &labeled.gesture;
            let events = if hold {
                // The user pauses just past the corner to hand over to
                // manipulation.
                let at = labeled.min_points.unwrap_or(g.len()).min(g.len() - 1);
                gesture_events_with_hold(g, Button::Left, Some((at, 250.0)))
            } else {
                gesture_events(g, Button::Left)
            };
            let mut dwell = DwellDetector::paper_default();
            for e in dwell.expand(&events) {
                interface.dispatch(&e);
            }
        }
        let handler = handler.borrow();
        let n = handler.traces().len().max(1) as f64;
        let avg_points = handler
            .traces()
            .iter()
            .map(|t| t.points_at_recognition as f64)
            .sum::<f64>()
            / n;
        let avg_fraction = handler
            .traces()
            .iter()
            .map(|t| t.points_at_recognition as f64 / t.total_points.max(1) as f64)
            .sum::<f64>()
            / n;
        let manipulable = handler
            .traces()
            .iter()
            .filter(|t| t.transition != PhaseTransition::MouseUp)
            .count();
        (avg_points, avg_fraction, manipulable)
    };

    println!("== §1's three phase-transition modes ==\n");
    let mut rows = Vec::new();
    for (label, eager, hold) in [
        ("1: mouse-up only", false, false),
        ("2: 200 ms dwell (user pauses past the corner)", false, true),
        ("3: eager recognition", true, false),
    ] {
        let (points, fraction, manipulable) = run_mode(eager, hold);
        rows.push(vec![
            label.to_string(),
            format!("{points:.1}"),
            format!("{:.1}%", 100.0 * fraction),
            format!("{manipulable}/{}", data.testing.len()),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "transition mode",
                "points before feedback",
                "fraction of gesture",
                "interactions with manipulation phase"
            ],
            &rows
        )
    );
    println!(
        "expected shape: mouse-up sees 100% of the gesture and allows no\n\
         manipulation; the dwell pause transitions mid-gesture at the cost of a\n\
         250 ms stall; eager recognition transitions mid-gesture with no stall —\n\
         \"a smooth and natural interaction\"."
    );
}
