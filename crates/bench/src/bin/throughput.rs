//! Throughput benchmark: serial vs parallel eager training and batched
//! evaluation, plus the per-point session cost with a heap-allocation
//! count.
//!
//! Rubine's §5 argument for eager recognition is that it keeps up with the
//! mouse; this binary measures whether the reproduction does. It times:
//!
//! (a) eager training (the §4.4 classify-every-prefix pass) on a synthetic
//!     eleven-class GDP-sized set, serial vs parallel;
//! (b) batched full-classifier + eager evaluation over the test split,
//!     serial vs parallel;
//! (c) the per-point cost of [`grandma_core::EagerSession::feed`], with the
//!     number of heap allocations per point after warm-up (expected: 0).
//!
//! Results are written to `BENCH_throughput.json` at the repo root so
//! future changes have a perf trajectory to compare against.
//!
//! Run: `cargo run -p grandma-bench --bin throughput --release`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use grandma_bench::evaluate_with_workers;
use grandma_core::parallel::available_workers;
use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_synth::datasets;

/// [`System`] wrapped with an allocation counter, so the per-point claim
/// ("zero heap allocations after warm-up") is measured, not asserted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const SEED: u64 = 7;
const TRAIN_PER_CLASS: usize = 15;
const TEST_PER_CLASS: usize = 8;
const REPS: usize = 5;

/// Times `f` REPS times and returns the fastest wall-clock milliseconds.
fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let workers = available_workers();
    let data = datasets::gdp(SEED, TRAIN_PER_CLASS, TEST_PER_CLASS);
    let mask = FeatureMask::all();
    let config = EagerConfig::default();

    // (a) Eager training, serial vs parallel.
    let train_serial_ms = time_best(|| {
        let _ = EagerRecognizer::train_with_workers(&data.training, &mask, &config, 1).unwrap();
    });
    let train_parallel_ms = time_best(|| {
        let _ =
            EagerRecognizer::train_with_workers(&data.training, &mask, &config, workers).unwrap();
    });

    // (b) Batched evaluation (full classifier + eager recognizer over the
    // test split), serial vs parallel.
    let eval_serial_ms = time_best(|| {
        let _ = evaluate_with_workers(&data, &mask, &config, 1).unwrap();
    });
    let eval_parallel_ms = time_best(|| {
        let _ = evaluate_with_workers(&data, &mask, &config, workers).unwrap();
    });

    // (c) Per-point session cost and allocation count. Sessions are driven
    // over every test gesture; the allocation counter is read after each
    // session is created (the one-time buffer warm-up) so the delta counts
    // only what `feed`/`finish` allocate — which must be zero.
    let (rec, _) = EagerRecognizer::train_with_workers(&data.training, &mask, &config, 1).unwrap();
    let mut points = 0u64;
    let mut feed_allocs = 0u64;
    let start = Instant::now();
    for labeled in &data.testing {
        let mut session = rec.session();
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for &p in labeled.gesture.points() {
            let _ = session.feed(p);
            points += 1;
        }
        let _ = session.finish();
        feed_allocs += ALLOCATIONS.load(Ordering::Relaxed) - before;
    }
    let session_elapsed = start.elapsed().as_secs_f64();
    let ns_per_point = session_elapsed * 1e9 / points as f64;
    let allocs_per_point = feed_allocs as f64 / points as f64;

    let train_speedup = train_serial_ms / train_parallel_ms;
    let eval_speedup = eval_serial_ms / eval_parallel_ms;

    // Regression gate: when only one worker is available the parallel
    // entry points short-circuit to the serial path (no spawn, no merge),
    // so "parallel" must not be meaningfully slower than serial. The
    // margin absorbs shared-machine timer noise; an actual regression
    // (spawning threads for workers == 1) costs far more than 30%.
    if workers == 1 {
        assert!(
            eval_parallel_ms <= eval_serial_ms * 1.3,
            "workers == 1 evaluate must short-circuit to serial: \
             parallel {eval_parallel_ms:.3} ms vs serial {eval_serial_ms:.3} ms"
        );
        assert!(
            train_parallel_ms <= train_serial_ms * 1.3,
            "workers == 1 training must short-circuit to serial: \
             parallel {train_parallel_ms:.3} ms vs serial {train_serial_ms:.3} ms"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"dataset\": \"{}\",\n  \"classes\": {},\n  \
         \"train_per_class\": {},\n  \"test_per_class\": {},\n  \"seed\": {},\n  \
         \"cores\": {},\n  \"workers\": {},\n  \"reps\": {},\n  \
         \"train\": {{ \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3} }},\n  \
         \"evaluate\": {{ \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3} }},\n  \
         \"session\": {{ \"points\": {}, \"ns_per_point\": {:.1}, \
         \"allocations_after_warmup\": {}, \"allocations_per_point\": {:.6} }}\n}}\n",
        data.name,
        data.num_classes(),
        TRAIN_PER_CLASS,
        TEST_PER_CLASS,
        SEED,
        workers,
        workers,
        REPS,
        train_serial_ms,
        train_parallel_ms,
        train_speedup,
        eval_serial_ms,
        eval_parallel_ms,
        eval_speedup,
        points,
        ns_per_point,
        feed_allocs,
        allocs_per_point,
    );

    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(out_path, &json).expect("write BENCH_throughput.json");

    println!(
        "== throughput ({} classes, {} workers) ==",
        data.num_classes(),
        workers
    );
    println!(
        "train    serial {train_serial_ms:8.2} ms   parallel {train_parallel_ms:8.2} ms   \
         speedup {train_speedup:.2}x"
    );
    println!(
        "evaluate serial {eval_serial_ms:8.2} ms   parallel {eval_parallel_ms:8.2} ms   \
         speedup {eval_speedup:.2}x"
    );
    println!(
        "session  {points} points, {ns_per_point:.0} ns/point, \
         {feed_allocs} allocations after warm-up ({allocs_per_point:.4}/point)"
    );
    println!("wrote {out_path}");
}
