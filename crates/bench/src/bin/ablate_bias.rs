//! Ablation A1: §4.6's two safety mechanisms — the ambiguity bias and the
//! constant-tweaking pass.
//!
//! §4.6 first biases the AUC so "ambiguous gestures are five times more
//! likely than unambiguous gestures", *then* tweaks complete-class
//! constants until no incomplete training subgesture is judged
//! unambiguous. Sweeping the bias with tweaks on and off separates the two
//! mechanisms: with tweaks on, the fixed point enforces conservatism
//! regardless of the starting bias; with tweaks off, the bias is the only
//! safety and its size visibly trades eagerness for accuracy.
//!
//! Run: `cargo run -p grandma-bench --bin ablate_bias`

use grandma_bench::{evaluate, report};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    println!("== Ablation: ambiguity bias x tweak pass (paper: 5x bias + tweaks) ==\n");
    for (name, data) in [
        ("eight_way", datasets::eight_way(0xab1a, 10, 30)),
        ("gdp", datasets::gdp(0xab1a, 10, 30)),
    ] {
        let mut rows = Vec::new();
        for tweaks in [true, false] {
            for bias in [1.0, 2.0, 5.0, 10.0, 20.0] {
                let config = EagerConfig {
                    ambiguity_bias: bias,
                    max_tweak_passes: if tweaks { 64 } else { 0 },
                    ..EagerConfig::default()
                };
                let summary =
                    evaluate(&data, &FeatureMask::all(), &config).expect("training succeeds");
                rows.push(vec![
                    format!("{bias}x"),
                    if tweaks { "on" } else { "off" }.to_string(),
                    format!("{:.1}%", 100.0 * summary.eager_accuracy),
                    format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
                    format!("{}/{}", summary.fired_early, summary.total),
                ]);
            }
        }
        println!("dataset: {name}");
        println!(
            "{}",
            report::table(
                &[
                    "bias",
                    "tweaks",
                    "eager accuracy",
                    "points seen",
                    "fired early"
                ],
                &rows
            )
        );
    }
    println!(
        "expected shape: with tweaks ON the results barely depend on the bias —\n\
         the violation-driven fixed point enforces conservatism by itself. With\n\
         tweaks OFF, small biases admit early (sometimes wrong) firing and larger\n\
         biases recover most of the safety; the paper's belt-and-suspenders choice\n\
         costs little and guards against both failure modes."
    );
}
