//! Ablation A2: the accidental-completeness threshold.
//!
//! §4.5 moves complete subgestures that sit within 50 % of the minimum
//! full-to-incomplete Mahalanobis distance of an incomplete class mean.
//! Sweeping the fraction shows why the move step exists: with it off
//! (0 %), accidentally complete training subgestures teach the AUC to fire
//! inside ambiguous regions and accuracy drops; far past the paper's value
//! the move step starts swallowing genuinely unambiguous data and
//! eagerness collapses.
//!
//! Run: `cargo run -p grandma-bench --bin ablate_threshold`

use grandma_bench::{evaluate, report};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    println!("== Ablation: accidental-completeness threshold (paper picks 50%) ==\n");
    for (name, data) in [
        ("eight_way", datasets::eight_way(0xab2b, 10, 30)),
        ("gdp", datasets::gdp(0xab2b, 10, 30)),
    ] {
        let mut rows = Vec::new();
        for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let config = EagerConfig {
                threshold_fraction: fraction,
                ..EagerConfig::default()
            };
            let summary = evaluate(&data, &FeatureMask::all(), &config).expect("training succeeds");
            rows.push(vec![
                format!("{:.0}%", 100.0 * fraction),
                format!("{}", summary.train_report.move_outcome.moved),
                format!("{:.1}%", 100.0 * summary.eager_accuracy),
                format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
            ]);
        }
        println!("dataset: {name}");
        println!(
            "{}",
            report::table(
                &["threshold", "moved", "eager accuracy", "points seen"],
                &rows
            )
        );
    }
}
