//! Figure 8: Buxton's musical-note gestures — a set *not* amenable to
//! eager recognition.
//!
//! "Because all but the last gesture is approximately a subgesture of the
//! one to its right, these gestures would always be considered ambiguous
//! by the eager recognizer, and thus would never be eagerly recognized."
//!
//! Run: `cargo run -p grandma-bench --bin fig8`

use grandma_bench::{evaluate, print_per_class};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let data = datasets::buxton_notes(0x0f08, 10, 30);
    let summary =
        evaluate(&data, &FeatureMask::all(), &EagerConfig::default()).expect("training succeeds");

    println!("== Figure 8: Buxton note gestures (each a prefix of the next) ==\n");
    println!("{}", summary.headline());
    println!();
    print_per_class(&summary);

    // The structural claim: every class that is a prefix of a longer
    // class stays ambiguous to the end; only the longest note can fire
    // early.
    let prefix_classes = &summary.per_class[..summary.per_class.len() - 1];
    let prefix_fired: usize = prefix_classes.iter().map(|s| s.fired_early).sum();
    let prefix_total: usize = prefix_classes.iter().map(|s| s.total).sum();
    let last = summary.per_class.last().expect("non-empty");
    println!(
        "prefix classes fired early: {prefix_fired}/{prefix_total} (paper: never)\n\
         longest class ({}) fired early: {}/{} (allowed: nothing extends it)",
        last.name, last.fired_early, last.total
    );
    println!(
        "\nexpected shape: ~0% early firing for every prefix class; average points\n\
         examined ~100% — eager recognition cannot help this gesture set."
    );
}
