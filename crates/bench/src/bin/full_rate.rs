//! §4.2's full-classifier operating point: C = 11 GDP classes, E = 15
//! training examples per class ("typically we train with 15 examples").
//!
//! Prints the full classifier's recognition rate and its confusion pairs.
//!
//! Run: `cargo run -p grandma-bench --bin full_rate`

use grandma_bench::report;
use grandma_core::{Classifier, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let data = datasets::gdp(0x0042, 15, 30);
    let classifier =
        Classifier::train(&data.training, &FeatureMask::all()).expect("training succeeds");

    let c = data.num_classes();
    let mut confusion = vec![vec![0usize; c]; c];
    let mut correct = 0;
    for labeled in &data.testing {
        let got = classifier.classify(&labeled.gesture).class;
        confusion[labeled.class][got] += 1;
        if got == labeled.class {
            correct += 1;
        }
    }
    println!("== §4.2 operating point: C = 11, E = 15 ==\n");
    println!(
        "full classifier accuracy: {:.1}% ({correct}/{})\n",
        100.0 * correct as f64 / data.testing.len() as f64,
        data.testing.len()
    );
    let mut rows = Vec::new();
    for (truth, row) in confusion.iter().enumerate() {
        for (got, &count) in row.iter().enumerate() {
            if truth != got && count > 0 {
                rows.push(vec![
                    data.class_names[truth].to_string(),
                    data.class_names[got].to_string(),
                    count.to_string(),
                ]);
            }
        }
    }
    if rows.is_empty() {
        println!("no confusions.");
    } else {
        println!(
            "{}",
            report::table(&["true class", "classified as", "count"], &rows)
        );
    }
}
