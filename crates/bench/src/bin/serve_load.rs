//! Load generator for the grandma-serve TCP service.
//!
//! Spins up the sharded service on loopback, then replays seeded
//! `grandma-synth` scripted event streams — a quarter of them
//! `FaultInjector`-corrupted — from N concurrent client connections,
//! measuring end-to-end throughput and per-event round-trip latency
//! (client send → first server frame echoing that event's `seq`).
//!
//! Writes `BENCH_serve.json` next to `BENCH_throughput.json` at the repo
//! root. The workload is fully seeded and dependency-free; absolute
//! numbers move with the host, the artifact schema does not.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventKind, EventScript, InputEvent};
use grandma_serve::{
    encode_client, ClientFrame, FrameBuffer, OutcomeKind, ServeConfig, ServerFrame,
    SessionRouter, TcpService, WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector, SynthRng};

const CLIENTS: u64 = 4;
const SESSIONS_PER_CLIENT: u64 = 8;
const GESTURES_PER_SESSION: usize = 6;
const SHARDS: usize = 4;

/// Seeded event stream for one session; every fourth session corrupted.
fn session_stream(session: u64) -> Vec<InputEvent> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    let mut rng = SynthRng::seed_from_u64(0x10AD ^ session.wrapping_mul(0x9E37_79B9));
    let mut script = EventScript::new();
    for _ in 0..GESTURES_PER_SESSION {
        let idx = (rng.next_u64() as usize) % data.testing.len();
        script = script.then_gesture(&data.testing[idx].gesture, Button::Left);
    }
    let events = script.into_events();
    if session.is_multiple_of(4) {
        FaultInjector::new(0xBAD ^ session).corrupt(&events)
    } else {
        events
    }
}

struct ClientStats {
    rtts_ns: Vec<u64>,
    events_sent: u64,
    points_sent: u64,
    interactions: u64,
}

/// One client connection: interleaves its sessions' events round-robin,
/// reading replies on a parallel thread to timestamp round trips.
fn run_client(addr: std::net::SocketAddr, sessions: Vec<u64>) -> ClientStats {
    let streams: Vec<Vec<InputEvent>> =
        sessions.iter().map(|&s| session_stream(s)).collect();
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let inflight: Arc<Mutex<HashMap<(u64, u32), Instant>>> =
        Arc::new(Mutex::new(HashMap::new()));

    let reader = {
        let inflight = inflight.clone();
        let want_closed = sessions.len();
        let mut stream = stream;
        std::thread::spawn(move || {
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut fb = FrameBuffer::new();
            let mut chunk = [0u8; 8192];
            let mut rtts_ns = Vec::new();
            let mut interactions = 0u64;
            let mut closed = 0usize;
            while closed < want_closed {
                let n = match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                let now = Instant::now();
                fb.extend(&chunk[..n]);
                while let Some(frame) = fb.next_server().expect("server bytes") {
                    let (session, seq) = match frame {
                        ServerFrame::Recognized { session, seq, .. }
                        | ServerFrame::Manipulate { session, seq, .. }
                        | ServerFrame::Outcome { session, seq, .. }
                        | ServerFrame::Fault { session, seq, .. } => (session, seq),
                    };
                    if let Some(sent) = inflight.lock().expect("lock").remove(&(session, seq)) {
                        rtts_ns.push(now.duration_since(sent).as_nanos() as u64);
                    }
                    if let ServerFrame::Outcome { outcome, .. } = frame {
                        match outcome {
                            OutcomeKind::Closed => closed += 1,
                            _ => interactions += 1,
                        }
                    }
                }
            }
            (rtts_ns, interactions, closed)
        })
    };

    let mut events_sent = 0u64;
    let mut points_sent = 0u64;
    let mut bytes = Vec::with_capacity(4096);
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    for &session in &sessions {
        encode_client(&ClientFrame::Open { session }, &mut bytes);
    }
    writer.write_all(&bytes).expect("write opens");

    let mut cursors = vec![0usize; sessions.len()];
    loop {
        let mut progressed = false;
        for (slot, &session) in sessions.iter().enumerate() {
            let Some(&event) = streams[slot].get(cursors[slot]) else {
                continue;
            };
            let seq = cursors[slot] as u32;
            cursors[slot] += 1;
            progressed = true;
            bytes.clear();
            encode_client(
                &ClientFrame::Event {
                    session,
                    seq,
                    event,
                },
                &mut bytes,
            );
            inflight
                .lock()
                .expect("lock")
                .insert((session, seq), Instant::now());
            writer.write_all(&bytes).expect("write event");
            events_sent += 1;
            if matches!(event.kind, EventKind::MouseMove) {
                points_sent += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    bytes.clear();
    for (slot, &session) in sessions.iter().enumerate() {
        encode_client(
            &ClientFrame::Close {
                session,
                seq: streams[slot].len() as u32,
            },
            &mut bytes,
        );
    }
    writer.write_all(&bytes).expect("write closes");
    writer.flush().expect("flush");

    let (rtts_ns, interactions, closed) = reader.join().expect("reader thread");
    assert_eq!(closed, sessions.len(), "every session must close");
    ClientStats {
        rtts_ns,
        events_sent,
        points_sent,
        interactions,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    let config = ServeConfig {
        shards: SHARDS,
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    };
    let mut service =
        TcpService::start(SessionRouter::new(Arc::new(rec), config), "127.0.0.1:0")
            .expect("bind loopback");
    let addr = service.local_addr();
    eprintln!(
        "serve_load: {} clients x {} sessions against {addr} ({SHARDS} shards)",
        CLIENTS, SESSIONS_PER_CLIENT
    );

    let started = Instant::now();
    let mut stats: Vec<ClientStats> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client in 0..CLIENTS {
            let sessions: Vec<u64> = (0..SESSIONS_PER_CLIENT)
                .map(|i| 1 + client * SESSIONS_PER_CLIENT + i)
                .collect();
            joins.push(scope.spawn(move || run_client(addr, sessions)));
        }
        for join in joins {
            stats.push(join.join().expect("client"));
        }
    });
    let wall = started.elapsed();
    service.shutdown();
    let snap = service.metrics().snapshot();

    let mut rtts: Vec<u64> = stats.iter().flat_map(|s| s.rtts_ns.iter().copied()).collect();
    rtts.sort_unstable();
    let events_sent: u64 = stats.iter().map(|s| s.events_sent).sum();
    let points_sent: u64 = stats.iter().map(|s| s.points_sent).sum();
    let interactions: u64 = stats.iter().map(|s| s.interactions).sum();
    let wall_s = wall.as_secs_f64();
    let p50 = percentile(&rtts, 0.50);
    let p95 = percentile(&rtts, 0.95);
    let p99 = percentile(&rtts, 0.99);

    let mut shard_json = String::new();
    for (i, s) in snap.shards.iter().enumerate() {
        if i > 0 {
            shard_json.push_str(", ");
        }
        shard_json.push_str(&format!(
            "{{\"events\": {}, \"points\": {}, \"queue_highwater\": {}, \"ns_per_point\": {:.1}}}",
            s.events, s.points, s.queue_highwater, s.ns_per_point
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"transport\": \"tcp-loopback\",\n  \
         \"clients\": {CLIENTS},\n  \"sessions_per_client\": {SESSIONS_PER_CLIENT},\n  \
         \"gestures_per_session\": {GESTURES_PER_SESSION},\n  \"shards\": {SHARDS},\n  \
         \"events_sent\": {events_sent},\n  \"points_sent\": {points_sent},\n  \
         \"interactions\": {interactions},\n  \"wall_s\": {wall_s:.4},\n  \
         \"points_per_s\": {:.0},\n  \"events_per_s\": {:.0},\n  \"interactions_per_s\": {:.1},\n  \
         \"rtt_samples\": {},\n  \"rtt_ns_p50\": {p50},\n  \"rtt_ns_p95\": {p95},\n  \"rtt_ns_p99\": {p99},\n  \
         \"faults_repaired\": {},\n  \"busy_rejections\": {},\n  \"decode_errors\": {},\n  \
         \"outcomes\": {{\"recognized\": {}, \"manipulated\": {}, \"cancelled\": {}, \"rejected\": {}, \"closed\": {}}},\n  \
         \"shards_detail\": [{shard_json}]\n}}\n",
        points_sent as f64 / wall_s,
        events_sent as f64 / wall_s,
        interactions as f64 / wall_s,
        rtts.len(),
        snap.faults_repaired,
        snap.busy_rejections,
        snap.decode_errors,
        snap.outcomes_recognized,
        snap.outcomes_manipulated,
        snap.outcomes_cancelled,
        snap.outcomes_rejected,
        snap.outcomes_closed,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!(
        "serve_load: {events_sent} events / {wall_s:.3}s = {:.0} ev/s; RTT p50 {p50}ns p95 {p95}ns p99 {p99}ns; wrote {path}",
        events_sent as f64 / wall_s
    );
}
