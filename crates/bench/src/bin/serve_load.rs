//! Load generator for the grandma-serve TCP service: batched (wire v2)
//! versus unbatched (v1 single-`Event`) fast-path comparison.
//!
//! Spins up the sharded service on loopback, then replays seeded
//! `grandma-synth` scripted event streams — a quarter of them
//! `FaultInjector`-corrupted — from N concurrent client connections,
//! measuring end-to-end throughput and per-event round-trip latency
//! (client send → first server frame echoing that event's `seq`). Each
//! mode runs warm-up rounds first, then repeats measured rounds until a
//! minimum wall-clock duration so the percentiles are stable.
//!
//! Server-side steady-state allocations are counted by a global
//! allocator that the bench's own threads opt out of: everything the
//! service threads (accept loop, connection readers/writers, shard
//! workers) allocate during measured rounds is divided by the frames
//! they handled. After warm-up the batched path should sit near zero —
//! pooled batch buffers, reused encode buffers, zero-copy decode.
//!
//! The two modes differ in client discipline as well as framing. The
//! unbatched client replicates the recorded v1 baseline: every session
//! open at once, one `Event` frame (one write) per event, events
//! interleaved round-robin — an open-loop firehose whose RTT is
//! dominated by the unbounded backlog it creates. The batched client is
//! the v2 fast path: events ride `EventBatch` frames (one write per
//! batch) and at most `--window` sessions per connection are in flight,
//! using the `Closed` outcome as the completion ack — bounded backlog,
//! so RTT measures the service, not the queue.
//!
//! ```text
//! serve_load [--mode both|batched|unbatched] [--batch N] [--window N]
//!            [--min-duration-s F] [--warmup N] [--smoke]
//!            [--connections N[,N...]] [--connections-tiers N[,N...]]
//!            [--chaos] [--kill-after-ms N]
//!            [--cluster N] [--kill-node]
//! ```
//!
//! `--chaos` replaces the workload with the reconnect harness: an
//! in-process service with `detach_on_disconnect`, driven by
//! `ReconnectingClient`s that sever their own connections mid-gesture
//! and must resume without losing, duplicating, or cross-wiring a
//! single outcome. `--kill-after-ms N` goes further: it spawns a real
//! `serve` child with `--wal sync`, SIGKILLs it N ms into the load,
//! restarts it with `--recover`, and requires every client to finish
//! through the crash — then measures cold replay of the crash image and
//! writes a `recovery` section into BENCH_serve.json (unless --smoke).
//!
//! `--cluster N` spawns N real `serve` members sharing one discovery
//! file and drives every session through a `ClusterClient`, which dials
//! the consistent-hash ring owner. With `--kill-node` the member owning
//! the most sessions is SIGKILLed mid-load; a recovery agent replays
//! its WAL and `Handoff`s the recovered snapshots to their ring
//! successors, the registry drops the dead member, and every client
//! must re-route, resume, and finish — sessions on surviving members
//! byte-identical to the single-node baseline, moved ones a subsequence
//! of it (the gap frames died with the victim's socket), and a
//! post-recovery control wave byte-identical again. The full run writes
//! a `cluster` section (recovery time, handoff throughput) into
//! BENCH_serve.json.
//!
//! `--smoke` runs a short fixed workload, asserts zero decode errors and
//! zero busy rejections, and does NOT write BENCH_serve.json — that is
//! the CI guard. The full run writes `BENCH_serve.json` at the repo
//! root with an `unbatched` section, a `batched` section, and the
//! ratios between them.
//!
//! The connection sweep exercises the reactor transport's fan-in: for
//! each tier it spawns a fresh `serve` child (4 I/O threads, the
//! chosen `--poll-backend`), establishes that many concurrent TCP
//! connections from a small pool of worker threads, then drives
//! closed-loop open→batch→close round trips over every connection,
//! reporting accepted connections, connect failures, RTT percentiles
//! (batch write → `Closed` outcome), the reactor's `epoll_ctl` call
//! count and resolved backend (parsed from the metrics JSON the child
//! prints at graceful shutdown), and the *server process's* RSS growth
//! per established connection, sampled from the child's
//! `/proc/<pid>/statm` resident pages — page-granular, so small tiers
//! report allocator noise rather than per-connection cost. The server
//! lives in its own process so each side stays within `RLIMIT_NOFILE`
//! at the 16384-connection tier (~16.4k fds apiece; one process
//! holding both ends would need ~33k). The full run sweeps
//! 64/256/1024/2048/4096/8192/16384 **once per poll backend** (epoll
//! and poll(2) on Linux; poll only elsewhere) and writes them under
//! `connection_sweep.backends` in BENCH_serve.json; `--connections`
//! (alias `--connections-tiers`) overrides the tier list, and with
//! `--smoke` it runs a single quick tier on the default backend as a
//! CI guard without writing the file. Tiers past 4096 run one measured
//! round instead of three — at that scale the round itself is tens of
//! thousands of round trips.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grandma_cluster::{read_cluster, remove_node};
use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventKind, EventScript, InputEvent};
use grandma_serve::sys::ensure_nofile_limit;
use grandma_serve::{
    encode_client, encode_event_batch, encode_server, run_events_inproc, ClientFrame,
    ClusterClient, FrameBuffer, FsyncPolicy, OutcomeKind, PipelineConfig, PollBackend,
    ReconnectingClient, RetryPolicy, ServeConfig, ServerFrame, SessionRouter, SessionSnapshot,
    TcpService, WalConfig, WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector, SynthRng};

/// [`System`] with a counter that bench threads opt out of: counted
/// allocations are the service's, not the load generator's.
struct CountingAllocator;

static SERVER_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Bench-owned threads set this to skip the counter; service threads
    /// never touch it, so their allocations are the ones measured.
    static SUPPRESS_COUNT: Cell<bool> = const { Cell::new(false) };
}

fn suppressed() -> bool {
    // During TLS teardown the cell may be gone; err on not counting.
    SUPPRESS_COUNT.try_with(Cell::get).unwrap_or(true)
}

/// Marks the calling thread as bench-owned (uncounted).
fn suppress_this_thread() {
    let _ = SUPPRESS_COUNT.try_with(|s| s.set(true));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if !suppressed() {
            SERVER_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if !suppressed() {
            SERVER_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const CLIENTS: u64 = 6;
const SESSIONS_PER_CLIENT: u64 = 24;
/// Round trips are stamped for every Nth event sequence number (both
/// modes, so the comparison is symmetric). Stamping every event makes
/// the load generator's own bookkeeping — a locked map touched per
/// event on the writer and per reply on the reader — a visible fraction
/// of a small machine's CPU, perturbing the service being measured.
const RTT_SAMPLE_EVERY: u32 = 8;
const GESTURES_PER_SESSION: usize = 2;
const SHARDS: usize = 4;
const SLOTS: u64 = CLIENTS * SESSIONS_PER_CLIENT;

/// Seeded event stream for one session *slot* (stable across rounds);
/// every fourth slot corrupted.
fn slot_stream(slot: u64) -> Vec<InputEvent> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    let mut rng = SynthRng::seed_from_u64(0x10AD ^ slot.wrapping_mul(0x9E37_79B9));
    let mut script = EventScript::new();
    for _ in 0..GESTURES_PER_SESSION {
        let idx = (rng.next_u64() as usize) % data.testing.len();
        script = script.then_gesture(&data.testing[idx].gesture, Button::Left);
    }
    let events = script.into_events();
    if slot.is_multiple_of(4) {
        FaultInjector::new(0xBAD ^ slot).corrupt(&events)
    } else {
        events
    }
}

#[derive(Default)]
struct RoundStats {
    rtts_ns: Vec<u64>,
    events_sent: u64,
    points_sent: u64,
    /// Client wire frames carrying those events (== events for the
    /// unbatched mode, events/batch for the batched one).
    event_frames_sent: u64,
    /// Server frames decoded back off the wire (all of them, not just
    /// the RTT-sampled subset).
    reply_frames: u64,
    interactions: u64,
}

/// One client connection for one round: replays its sessions' streams,
/// reading replies on a parallel thread to timestamp round trips.
///
/// `batch: None` is the open-loop v1 firehose (every session open, one
/// `Event` write per event, round-robin). `batch: Some(size)` is the
/// closed-loop v2 fast path: whole sessions are sent as `EventBatch`
/// writes of `size` events, with at most `window` sessions in flight —
/// the reader acks each `Closed` outcome back to the writer.
fn run_client(
    addr: std::net::SocketAddr,
    sessions: Vec<u64>,
    streams: Arc<Vec<Vec<InputEvent>>>,
    slots: Vec<usize>,
    batch: Option<usize>,
    window: usize,
) -> RoundStats {
    suppress_this_thread();
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let inflight: Arc<Mutex<HashMap<(u64, u32), Instant>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let (closed_tx, closed_rx) = std::sync::mpsc::channel::<()>();

    let reader = {
        let inflight = inflight.clone();
        let want_closed = sessions.len();
        let mut stream = stream;
        std::thread::spawn(move || {
            suppress_this_thread();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut fb = FrameBuffer::new();
            let mut chunk = vec![0u8; 64 * 1024];
            let mut rtts_ns = Vec::new();
            let mut reply_frames = 0u64;
            let mut interactions = 0u64;
            let mut closed = 0usize;
            while closed < want_closed {
                let n = match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                let now = Instant::now();
                fb.extend(&chunk[..n]);
                while let Some(frame) = fb.next_server().expect("server bytes") {
                    reply_frames += 1;
                    let (session, seq) = match frame {
                        ServerFrame::Recognized { session, seq, .. }
                        | ServerFrame::Manipulate { session, seq, .. }
                        | ServerFrame::Outcome { session, seq, .. }
                        | ServerFrame::Fault { session, seq, .. } => (session, seq),
                        // Only sent in reply to Resume/Handoff, which
                        // this workload never issues.
                        ServerFrame::Resumed { session, last_seq }
                        | ServerFrame::HandoffAck { session, last_seq } => (session, last_seq),
                        // Cluster routing chatter; carries no seq.
                        ServerFrame::NotOwner { session, .. } => (session, 0),
                    };
                    if seq.is_multiple_of(RTT_SAMPLE_EVERY) {
                        if let Some(sent) = inflight.lock().expect("lock").remove(&(session, seq))
                        {
                            rtts_ns.push(now.duration_since(sent).as_nanos() as u64);
                        }
                    }
                    if let ServerFrame::Outcome { outcome, .. } = frame {
                        match outcome {
                            OutcomeKind::Closed => {
                                closed += 1;
                                let _ = closed_tx.send(());
                            }
                            _ => interactions += 1,
                        }
                    }
                }
            }
            (rtts_ns, reply_frames, interactions, closed)
        })
    };

    let mut stats = RoundStats::default();
    let mut bytes = Vec::with_capacity(16 * 1024);
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    writer.write_all(&bytes).expect("write hello");

    match batch {
        Some(size) => {
            let size = size.max(1);
            let window = window.max(1);
            let mut in_flight = 0usize;
            let mut scratch: Vec<(u32, InputEvent)> = Vec::new();
            for (idx, &session) in sessions.iter().enumerate() {
                while in_flight >= window {
                    closed_rx.recv().expect("closed ack");
                    in_flight -= 1;
                }
                let events = &streams[slots[idx]];
                bytes.clear();
                encode_client(&ClientFrame::Open { session }, &mut bytes);
                writer.write_all(&bytes).expect("write open");
                let mut at = 0usize;
                while at < events.len() {
                    // One EventBatch frame = one write syscall for up to
                    // `size` events, all stamped with one send time.
                    let end = (at + size).min(events.len());
                    scratch.clear();
                    for (i, &event) in events[at..end].iter().enumerate() {
                        scratch.push(((at + i) as u32, event));
                    }
                    at = end;
                    bytes.clear();
                    encode_event_batch(session, &scratch, &mut bytes);
                    let now = Instant::now();
                    {
                        let mut map = inflight.lock().expect("lock");
                        for &(seq, _) in &scratch {
                            if seq.is_multiple_of(RTT_SAMPLE_EVERY) {
                                map.insert((session, seq), now);
                            }
                        }
                    }
                    writer.write_all(&bytes).expect("write batch");
                    stats.events_sent += scratch.len() as u64;
                    stats.event_frames_sent += 1;
                    stats.points_sent += scratch
                        .iter()
                        .filter(|(_, e)| matches!(e.kind, EventKind::MouseMove))
                        .count() as u64;
                }
                bytes.clear();
                encode_client(
                    &ClientFrame::Close {
                        session,
                        seq: events.len() as u32,
                    },
                    &mut bytes,
                );
                writer.write_all(&bytes).expect("write close");
                in_flight += 1;
            }
        }
        None => {
            bytes.clear();
            for &session in &sessions {
                encode_client(&ClientFrame::Open { session }, &mut bytes);
            }
            writer.write_all(&bytes).expect("write opens");
            let mut cursors = vec![0usize; sessions.len()];
            loop {
                let mut progressed = false;
                for (idx, &session) in sessions.iter().enumerate() {
                    let events = &streams[slots[idx]];
                    let at = cursors[idx];
                    if at >= events.len() {
                        continue;
                    }
                    progressed = true;
                    let event = events[at];
                    let seq = at as u32;
                    cursors[idx] += 1;
                    bytes.clear();
                    encode_client(
                        &ClientFrame::Event {
                            session,
                            seq,
                            event,
                        },
                        &mut bytes,
                    );
                    if seq.is_multiple_of(RTT_SAMPLE_EVERY) {
                        inflight
                            .lock()
                            .expect("lock")
                            .insert((session, seq), Instant::now());
                    }
                    writer.write_all(&bytes).expect("write event");
                    stats.events_sent += 1;
                    stats.event_frames_sent += 1;
                    if matches!(event.kind, EventKind::MouseMove) {
                        stats.points_sent += 1;
                    }
                }
                if !progressed {
                    break;
                }
            }
            bytes.clear();
            for (idx, &session) in sessions.iter().enumerate() {
                encode_client(
                    &ClientFrame::Close {
                        session,
                        seq: streams[slots[idx]].len() as u32,
                    },
                    &mut bytes,
                );
            }
            writer.write_all(&bytes).expect("write closes");
        }
    }
    writer.flush().expect("flush");

    let (rtts_ns, reply_frames, interactions, closed) = reader.join().expect("reader thread");
    assert_eq!(closed, sessions.len(), "every session must close");
    stats.rtts_ns = rtts_ns;
    stats.reply_frames = reply_frames;
    stats.interactions = interactions;
    stats
}

/// One full round: every client drives its sessions concurrently.
/// Session ids are offset per round so each round opens fresh sessions
/// against the same long-lived service.
fn run_round(
    addr: std::net::SocketAddr,
    streams: &Arc<Vec<Vec<InputEvent>>>,
    session_base: u64,
    batch: Option<usize>,
    window: usize,
) -> (RoundStats, f64) {
    let started = Instant::now();
    let mut merged = RoundStats::default();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client in 0..CLIENTS {
            let slots: Vec<usize> = (0..SESSIONS_PER_CLIENT)
                .map(|i| (client * SESSIONS_PER_CLIENT + i) as usize)
                .collect();
            let sessions: Vec<u64> = slots
                .iter()
                .map(|&slot| session_base + slot as u64)
                .collect();
            let streams = streams.clone();
            joins.push(
                scope.spawn(move || run_client(addr, sessions, streams, slots, batch, window)),
            );
        }
        for join in joins {
            let stats = join.join().expect("client");
            merged.rtts_ns.extend(stats.rtts_ns);
            merged.events_sent += stats.events_sent;
            merged.points_sent += stats.points_sent;
            merged.event_frames_sent += stats.event_frames_sent;
            merged.reply_frames += stats.reply_frames;
            merged.interactions += stats.interactions;
        }
    });
    (merged, started.elapsed().as_secs_f64())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct ModeResult {
    mode: &'static str,
    batch: usize,
    window: usize,
    rounds: u64,
    events_sent: u64,
    points_sent: u64,
    event_frames_sent: u64,
    reply_frames: u64,
    interactions: u64,
    wall_s: f64,
    rtt_samples: usize,
    p50: u64,
    p95: u64,
    p99: u64,
    allocs_per_frame: f64,
}

impl ModeResult {
    fn points_per_s(&self) -> f64 {
        self.points_sent as f64 / self.wall_s.max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"batch\": {},\n    \"window\": {},\n    \"rounds\": {},\n    \
             \"events_sent\": {},\n    \
             \"points_sent\": {},\n    \"event_frames_sent\": {},\n    \"reply_frames\": {},\n    \
             \"interactions\": {},\n    \
             \"wall_s\": {:.4},\n    \"points_per_s\": {:.0},\n    \"events_per_s\": {:.0},\n    \
             \"rtt_samples\": {},\n    \"rtt_ns_p50\": {},\n    \"rtt_ns_p95\": {},\n    \
             \"rtt_ns_p99\": {},\n    \"server_allocs_per_frame\": {:.4}\n  }}",
            self.batch,
            self.window,
            self.rounds,
            self.events_sent,
            self.points_sent,
            self.event_frames_sent,
            self.reply_frames,
            self.interactions,
            self.wall_s,
            self.points_per_s(),
            self.events_sent as f64 / self.wall_s.max(1e-9),
            self.rtt_samples,
            self.p50,
            self.p95,
            self.p99,
            self.allocs_per_frame,
        )
    }
}

/// Runs one mode: `warmup` unmeasured rounds, then measured rounds until
/// `min_duration_s` of measured wall-clock has accumulated.
fn run_mode(
    addr: std::net::SocketAddr,
    streams: &Arc<Vec<Vec<InputEvent>>>,
    next_session_base: &mut u64,
    batch: Option<usize>,
    window: usize,
    warmup: u64,
    min_duration_s: f64,
) -> ModeResult {
    for _ in 0..warmup {
        let (_, _) = run_round(addr, streams, *next_session_base, batch, window);
        *next_session_base += SLOTS;
    }
    let mut rtts: Vec<u64> = Vec::new();
    let mut totals = RoundStats::default();
    let mut wall_s = 0.0f64;
    let mut rounds = 0u64;
    let allocs_before = SERVER_ALLOCATIONS.load(Ordering::Relaxed);
    loop {
        let (stats, round_s) = run_round(addr, streams, *next_session_base, batch, window);
        *next_session_base += SLOTS;
        rounds += 1;
        wall_s += round_s;
        rtts.extend(&stats.rtts_ns);
        totals.events_sent += stats.events_sent;
        totals.points_sent += stats.points_sent;
        totals.event_frames_sent += stats.event_frames_sent;
        totals.reply_frames += stats.reply_frames;
        totals.interactions += stats.interactions;
        if wall_s >= min_duration_s {
            break;
        }
    }
    let server_allocs = SERVER_ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    // Frames the service handled this mode: client frames in (hello/
    // open/event/batch/close ≈ event_frames + per-session overhead) plus
    // reply frames out. Event frames dominate; the per-session constants
    // are charged too so the figure cannot hide session-setup churn.
    let session_overhead = rounds * CLIENTS * (2 * SESSIONS_PER_CLIENT + 1);
    let frames_handled = totals.event_frames_sent + session_overhead + totals.reply_frames;
    rtts.sort_unstable();
    ModeResult {
        mode: if batch.is_some() { "batched" } else { "unbatched" },
        batch: batch.unwrap_or(0),
        window: if batch.is_some() { window } else { 0 },
        rounds,
        events_sent: totals.events_sent,
        points_sent: totals.points_sent,
        event_frames_sent: totals.event_frames_sent,
        reply_frames: totals.reply_frames,
        interactions: totals.interactions,
        wall_s,
        rtt_samples: rtts.len(),
        p50: percentile(&rtts, 0.50),
        p95: percentile(&rtts, 0.95),
        p99: percentile(&rtts, 0.99),
        allocs_per_frame: server_allocs as f64 / frames_handled.max(1) as f64,
    }
}

/// Default connection-sweep tiers for the full bench run.
const SWEEP_TIERS: &[usize] = &[64, 256, 1024, 2048, 4096, 8192, 16384];
/// Tiers above this run one measured round instead of three: a single
/// round at 16384 connections is already 16k closed-loop round trips
/// per worker set.
const SWEEP_DEEP_TIER: usize = 4096;
/// `RLIMIT_NOFILE` the harness asks for at startup: the client end of
/// the largest tier plus harness overhead (the server end lives in a
/// spawned `serve` child, which raises its own limit).
const SWEEP_NOFILE_WANT: u64 = 17_000;
/// Client worker threads driving a sweep tier; each owns an equal share
/// of the connections and runs them closed-loop (one round trip in
/// flight per worker), so the server-side concurrency under test is the
/// established connections, not an unbounded request backlog.
const SWEEP_WORKERS: usize = 4;
/// Events per sweep round trip, sent as one `EventBatch` frame.
const SWEEP_BATCH: usize = 24;
/// Reactor I/O threads for every sweep tier (the C100K acceptance bar:
/// thousands of connections on at most this many poll loops).
const SWEEP_IO_THREADS: usize = 4;

/// Page size for `/proc/<pid>/statm` accounting, read once from the
/// ELF auxiliary vector (`AT_PAGESZ` in `/proc/self/auxv` — no libc
/// dependency). statm counts *pages*, so assuming 4096 would skew
/// `rss_bytes` by 4–16x on the 16K/64K-page kernels common on aarch64.
/// Falls back to 4096 when auxv is unreadable; the recorded
/// `page_bytes` field in the sweep JSON says which value was used.
fn page_bytes() -> u64 {
    static PAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *PAGE.get_or_init(|| {
        // auxv is an array of (key, value) machine words; the bench
        // only targets 64-bit, where that is two u64s per entry.
        const AT_PAGESZ: u64 = 6;
        if cfg!(target_pointer_width = "64") {
            if let Ok(auxv) = std::fs::read("/proc/self/auxv") {
                for pair in auxv.chunks_exact(16) {
                    let (Ok(key), Ok(val)) = (
                        <[u8; 8]>::try_from(&pair[..8]),
                        <[u8; 8]>::try_from(&pair[8..]),
                    ) else {
                        break;
                    };
                    if u64::from_ne_bytes(key) == AT_PAGESZ {
                        let page = u64::from_ne_bytes(val);
                        if page.is_power_of_two() && (512..=1 << 20).contains(&page) {
                            return page;
                        }
                    }
                }
            }
        }
        4096
    })
}

/// Resident set size of process `pid` in bytes, from the second field
/// of `/proc/<pid>/statm` (resident pages); 0 when unavailable
/// (non-Linux).
///
/// statm is preferred over `/proc/<pid>/status`'s `VmRSS:` line because
/// it is the raw page counter the kernel maintains — but either way the
/// measurement is page-granular: a delta smaller than one page per
/// connection is dominated by sampling noise (allocator churn, lazily
/// faulted stacks), not per-connection state. Small tiers therefore
/// report noise; the per-connection figure only means something once
/// `connections × true-cost` is many pages. DESIGN.md §13's bench notes
/// carry the caveat.
fn proc_rss_bytes(pid: u32) -> u64 {
    let Ok(statm) = std::fs::read_to_string(format!("/proc/{pid}/statm")) else {
        return 0;
    };
    statm
        .split_whitespace()
        .nth(1)
        .and_then(|pages| pages.parse::<u64>().ok())
        .unwrap_or(0)
        * page_bytes()
}

/// One established sweep connection: its socket plus the decode buffer
/// that must persist across rounds (replies can straddle reads).
struct SweepConn {
    stream: TcpStream,
    fb: FrameBuffer,
    idx: usize,
}

/// Results for one sweep tier on one backend.
struct TierResult {
    connections: usize,
    accepted: usize,
    connect_failures: usize,
    round_trip_failures: usize,
    rounds: u64,
    rtt_samples: usize,
    p50: u64,
    p95: u64,
    p99: u64,
    /// Page-granular resident-set growth across the tier (see
    /// [`rss_bytes`] for why small tiers report noise here).
    rss_delta_bytes: u64,
    rss_bytes_per_conn: u64,
    /// `epoll_ctl(2)` calls the service's reactors made over the tier's
    /// lifetime (0 on the poll backend).
    epoll_ctl_calls: u64,
    /// Backend the service actually ran (`"poll"`/`"epoll"`).
    reactor_backend: &'static str,
    wall_s: f64,
}

impl TierResult {
    fn to_json(&self) -> String {
        format!(
            "{{ \"connections\": {}, \"accepted\": {}, \"connect_failures\": {}, \
             \"round_trip_failures\": {}, \"rounds\": {}, \"rtt_samples\": {}, \
             \"rtt_ns_p50\": {}, \"rtt_ns_p95\": {}, \"rtt_ns_p99\": {}, \
             \"rss_delta_bytes\": {}, \"rss_bytes_per_conn\": {}, \
             \"epoll_ctl_calls\": {}, \"wall_s\": {:.4} }}",
            self.connections,
            self.accepted,
            self.connect_failures,
            self.round_trip_failures,
            self.rounds,
            self.rtt_samples,
            self.p50,
            self.p95,
            self.p99,
            self.rss_delta_bytes,
            self.rss_bytes_per_conn,
            self.epoll_ctl_calls,
            self.wall_s,
        )
    }
}

fn connect_with_retry(addr: std::net::SocketAddr) -> Option<TcpStream> {
    for attempt in 0..5 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Some(stream),
            Err(_) => std::thread::sleep(Duration::from_millis(5 << attempt)),
        }
    }
    None
}

/// One closed-loop round trip on one connection: `Open` + one
/// `EventBatch` + `Close` in a single write, timed until the `Closed`
/// outcome for that session comes back.
fn sweep_round_trip(
    conn: &mut SweepConn,
    session: u64,
    events: &[(u32, InputEvent)],
    scratch: &mut Vec<u8>,
) -> std::io::Result<u64> {
    scratch.clear();
    encode_client(&ClientFrame::Open { session }, scratch);
    encode_event_batch(session, events, scratch);
    encode_client(
        &ClientFrame::Close {
            session,
            seq: events.len() as u32,
        },
        scratch,
    );
    let started = Instant::now();
    conn.stream.write_all(scratch)?;
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(frame) = conn.fb.next_server().expect("valid server bytes") {
            if matches!(
                frame,
                ServerFrame::Outcome {
                    session: s,
                    outcome: OutcomeKind::Closed,
                    ..
                } if s == session
            ) {
                return Ok(started.elapsed().as_nanos() as u64);
            }
        }
        let n = conn.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid round trip",
            ));
        }
        conn.fb.extend(&chunk[..n]);
    }
}

/// Drives `rounds` closed-loop rounds over every connection group in
/// parallel. Session ids are `session_base + round*n + idx`, unique for
/// the tier's lifetime. Returns (rtts, failed round trips).
fn sweep_phase(
    groups: &mut [Vec<SweepConn>],
    n: usize,
    session_base: u64,
    rounds: u64,
    events: &[(u32, InputEvent)],
) -> (Vec<u64>, usize) {
    let mut all_rtts = Vec::new();
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for group in groups.iter_mut() {
            joins.push(scope.spawn(move || {
                suppress_this_thread();
                let mut rtts = Vec::new();
                let mut failed = 0usize;
                let mut scratch = Vec::with_capacity(4096);
                for round in 0..rounds {
                    for conn in group.iter_mut() {
                        let session = session_base + round * n as u64 + conn.idx as u64;
                        match sweep_round_trip(conn, session, events, &mut scratch) {
                            Ok(ns) => rtts.push(ns),
                            Err(_) => failed += 1,
                        }
                    }
                }
                (rtts, failed)
            }));
        }
        for join in joins {
            let (rtts, failed) = join.join().expect("sweep worker");
            all_rtts.extend(rtts);
            failures += failed;
        }
    });
    (all_rtts, failures)
}

/// Spawns the sweep's `serve` child on `addr` with the tier's backend,
/// returning the guard plus the kept-open stdout reader — the metrics
/// JSON the child prints at graceful shutdown is the tier's
/// server-side truth (resolved backend, `epoll_ctl` count).
fn spawn_sweep_serve(
    harness: &Harness,
    addr: &str,
    backend: PollBackend,
) -> (ChildGuard, std::io::BufReader<std::process::ChildStdout>) {
    let mut cmd = std::process::Command::new(&harness.serve_bin);
    cmd.arg("run")
        .arg("--model")
        .arg(&harness.model)
        .args(["--addr", addr])
        .args(["--shards", &SHARDS.to_string()])
        .args(["--queue-capacity", "32768"])
        .args(["--io-threads", &SWEEP_IO_THREADS.to_string()])
        .args(["--poll-backend", backend.name()]);
    cmd.stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut guard = ChildGuard::new(cmd.spawn().expect("spawn sweep serve"));
    let stdout = guard
        .child
        .as_mut()
        .expect("fresh guard holds its child")
        .stdout
        .take()
        .expect("sweep serve stdout");
    let mut lines = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let count = std::io::BufRead::read_line(&mut lines, &mut line).unwrap_or(0);
        if count > 0 && line.starts_with("listening on ") {
            return (guard, lines);
        }
        if count == 0 {
            panic!("sweep serve exited before listening");
        }
    }
}

/// Pulls a `"key": <integer>` field out of the child's metrics JSON;
/// 0 when absent or malformed.
fn metrics_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    json.find(&needle)
        .map(|at| {
            json[at + needle.len()..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

/// Pulls the resolved reactor backend out of the child's metrics JSON.
fn metrics_backend(json: &str) -> &'static str {
    const NEEDLE: &str = "\"reactor_backend\": \"";
    match json.find(NEEDLE) {
        Some(at) => {
            let rest = &json[at + NEEDLE.len()..];
            if rest.starts_with("epoll") {
                "epoll"
            } else if rest.starts_with("poll") {
                "poll"
            } else {
                "none"
            }
        }
        None => "none",
    }
}

/// One sweep tier: fresh `serve` child on `backend`, `n` concurrent
/// connections, one warm-up round, then `rounds` measured rounds.
fn sweep_tier(
    harness: &Harness,
    backend: PollBackend,
    n: usize,
    rounds: u64,
    events: &[(u32, InputEvent)],
) -> TierResult {
    let addr_str = probe_port();
    let addr: SocketAddr = addr_str.parse().expect("sweep addr");
    let (mut guard, mut child_out) = spawn_sweep_serve(harness, &addr_str, backend);
    let pid = guard.child.as_ref().expect("live child").id();
    let rss_before = proc_rss_bytes(pid);

    // Establish the tier's connections in parallel, striped over the
    // workers so every group ends up with an equal share.
    let mut groups: Vec<Vec<SweepConn>> = Vec::new();
    let mut connect_failures = 0usize;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for w in 0..SWEEP_WORKERS {
            joins.push(scope.spawn(move || {
                suppress_this_thread();
                let mut conns = Vec::new();
                let mut failures = 0usize;
                let mut hello = Vec::new();
                encode_client(
                    &ClientFrame::Hello {
                        version: WIRE_VERSION,
                    },
                    &mut hello,
                );
                let mut idx = w;
                while idx < n {
                    match connect_with_retry(addr) {
                        Some(mut stream) => {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                            if stream.write_all(&hello).is_ok() {
                                conns.push(SweepConn {
                                    stream,
                                    fb: FrameBuffer::new(),
                                    idx,
                                });
                            } else {
                                failures += 1;
                            }
                        }
                        None => failures += 1,
                    }
                    idx += SWEEP_WORKERS;
                }
                (conns, failures)
            }));
        }
        for join in joins {
            let (conns, failures) = join.join().expect("connect worker");
            groups.push(conns);
            connect_failures += failures;
        }
    });
    let accepted: usize = groups.iter().map(Vec::len).sum();

    // Warm-up round: materializes per-connection buffers server-side,
    // so the RSS delta reflects steady-state per-connection cost.
    let (_, warmup_failures) = sweep_phase(&mut groups, n, 1, 1, events);
    let rss_after = proc_rss_bytes(pid);
    let started = Instant::now();
    let session_base = 1 + n as u64;
    let (mut rtts, mut failures) = sweep_phase(&mut groups, n, session_base, rounds, events);
    let wall_s = started.elapsed().as_secs_f64();
    failures += warmup_failures;

    // Client sockets close first so the child's graceful shutdown isn't
    // also a teardown storm; then its final stdout — the metrics JSON —
    // carries the server-side counters out.
    drop(groups);
    let status = guard.stop_gracefully().expect("wait sweep serve");
    assert!(status.success(), "sweep serve exited {status}");
    let mut metrics_json = String::new();
    let _ = std::io::Read::read_to_string(&mut child_out, &mut metrics_json);

    rtts.sort_unstable();
    let rss_delta_bytes = rss_after.saturating_sub(rss_before);
    TierResult {
        connections: n,
        accepted,
        connect_failures,
        round_trip_failures: failures,
        rounds,
        rtt_samples: rtts.len(),
        p50: percentile(&rtts, 0.50),
        p95: percentile(&rtts, 0.95),
        p99: percentile(&rtts, 0.99),
        rss_delta_bytes,
        rss_bytes_per_conn: rss_delta_bytes / accepted.max(1) as u64,
        epoll_ctl_calls: metrics_u64(&metrics_json, "epoll_ctl_calls"),
        reactor_backend: metrics_backend(&metrics_json),
        wall_s,
    }
}

// ---------------------------------------------------------------------
// Crash/recovery harness: --chaos (in-process reconnects) and
// --kill-after-ms (SIGKILL a real serve child, restart with --recover).
// ---------------------------------------------------------------------

/// Sessions driven by the chaos and kill harnesses.
const CHAOS_SESSIONS: u64 = 12;
/// A chaos client severs its connection every this many events.
const CHAOS_DISCONNECT_EVERY: usize = 40;

fn frame_session(frame: &ServerFrame) -> u64 {
    match *frame {
        ServerFrame::Recognized { session, .. }
        | ServerFrame::Manipulate { session, .. }
        | ServerFrame::Outcome { session, .. }
        | ServerFrame::Fault { session, .. }
        | ServerFrame::Resumed { session, .. }
        | ServerFrame::HandoffAck { session, .. }
        | ServerFrame::NotOwner { session, .. } => session,
    }
}

/// Routing and resume chatter the single-node baseline never emits;
/// stripped before the byte-level comparisons.
fn is_routing_chatter(frame: &ServerFrame) -> bool {
    matches!(
        frame,
        ServerFrame::Resumed { .. } | ServerFrame::HandoffAck { .. } | ServerFrame::NotOwner { .. }
    )
}

/// Per-frame wire encodings — the unit of the byte-identical and
/// subsequence comparisons.
fn frames_to_wire(frames: &[ServerFrame]) -> Vec<Vec<u8>> {
    frames
        .iter()
        .map(|frame| {
            let mut bytes = Vec::new();
            encode_server(frame, &mut bytes);
            bytes
        })
        .collect()
}

/// What a never-crashed in-process pipeline says this session's frames
/// are, with the reconnecting client's 1-based seq numbering.
fn chaos_baseline(rec: &EagerRecognizer, session: u64, events: &[InputEvent]) -> Vec<Vec<u8>> {
    let seqd: Vec<(u32, InputEvent)> = events
        .iter()
        .enumerate()
        .map(|(i, &e)| ((i + 1) as u32, e))
        .collect();
    let frames = run_events_inproc(
        rec,
        session,
        &PipelineConfig::default(),
        &seqd,
        events.len() as u32 + 1,
    );
    frames_to_wire(&frames)
}

fn is_subsequence(needle: &[Vec<u8>], hay: &[Vec<u8>]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// The invariants every chaos/kill session must satisfy regardless of
/// how many times its connection died: no foreign frames (zero
/// cross-session contamination), strictly increasing outcome seqs (no
/// replays), and exactly one `Closed`, last.
fn assert_session_invariants(session: u64, frames: &[ServerFrame]) {
    let mut last_outcome_seq = 0u32;
    let mut closed = 0usize;
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(
            frame_session(frame),
            session,
            "cross-session contamination: session {session} received {frame:?}"
        );
        if let ServerFrame::Outcome { seq, outcome, .. } = frame {
            assert!(
                *seq > last_outcome_seq || (*seq == 0 && last_outcome_seq == 0),
                "session {session}: outcome seq {seq} after {last_outcome_seq} (duplicate?)"
            );
            last_outcome_seq = *seq;
            if *outcome == OutcomeKind::Closed {
                closed += 1;
                assert_eq!(i, frames.len() - 1, "session {session}: frames after Closed");
            }
        }
    }
    assert_eq!(closed, 1, "session {session}: {closed} Closed outcomes");
}

/// Drives one session's events through a `ReconnectingClient`,
/// optionally severing the connection every `disconnect_every` events
/// and pacing sends so a concurrent kill lands mid-stream. Returns the
/// received frames and how often the client reconnected.
fn drive_chaos_session(
    addr: std::net::SocketAddr,
    session: u64,
    events: &[InputEvent],
    disconnect_every: Option<usize>,
    pace: Duration,
) -> (Vec<ServerFrame>, u64, u64) {
    suppress_this_thread();
    let policy = RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(25),
        max_delay: Duration::from_millis(400),
        request_timeout: Duration::from_secs(10),
        jitter_seed: 0xC0FFEE ^ session,
    };
    let mut client = ReconnectingClient::connect(addr, session, policy).expect("chaos connect");
    for (i, &event) in events.iter().enumerate() {
        if disconnect_every.is_some_and(|k| i > 0 && i.is_multiple_of(k)) {
            client.force_disconnect();
        }
        client.send_event(event).expect("chaos send");
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
    let frames = client.close().expect("chaos close");
    (frames, client.reconnects(), client.resent_events())
}

/// `--chaos`: in-process reconnect harness. Odd sessions sever their
/// connection repeatedly and must produce a subsequence of the
/// never-crashed baseline (the gap frames were emitted while the wire
/// was down); even sessions never disconnect and must match the
/// baseline byte for byte.
fn run_chaos(rec: &Arc<EagerRecognizer>) -> ExitCode {
    let config = ServeConfig {
        shards: SHARDS,
        queue_capacity: 1 << 15,
        detach_on_disconnect: true,
        ..ServeConfig::default()
    };
    let mut service = TcpService::start(SessionRouter::new(rec.clone(), config), "127.0.0.1:0")
        .expect("bind chaos service");
    let addr = service.local_addr();
    let mut total_reconnects = 0u64;
    let mut total_resent = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for session in 1..=CHAOS_SESSIONS {
            joins.push(scope.spawn(move || {
                let events = slot_stream(session);
                let chaotic = session % 2 == 1;
                let (frames, reconnects, resent) = drive_chaos_session(
                    addr,
                    session,
                    &events,
                    chaotic.then_some(CHAOS_DISCONNECT_EVERY),
                    Duration::ZERO,
                );
                assert_session_invariants(session, &frames);
                let got = frames_to_wire(&frames);
                let want = chaos_baseline(rec, session, &events);
                if chaotic {
                    assert!(reconnects >= 1, "chaos session {session} never reconnected");
                    assert!(
                        is_subsequence(&got, &want),
                        "chaos session {session}: frames are not a subsequence of the baseline"
                    );
                } else {
                    assert_eq!(
                        got, want,
                        "clean session {session}: frames must be byte-identical"
                    );
                }
                (reconnects, resent)
            }));
        }
        for join in joins {
            let (reconnects, resent) = join.join().expect("chaos client");
            total_reconnects += reconnects;
            total_resent += resent;
        }
    });
    let resumed = service.metrics().snapshot().sessions_resumed;
    service.shutdown();
    assert!(resumed >= total_reconnects.min(1), "server never resumed");
    eprintln!(
        "serve_load: chaos ok ({CHAOS_SESSIONS} sessions, {total_reconnects} reconnects, \
         {total_resent} events re-sent, {resumed} server-side resumes)"
    );
    ExitCode::SUCCESS
}

/// RAII handle for a spawned `serve` child: however the harness exits —
/// including a panic unwinding through a failed assert — the process is
/// SIGKILLed and reaped when the guard drops, so a broken drill cannot
/// leak a listening server or a zombie.
struct ChildGuard {
    child: Option<std::process::Child>,
}

impl ChildGuard {
    fn new(child: std::process::Child) -> Self {
        Self { child: Some(child) }
    }

    /// SIGKILL + reap now; idempotent.
    fn kill_now(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Graceful stop: close the child's stdin (its exit signal) and
    /// wait for it to finish its shutdown path (WAL seal, cluster
    /// deregistration, handoff). `None` if the child is already gone.
    fn stop_gracefully(&mut self) -> Option<std::process::ExitStatus> {
        let mut child = self.child.take()?;
        drop(child.stdin.take());
        child.wait().ok()
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Spawns `serve run` on `addr` with a sync WAL at `wal_dir`
/// (recovering from it when `recover`, joining `cluster` when given),
/// holding its stdin open, and waits for the `listening on` line.
fn spawn_serve(
    bin: &std::path::Path,
    model: &std::path::Path,
    addr: &str,
    wal_dir: &std::path::Path,
    recover: bool,
    cluster: Option<(&std::path::Path, &str)>,
) -> ChildGuard {
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("run")
        .args(["--model"])
        .arg(model)
        .args(["--addr", addr, "--wal", "sync", "--wal-dir"])
        .arg(wal_dir);
    if recover {
        cmd.arg("--recover").arg(wal_dir);
    }
    if let Some((file, node_id)) = cluster {
        cmd.arg("--cluster-file")
            .arg(file)
            .args(["--node-id", node_id]);
    }
    cmd.stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit());
    let mut guard = ChildGuard::new(cmd.spawn().expect("spawn serve"));
    let stdout = guard
        .child
        .as_mut()
        .expect("fresh guard holds its child")
        .stdout
        .take()
        .expect("serve stdout");
    let mut lines = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut lines, &mut line).unwrap_or(0);
        if n > 0 && line.starts_with("listening on ") {
            return guard;
        }
        if n == 0 {
            // EOF (or a read error) before the listening line; the
            // guard reaps the child as this panic unwinds.
            panic!("serve exited before listening");
        }
    }
}

/// A loopback port that was free a moment ago: bind-then-drop, so a
/// child can be handed a concrete address clients can redial after the
/// process restarts or dies.
fn probe_port() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
    probe.local_addr().expect("probe addr").to_string()
}

/// Shared setup for the process-spawning drills: a scratch dir, the
/// `serve` binary, a model trained by it, and the recognizer parsed
/// back from that model — so harness-side baselines and WAL recovery
/// agree with the children byte for byte.
struct Harness {
    dir: std::path::PathBuf,
    serve_bin: std::path::PathBuf,
    model: std::path::PathBuf,
    rec: Arc<EagerRecognizer>,
}

impl Harness {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("grandma-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir harness dir");
        let serve_bin = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("serve")))
            .filter(|p| p.exists())
            .expect("serve binary next to serve_load (cargo build --workspace)");
        let model = dir.join("model.txt");
        let trained = std::process::Command::new(&serve_bin)
            .args(["train", "--out"])
            .arg(&model)
            .stdout(std::process::Stdio::null())
            .status()
            .expect("run serve train");
        assert!(trained.success(), "serve train failed");
        let rec = Arc::new(
            EagerRecognizer::from_text(&std::fs::read_to_string(&model).expect("read model"))
                .expect("parse model"),
        );
        Self {
            dir,
            serve_bin,
            model,
            rec,
        }
    }
}

/// Copies `shard-*` WAL/snapshot files into a point-in-time image.
fn copy_wal_image(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("mkdir image");
    for entry in std::fs::read_dir(from).expect("read wal dir").flatten() {
        if entry.file_name().to_string_lossy().starts_with("shard-") {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy wal file");
        }
    }
}

/// `--kill-after-ms`: the full crash drill against a real `serve`
/// process. See the module docs.
fn run_kill_recovery(kill_after_ms: u64, smoke: bool) -> ExitCode {
    let harness = Harness::new("recovery");
    let (dir, serve_bin, model, rec) = (
        harness.dir.clone(),
        harness.serve_bin.clone(),
        harness.model.clone(),
        harness.rec.clone(),
    );

    // A fixed port so clients can redial the restarted server.
    let addr_str = probe_port();
    let addr: std::net::SocketAddr = addr_str.parse().expect("addr");
    let wal_dir = dir.join("wal");
    let image_dir = dir.join("wal-kill-image");
    let child = spawn_serve(&serve_bin, &model, &addr_str, &wal_dir, false, None);

    // Pace sends so every session still has events in flight when the
    // SIGKILL lands and finishes only after recovery.
    let max_events = (1..=CHAOS_SESSIONS)
        .map(|s| slot_stream(s).len())
        .max()
        .unwrap_or(1)
        .max(1);
    let pace = Duration::from_micros((kill_after_ms * 2 + 1000) * 1000 / max_events as u64);

    let mut total_reconnects = 0u64;
    let mut total_resent = 0u64;
    let killed_at = Instant::now();
    let second = std::thread::scope(|scope| {
        let killer = {
            let serve_bin = &serve_bin;
            let model = &model;
            let addr_str = &addr_str;
            let wal_dir = &wal_dir;
            let image_dir = &image_dir;
            scope.spawn(move || {
                suppress_this_thread();
                std::thread::sleep(Duration::from_millis(kill_after_ms));
                let mut child = child;
                child.kill_now();
                // Freeze the crash image before the recovering server
                // compacts the log.
                copy_wal_image(wal_dir, image_dir);
                spawn_serve(serve_bin, model, addr_str, wal_dir, true, None)
            })
        };
        let mut joins = Vec::new();
        for session in 1..=CHAOS_SESSIONS {
            let rec = rec.clone();
            joins.push(scope.spawn(move || {
                let events = slot_stream(session);
                let (frames, reconnects, resent) =
                    drive_chaos_session(addr, session, &events, None, pace);
                assert_session_invariants(session, &frames);
                assert!(
                    is_subsequence(&frames_to_wire(&frames), &chaos_baseline(&rec, session, &events)),
                    "kill session {session}: frames are not a subsequence of the baseline"
                );
                (reconnects, resent)
            }));
        }
        for join in joins {
            let (reconnects, resent) = join.join().expect("kill client");
            total_reconnects += reconnects;
            total_resent += resent;
        }
        killer.join().expect("killer thread")
    });
    let survived_s = killed_at.elapsed().as_secs_f64() - kill_after_ms as f64 / 1e3;
    assert!(
        total_reconnects >= 1,
        "the kill landed after every client finished — raise --kill-after-ms pacing"
    );

    // Control group: fresh sessions against the *recovered* server must
    // be byte-identical to the never-crashed pipeline.
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for session in 1001..=(1000 + CHAOS_SESSIONS) {
            let rec = rec.clone();
            joins.push(scope.spawn(move || {
                let events = slot_stream(session);
                let (frames, _, _) =
                    drive_chaos_session(addr, session, &events, None, Duration::ZERO);
                assert_session_invariants(session, &frames);
                assert_eq!(
                    frames_to_wire(&frames),
                    chaos_baseline(&rec, session, &events),
                    "post-recovery session {session}: frames must be byte-identical"
                );
            }));
        }
        for join in joins {
            join.join().expect("control client");
        }
    });

    // Graceful stop (stdin EOF) — also seals the WAL.
    let mut second = second;
    let status = second.stop_gracefully().expect("wait recovered serve");
    assert!(status.success(), "recovered serve exited {status}");

    // Cold-replay measurement from the frozen crash image.
    let config = ServeConfig {
        shards: SHARDS,
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    };
    let router = SessionRouter::new(rec.clone(), config);
    let report = router
        .recover(&WalConfig::new(image_dir.clone(), FsyncPolicy::Async))
        .expect("replay crash image");
    router.shutdown();
    let frames_per_s = report.frames as f64 / (report.replay_ms / 1e3).max(1e-9);
    eprintln!(
        "serve_load: kill-recovery ok ({CHAOS_SESSIONS}+{CHAOS_SESSIONS} sessions, kill at \
         {kill_after_ms} ms, {total_reconnects} reconnects, {total_resent} events re-sent, \
         finished {survived_s:.2}s after kill; crash image: {} sessions, {} frames, {} bytes, \
         replay {:.1} ms = {frames_per_s:.0} frames/s{})",
        report.sessions,
        report.frames,
        report.bytes,
        report.replay_ms,
        if report.torn { ", torn tail" } else { "" },
    );

    if !smoke {
        let section = format!(
            "  \"recovery\": {{\n    \"kill_after_ms\": {kill_after_ms},\n    \
             \"chaos_sessions\": {CHAOS_SESSIONS},\n    \"client_reconnects\": {total_reconnects},\n    \
             \"events_resent\": {total_resent},\n    \"image_sessions\": {},\n    \
             \"image_frames\": {},\n    \"image_bytes\": {},\n    \"replay_ms\": {:.3},\n    \
             \"replay_frames_per_s\": {frames_per_s:.0},\n    \"torn\": {}\n  }}",
            report.sessions, report.frames, report.bytes, report.replay_ms, report.torn,
        );
        write_bench_drill_section("recovery", &section);
    }
    let _ = std::fs::remove_dir_all(&dir);
    ExitCode::SUCCESS
}

/// Rewrites BENCH_serve.json with `section` (the bare `"key": {...}`
/// text, two-space indented, no leading comma) appended after the
/// workload sections, preserving any *other* drill section already
/// present — the drills can run in either order without eating each
/// other's numbers.
fn write_bench_drill_section(key: &str, section: &str) {
    const DRILL_KEYS: [&str; 2] = ["recovery", "cluster"];
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let (base, kept) = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let mut marks: Vec<(usize, &str)> = DRILL_KEYS
                .iter()
                .filter_map(|k| {
                    existing
                        .find(&format!(",\n  \"{k}\":"))
                        .map(|at| (at, *k))
                })
                .collect();
            marks.sort_unstable();
            let base = match marks.first() {
                Some(&(at, _)) => existing[..at].to_string(),
                None => existing
                    .trim_end()
                    .trim_end_matches('}')
                    .trim_end()
                    .to_string(),
            };
            let close_at = existing.trim_end().rfind("\n}").unwrap_or(existing.len());
            let kept: Vec<String> = marks
                .iter()
                .enumerate()
                .filter(|&(_, &(_, k))| k != key)
                .map(|(i, &(at, _))| {
                    let end = marks.get(i + 1).map(|&(a, _)| a).unwrap_or(close_at);
                    existing[at..end].trim_end().to_string()
                })
                .collect();
            (base, kept)
        }
        Err(_) => ("{\n  \"bench\": \"serve_load\"".to_string(), Vec::new()),
    };
    let mut out = base;
    for chunk in &kept {
        // Each kept chunk begins with its own `,\n` separator.
        out.push_str(chunk);
    }
    out.push_str(",\n");
    out.push_str(section);
    out.push_str("\n}\n");
    std::fs::write(path, out).expect("write BENCH_serve.json");
    eprintln!("serve_load: updated {path} ({key} section)");
}

// ---------------------------------------------------------------------
// Cluster drill: --cluster N [--kill-node] against real serve members
// sharing one discovery file.
// ---------------------------------------------------------------------

/// A short-lived wire connection the recovery agent uses to push a dead
/// member's snapshots to their ring successors.
struct HandoffConn {
    stream: TcpStream,
    fb: FrameBuffer,
    scratch: Vec<u8>,
}

impl HandoffConn {
    fn dial(addr: SocketAddr) -> Option<Self> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let mut conn = Self {
            stream,
            fb: FrameBuffer::new(),
            scratch: Vec::new(),
        };
        conn.write(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .ok()?;
        Some(conn)
    }

    fn write(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        self.scratch.clear();
        encode_client(frame, &mut self.scratch);
        self.stream.write_all(&self.scratch)
    }

    /// Sends one snapshot and waits for its `HandoffAck`; returns the
    /// snapshot's encoded size, or `None` if the peer refused it.
    fn handoff(&mut self, snapshot: &SessionSnapshot) -> Option<usize> {
        let mut payload = Vec::new();
        snapshot.encode(&mut payload);
        let size = payload.len();
        self.write(&ClientFrame::Handoff { snapshot: payload })
            .ok()?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.fb.next_server() {
                Ok(Some(ServerFrame::HandoffAck { session, .. }))
                    if session == snapshot.session =>
                {
                    return Some(size);
                }
                Ok(Some(ServerFrame::Fault { session, .. }))
                    if session == snapshot.session || session == 0 =>
                {
                    return None;
                }
                Ok(Some(_)) => {}
                Ok(None) => match self.stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return None,
                    Ok(n) => self.fb.extend(chunk.get(..n).unwrap_or(&[])),
                },
                Err(_) => return None,
            }
        }
    }
}

/// Drives one session's events through a [`ClusterClient`], paced so a
/// concurrent kill lands mid-stream. A failed send leaves the event in
/// the resume window, so recovery is route repair (pump until a live
/// owner resumes the session), never a re-send. Returns
/// `(frames, redirects, reconnects, resent_events)`.
fn drive_cluster_session(
    cluster_file: &std::path::Path,
    session: u64,
    events: &[InputEvent],
    pace: Duration,
) -> (Vec<ServerFrame>, u64, u64, u64) {
    suppress_this_thread();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(160),
        request_timeout: Duration::from_secs(5),
        jitter_seed: 0xC1_0573 ^ session,
    };
    let mut client =
        ClusterClient::connect(cluster_file, session, policy).expect("cluster connect");
    for &event in events {
        if client.send_event(event).is_err() {
            // The event already sits in the unacked window; repair the
            // route (the resume re-sends the window) and move on.
            let deadline = Instant::now() + Duration::from_secs(30);
            while client.pump(Duration::from_millis(5)).is_err() {
                assert!(
                    Instant::now() < deadline,
                    "session {session}: no route to a live owner"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
    let mut closed = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    while closed.is_none() {
        match client.close() {
            Ok(frames) => closed = Some(frames),
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "session {session}: close never routed: {e}"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    (
        closed.expect("loop exits with frames"),
        client.redirects(),
        client.reconnects(),
        client.resent_events(),
    )
}

/// `--cluster N [--kill-node]`: the multi-node drill. Real `serve`
/// members share one discovery file; every session is driven through a
/// [`ClusterClient`] that dials its consistent-hash ring owner. With
/// `kill_node` the busiest member is SIGKILLed mid-load; its WAL is
/// replayed by a recovery agent that `Handoff`s the snapshots to their
/// ring successors, and every client must re-route, resume, and finish.
fn run_cluster_drill(nodes: usize, kill_node: bool, kill_after_ms: u64, smoke: bool) -> ExitCode {
    assert!(nodes >= 2, "--cluster wants at least 2 nodes");
    let harness = Harness::new("cluster");
    let cluster_file = harness.dir.join("cluster.json");

    // Members register themselves once listening.
    let mut members: Vec<(String, SocketAddr, std::path::PathBuf, ChildGuard)> = Vec::new();
    for i in 0..nodes {
        let addr_str = probe_port();
        let wal_dir = harness.dir.join(format!("wal-{i}"));
        let node_id = format!("node-{i}");
        let guard = spawn_serve(
            &harness.serve_bin,
            &harness.model,
            &addr_str,
            &wal_dir,
            false,
            Some((&cluster_file, &node_id)),
        );
        members.push((node_id, addr_str.parse().expect("addr"), wal_dir, guard));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let view = loop {
        if let Ok(view) = read_cluster(&cluster_file) {
            if view.nodes.len() == nodes {
                break view;
            }
        }
        assert!(
            Instant::now() < deadline,
            "registry never converged to {nodes} members"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // The victim: the member owning the most drill sessions (at least
    // one by pigeonhole, members never outnumbering sessions).
    let owned_by = |addr: SocketAddr| {
        (1..=CHAOS_SESSIONS)
            .filter(|&s| view.owner_addr(s) == Some(addr))
            .count()
    };
    let victim = (0..members.len())
        .max_by_key(|&i| owned_by(members[i].1))
        .expect("at least one member");
    let (victim_id, victim_addr, victim_wal, victim_guard) = members.remove(victim);
    let victim_sessions = owned_by(victim_addr) as u64;
    assert!(victim_sessions >= 1, "victim owns no sessions");

    // Pace sends so the kill lands while every session is mid-stream.
    let max_events = (1..=CHAOS_SESSIONS)
        .map(|s| slot_stream(s).len())
        .max()
        .unwrap_or(1)
        .max(1);
    let pace = if kill_node {
        Duration::from_micros((kill_after_ms * 2 + 1000) * 1000 / max_events as u64)
    } else {
        Duration::ZERO
    };

    let rec = harness.rec.clone();
    let mut total_redirects = 0u64;
    let mut total_reconnects = 0u64;
    let mut total_resent = 0u64;
    let mut spared = None;
    let recovery = std::thread::scope(|scope| {
        let killer = if kill_node {
            let cluster_file = &cluster_file;
            let rec = rec.clone();
            let agent_id = victim_id.clone();
            let agent_wal = victim_wal.clone();
            let mut victim_guard = victim_guard;
            Some(scope.spawn(move || {
                suppress_this_thread();
                std::thread::sleep(Duration::from_millis(kill_after_ms));
                victim_guard.kill_now();
                let killed_at = Instant::now();
                // Recovery agent: replay the victim's WAL into a fresh
                // router, drain it, and push every recovered session to
                // its ring successor over the wire.
                let config = ServeConfig {
                    shards: SHARDS,
                    queue_capacity: 1 << 15,
                    ..ServeConfig::default()
                };
                let agent = SessionRouter::new(rec, config);
                let report = agent
                    .recover(&WalConfig::new(agent_wal, FsyncPolicy::Async))
                    .expect("replay victim wal");
                let snapshots = agent.drain_sessions();
                agent.shutdown();
                // Successor view: the registry minus the victim. The
                // victim is NOT deregistered yet, so clients keep
                // retrying the dead address and cannot race a Resume
                // ahead of their session's handoff.
                let mut successors = read_cluster(cluster_file).expect("read registry");
                successors.nodes.retain(|n| n.id != agent_id);
                let handoff_started = Instant::now();
                let mut peers: Vec<(SocketAddr, HandoffConn)> = Vec::new();
                let mut handoff_bytes = 0u64;
                for snapshot in &snapshots {
                    let owner = successors
                        .owner_addr(snapshot.session)
                        .expect("successor owner");
                    if !peers.iter().any(|(a, _)| *a == owner) {
                        peers.push((owner, HandoffConn::dial(owner).expect("dial successor")));
                    }
                    let conn = peers
                        .iter_mut()
                        .find(|(a, _)| *a == owner)
                        .map(|(_, c)| c)
                        .expect("peer cached");
                    let size = conn.handoff(snapshot).expect("successor must ack the handoff");
                    handoff_bytes += size as u64;
                }
                let handoff_s = handoff_started.elapsed().as_secs_f64();
                // Publishing the membership change releases the waiting
                // clients onto the successors.
                remove_node(cluster_file, &agent_id).expect("deregister victim");
                let recovery_ms = killed_at.elapsed().as_secs_f64() * 1e3;
                (report, snapshots.len(), handoff_bytes, handoff_s, recovery_ms)
            }))
        } else {
            spared = Some(victim_guard);
            None
        };
        let mut joins = Vec::new();
        for session in 1..=CHAOS_SESSIONS {
            let rec = rec.clone();
            let cluster_file = &cluster_file;
            let moved = kill_node && view.owner_addr(session) == Some(victim_addr);
            joins.push(scope.spawn(move || {
                let events = slot_stream(session);
                let (frames, redirects, reconnects, resent) =
                    drive_cluster_session(cluster_file, session, &events, pace);
                assert_session_invariants(session, &frames);
                let substantive: Vec<ServerFrame> = frames
                    .into_iter()
                    .filter(|f| !is_routing_chatter(f))
                    .collect();
                let got = frames_to_wire(&substantive);
                let want = chaos_baseline(&rec, session, &events);
                if moved {
                    assert!(redirects >= 1, "moved session {session} never redirected");
                    assert!(
                        is_subsequence(&got, &want),
                        "moved session {session}: frames are not a subsequence of the baseline"
                    );
                } else {
                    assert_eq!(
                        got, want,
                        "unmoved session {session}: frames must be byte-identical"
                    );
                }
                (redirects, reconnects, resent)
            }));
        }
        for join in joins {
            let (redirects, reconnects, resent) = join.join().expect("cluster client");
            total_redirects += redirects;
            total_reconnects += reconnects;
            total_resent += resent;
        }
        killer.map(|k| k.join().expect("killer thread"))
    });
    if let Some(guard) = spared {
        members.push((victim_id.clone(), victim_addr, victim_wal.clone(), guard));
    }

    // Control wave: fresh sessions against the surviving membership
    // must be byte-identical to the single-node baseline — the handoffs
    // contaminated nothing.
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for session in 1001..=(1000 + CHAOS_SESSIONS) {
            let rec = rec.clone();
            let cluster_file = &cluster_file;
            joins.push(scope.spawn(move || {
                let events = slot_stream(session);
                let (frames, _, _, _) =
                    drive_cluster_session(cluster_file, session, &events, Duration::ZERO);
                assert_session_invariants(session, &frames);
                let frames: Vec<ServerFrame> = frames
                    .into_iter()
                    .filter(|f| !is_routing_chatter(f))
                    .collect();
                assert_eq!(
                    frames_to_wire(&frames),
                    chaos_baseline(&rec, session, &events),
                    "control session {session}: frames must be byte-identical"
                );
            }));
        }
        for join in joins {
            join.join().expect("control client");
        }
    });

    // Survivors stop gracefully: deregister, drain (nothing left — the
    // clients closed every session), seal their WALs.
    for (id, _, _, mut guard) in members {
        let status = guard.stop_gracefully().expect("wait member");
        assert!(status.success(), "member {id} exited {status}");
    }

    match &recovery {
        Some((report, handoffs, handoff_bytes, handoff_s, recovery_ms)) => {
            let rate = *handoffs as f64 / handoff_s.max(1e-9);
            eprintln!(
                "serve_load: cluster ok ({nodes} nodes, {CHAOS_SESSIONS}+{CHAOS_SESSIONS} \
                 sessions; victim {victim_id} owned {victim_sessions}; {total_redirects} \
                 redirects, {total_reconnects} reconnects, {total_resent} events re-sent; \
                 recovery {recovery_ms:.1} ms: replay {} frames in {:.1} ms, {handoffs} \
                 handoffs ({handoff_bytes} bytes) in {:.1} ms = {rate:.0} snapshots/s)",
                report.frames,
                report.replay_ms,
                handoff_s * 1e3,
            );
        }
        None => eprintln!(
            "serve_load: cluster ok ({nodes} nodes, {CHAOS_SESSIONS}+{CHAOS_SESSIONS} \
             sessions, no kill; {total_redirects} redirects)"
        ),
    }

    if !smoke {
        if let Some((report, handoffs, handoff_bytes, handoff_s, recovery_ms)) = recovery {
            let section = format!(
                "  \"cluster\": {{\n    \"nodes\": {nodes},\n    \
                 \"sessions\": {CHAOS_SESSIONS},\n    \
                 \"victim_sessions\": {victim_sessions},\n    \
                 \"kill_after_ms\": {kill_after_ms},\n    \
                 \"client_redirects\": {total_redirects},\n    \
                 \"client_reconnects\": {total_reconnects},\n    \
                 \"events_resent\": {total_resent},\n    \
                 \"recovery_ms\": {recovery_ms:.3},\n    \
                 \"wal_replay_frames\": {},\n    \"wal_replay_ms\": {:.3},\n    \
                 \"handoffs\": {handoffs},\n    \"handoff_bytes\": {handoff_bytes},\n    \
                 \"handoff_ms\": {:.3},\n    \"handoffs_per_s\": {:.0}\n  }}",
                report.frames,
                report.replay_ms,
                handoff_s * 1e3,
                handoffs as f64 / handoff_s.max(1e-9),
            );
            write_bench_drill_section("cluster", &section);
        }
    }
    let _ = std::fs::remove_dir_all(&harness.dir);
    ExitCode::SUCCESS
}

struct Options {
    batched: bool,
    unbatched: bool,
    batch: usize,
    window: usize,
    min_duration_s: f64,
    warmup: u64,
    smoke: bool,
    /// Connection-sweep tier list; `None` means the default tiers on a
    /// full run and no sweep at all under `--smoke`.
    connections: Option<Vec<usize>>,
    /// Run the in-process reconnect harness instead of the workload.
    chaos: bool,
    /// Run the SIGKILL-and-recover drill, killing the serve child this
    /// many ms into the load. Also sets the kill delay for `--cluster
    /// --kill-node`.
    kill_after_ms: Option<u64>,
    /// Run the multi-node cluster drill with this many members.
    cluster: Option<usize>,
    /// SIGKILL the busiest cluster member mid-load.
    kill_node: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        batched: true,
        unbatched: true,
        batch: 32,
        window: 1,
        min_duration_s: 2.0,
        warmup: 2,
        smoke: false,
        connections: None,
        chaos: false,
        kill_after_ms: None,
        cluster: None,
        kill_node: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => opts.smoke = true,
            "--chaos" => opts.chaos = true,
            "--kill-node" => opts.kill_node = true,
            "--cluster" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 2 => opts.cluster = Some(n),
                _ => return Err("--cluster wants an integer >= 2".into()),
            },
            "--kill-after-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.kill_after_ms = Some(n),
                _ => return Err("--kill-after-ms wants a positive integer".into()),
            },
            "--mode" => match it.next().map(String::as_str) {
                Some("both") => {}
                Some("batched") => opts.unbatched = false,
                Some("unbatched") => opts.batched = false,
                _ => return Err("--mode wants both|batched|unbatched".into()),
            },
            "--batch" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.batch = n,
                _ => return Err("--batch wants a positive integer".into()),
            },
            "--window" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.window = n,
                _ => return Err("--window wants a positive integer".into()),
            },
            "--min-duration-s" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(s)) if s >= 0.0 => opts.min_duration_s = s,
                _ => return Err("--min-duration-s wants a non-negative number".into()),
            },
            "--warmup" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => opts.warmup = n,
                _ => return Err("--warmup wants an integer".into()),
            },
            "--connections" | "--connections-tiers" => {
                let tiers: Option<Vec<usize>> = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|t| t.trim().parse::<usize>())
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .and_then(Result::ok)
                    .filter(|tiers| !tiers.is_empty() && tiers.iter().all(|&t| t > 0));
                match tiers {
                    Some(tiers) => opts.connections = Some(tiers),
                    None => {
                        return Err(format!(
                            "{flag} wants a comma-separated list of positive integers"
                        ))
                    }
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.kill_node && opts.cluster.is_none() {
        return Err("--kill-node requires --cluster".into());
    }
    if opts.smoke {
        opts.min_duration_s = 0.0;
        opts.warmup = 0;
    }
    Ok(opts)
}

fn main() -> ExitCode {
    suppress_this_thread();
    // The 16384-connection tier holds both ends of every connection in
    // this one process; lift the fd limit before anything opens sockets.
    match ensure_nofile_limit(SWEEP_NOFILE_WANT) {
        Ok((before, after)) if before != after => {
            eprintln!("serve_load: raised RLIMIT_NOFILE {before} -> {after}")
        }
        Ok((_, after)) if after < SWEEP_NOFILE_WANT => eprintln!(
            "serve_load: RLIMIT_NOFILE stuck at {after} (< {SWEEP_NOFILE_WANT}); \
             deep sweep tiers may shed connections"
        ),
        Ok(_) => {}
        Err(e) => eprintln!("serve_load: could not read RLIMIT_NOFILE ({e})"),
    }
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(nodes) = opts.cluster {
        return run_cluster_drill(
            nodes,
            opts.kill_node,
            opts.kill_after_ms.unwrap_or(500),
            opts.smoke,
        );
    }
    if let Some(kill_after_ms) = opts.kill_after_ms {
        return run_kill_recovery(kill_after_ms, opts.smoke);
    }
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    let rec = Arc::new(rec);
    if opts.chaos {
        return run_chaos(&rec);
    }
    let config = ServeConfig {
        shards: SHARDS,
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    };
    let mut service =
        TcpService::start(SessionRouter::new(rec.clone(), config), "127.0.0.1:0")
            .expect("bind loopback");
    let addr = service.local_addr();
    let streams: Arc<Vec<Vec<InputEvent>>> =
        Arc::new((0..SLOTS).map(slot_stream).collect());
    eprintln!(
        "serve_load: {CLIENTS} clients x {SESSIONS_PER_CLIENT} sessions against {addr} \
         ({SHARDS} shards, batch {}, window {}, warmup {}, min {:.1}s/mode{})",
        opts.batch,
        opts.window,
        opts.warmup,
        opts.min_duration_s,
        if opts.smoke { ", smoke" } else { "" }
    );

    let mut next_session_base = 1u64;
    let mut results: Vec<ModeResult> = Vec::new();
    if opts.unbatched {
        results.push(run_mode(
            addr,
            &streams,
            &mut next_session_base,
            None,
            opts.window,
            opts.warmup,
            opts.min_duration_s,
        ));
    }
    if opts.batched {
        results.push(run_mode(
            addr,
            &streams,
            &mut next_session_base,
            Some(opts.batch),
            opts.window,
            opts.warmup,
            opts.min_duration_s,
        ));
    }
    let (pool_hits, pool_misses) = service.router().batch_pool().stats();
    service.shutdown();
    let snap = service.metrics().snapshot();

    for r in &results {
        eprintln!(
            "serve_load[{}]: {} rounds, {} events / {:.3}s = {:.0} ev/s; \
             RTT p50 {}ns p95 {}ns p99 {}ns; {:.4} server allocs/frame",
            r.mode,
            r.rounds,
            r.events_sent,
            r.wall_s,
            r.events_sent as f64 / r.wall_s.max(1e-9),
            r.p50,
            r.p95,
            r.p99,
            r.allocs_per_frame,
        );
    }

    // Connection sweep: fresh services, so it runs after the main
    // workload's service is down. `--smoke` only sweeps when a tier
    // list was given explicitly (the CI guard passes `--connections`)
    // and sticks to the default backend; the full run walks the whole
    // ladder once per available backend.
    let tiers: Vec<usize> = match (&opts.connections, opts.smoke) {
        (Some(tiers), _) => tiers.clone(),
        (None, false) => SWEEP_TIERS.to_vec(),
        (None, true) => Vec::new(),
    };
    let sweep_backends: Vec<PollBackend> = if opts.smoke {
        vec![PollBackend::Auto]
    } else if cfg!(target_os = "linux") {
        vec![PollBackend::Poll, PollBackend::Epoll]
    } else {
        vec![PollBackend::Poll]
    };
    let sweep_events: Vec<(u32, InputEvent)> = slot_stream(1)
        .into_iter()
        .take(SWEEP_BATCH)
        .enumerate()
        .map(|(i, e)| (i as u32, e))
        .collect();
    // The sweep's servers are spawned `serve` children (fd headroom and
    // server-only RSS accounting); the harness trains their model once.
    let sweep_harness = (!tiers.is_empty()).then(|| Harness::new("sweep"));
    let mut sweep: Vec<(PollBackend, Vec<TierResult>)> = Vec::new();
    for &backend in &sweep_backends {
        let mut ladder: Vec<TierResult> = Vec::new();
        for &n in &tiers {
            let rounds: u64 = if opts.smoke || n > SWEEP_DEEP_TIER { 1 } else { 3 };
            let harness = sweep_harness.as_ref().expect("tiers imply a harness");
            let tier = sweep_tier(harness, backend, n, rounds, &sweep_events);
            eprintln!(
                "serve_load[sweep {n} {}]: {}/{} accepted ({} connect failures), \
                 {} round trips in {:.3}s, RTT p50 {}ns p95 {}ns p99 {}ns, \
                 {} RSS bytes/conn, {} epoll_ctl calls",
                tier.reactor_backend,
                tier.accepted,
                tier.connections,
                tier.connect_failures,
                tier.rtt_samples,
                tier.wall_s,
                tier.p50,
                tier.p95,
                tier.p99,
                tier.rss_bytes_per_conn,
                tier.epoll_ctl_calls,
            );
            ladder.push(tier);
        }
        sweep.push((backend, ladder));
    }
    if let Some(harness) = &sweep_harness {
        let _ = std::fs::remove_dir_all(&harness.dir);
    }

    if opts.smoke {
        // The CI guard: the workload ran clean end to end.
        assert_eq!(snap.decode_errors, 0, "smoke: decode errors: {snap:?}");
        assert_eq!(snap.busy_rejections, 0, "smoke: busy rejections: {snap:?}");
        assert!(
            results.iter().all(|r| r.rtt_samples > 0),
            "smoke: no RTT samples collected"
        );
        for (_, ladder) in &sweep {
            for tier in ladder {
                assert_eq!(
                    tier.accepted, tier.connections,
                    "smoke: sweep tier {} ({}) dropped connections",
                    tier.connections, tier.reactor_backend
                );
                assert_eq!(
                    tier.round_trip_failures, 0,
                    "smoke: sweep tier {} ({}) had failed round trips",
                    tier.connections, tier.reactor_backend
                );
            }
        }
        let swept: usize = sweep.iter().map(|(_, ladder)| ladder.len()).sum();
        eprintln!(
            "serve_load: smoke ok (0 decode errors, 0 busy rejections{})",
            if swept == 0 {
                String::new()
            } else {
                format!(", {swept} sweep tiers clean")
            }
        );
        return ExitCode::SUCCESS;
    }

    let mut sections = String::new();
    for r in &results {
        sections.push_str(&format!(",\n  \"{}\": {}", r.mode, r.to_json()));
    }
    let ratios = match (
        results.iter().find(|r| r.mode == "unbatched"),
        results.iter().find(|r| r.mode == "batched"),
    ) {
        (Some(u), Some(b)) => format!(
            ",\n  \"rtt_p50_ratio\": {:.2},\n  \"points_per_s_ratio\": {:.2}",
            u.p50 as f64 / b.p50.max(1) as f64,
            b.points_per_s() / u.points_per_s().max(1e-9),
        ),
        _ => String::new(),
    };
    if sweep.iter().any(|(_, ladder)| !ladder.is_empty()) {
        let backend_blocks = sweep
            .iter()
            .filter(|(_, ladder)| !ladder.is_empty())
            .map(|(_, ladder)| {
                let tier_rows = ladder
                    .iter()
                    .map(|t| format!("        {}", t.to_json()))
                    .collect::<Vec<_>>()
                    .join(",\n");
                // Key by what the service reported, not what was asked
                // for: Auto resolves server-side.
                format!(
                    "      \"{}\": {{\n        \"tiers\": [\n{tier_rows}\n        ]\n      }}",
                    ladder[0].reactor_backend
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        sections.push_str(&format!(
            ",\n  \"connection_sweep\": {{\n    \"io_threads\": {SWEEP_IO_THREADS},\n    \
             \"workers\": {SWEEP_WORKERS},\n    \"batch_events\": {SWEEP_BATCH},\n    \
             \"page_bytes\": {},\n    \
             \"backends\": {{\n{backend_blocks}\n    }}\n  }}",
            page_bytes()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"transport\": \"tcp-loopback\",\n  \
         \"clients\": {CLIENTS},\n  \"sessions_per_client\": {SESSIONS_PER_CLIENT},\n  \
         \"gestures_per_session\": {GESTURES_PER_SESSION},\n  \"shards\": {SHARDS},\n  \
         \"warmup_rounds\": {},\n  \"min_duration_s\": {:.1},\n  \
         \"faults_repaired\": {},\n  \"busy_rejections\": {},\n  \"decode_errors\": {},\n  \
         \"batches_ingested\": {},\n  \"writer_flushes\": {},\n  \"frames_sent\": {},\n  \
         \"batch_pool_hits\": {pool_hits},\n  \"batch_pool_misses\": {pool_misses}{sections}{ratios}\n}}\n",
        opts.warmup,
        opts.min_duration_s,
        snap.faults_repaired,
        snap.busy_rejections,
        snap.decode_errors,
        snap.batches_ingested,
        snap.writer_flushes,
        snap.frames_sent,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("serve_load: wrote {path}");
    ExitCode::SUCCESS
}
