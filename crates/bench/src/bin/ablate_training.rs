//! Ablation A3: training-set size.
//!
//! The paper trains with 10 examples per class for the evaluations and
//! "typically" 15 for GDP. The sweep shows the closed-form training's
//! sample efficiency — and the ridge fallback keeping tiny training sets
//! alive.
//!
//! Run: `cargo run -p grandma-bench --bin ablate_training`

use grandma_bench::{evaluate, report};
use grandma_core::{EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    println!("== Ablation: training examples per class (paper: 10-15) ==\n");
    for name in ["eight_way", "gdp"] {
        let mut rows = Vec::new();
        for examples in [3usize, 5, 10, 15, 30] {
            let data = match name {
                "eight_way" => datasets::eight_way(0xab3c, examples, 30),
                _ => datasets::gdp(0xab3c, examples, 30),
            };
            let summary = evaluate(&data, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
            rows.push(vec![
                examples.to_string(),
                format!("{:.1}%", 100.0 * summary.full_accuracy),
                format!("{:.1}%", 100.0 * summary.eager_accuracy),
                format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
            ]);
        }
        println!("dataset: {name}");
        println!(
            "{}",
            report::table(
                &[
                    "examples/class",
                    "full accuracy",
                    "eager accuracy",
                    "points seen"
                ],
                &rows
            )
        );
    }
    println!("expected shape: accuracy saturates by ~10 examples per class.");
}
