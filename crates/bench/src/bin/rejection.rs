//! Rejection evaluation (§4.2's probability estimate and Mahalanobis
//! distance, the two quantities the paper's classifier exposes for
//! rejecting ambiguous or outlier input).
//!
//! Sweeps the two thresholds on the GDP set, scoring how much of the
//! *misclassified* input each rejects against how much correctly
//! classified input it sacrifices — plus a column for gibberish strokes
//! (random walks) that belong to no class at all.
//!
//! Run: `cargo run -p grandma-bench --bin rejection`

use grandma_bench::report;
use grandma_core::{Classifier, FeatureMask};
use grandma_geom::{Gesture, Point};
use grandma_synth::{datasets, SynthRng};

fn random_walk(rng: &mut SynthRng) -> Gesture {
    let mut pts = Vec::new();
    let (mut x, mut y) = (rng.gen_f64() * 50.0, rng.gen_f64() * 50.0);
    for i in 0..35 {
        x += rng.gen_f64() * 12.0 - 6.0;
        y += rng.gen_f64() * 12.0 - 6.0;
        pts.push(Point::new(x, y, i as f64 * 10.0));
    }
    Gesture::from_points(pts)
}

fn main() {
    let data = datasets::gdp(0x4e4e, 15, 30);
    let classifier =
        Classifier::train(&data.training, &FeatureMask::all()).expect("training succeeds");
    let mut rng = SynthRng::seed_from_u64(0x6a6a);
    let gibberish: Vec<Gesture> = (0..100).map(|_| random_walk(&mut rng)).collect();

    println!("== Rejection: probability and Mahalanobis thresholds ==\n");
    let mut rows = Vec::new();
    // Thresholds chosen from the measured distributions: correct test
    // gestures sit at d2 ~ 10-140 while gibberish starts near 200.
    for (min_p, max_d2) in [
        (0.0, f64::INFINITY),
        (0.90, f64::INFINITY),
        (0.95, f64::INFINITY),
        (0.99, f64::INFINITY),
        (0.0, 300.0),
        (0.0, 150.0),
        (0.95, 150.0),
    ] {
        let mut kept_correct = 0;
        let mut kept_wrong = 0;
        let mut rejected_correct = 0;
        let mut rejected_wrong = 0;
        for l in &data.testing {
            let c = classifier.classify(&l.gesture);
            let keep = c.accepted(min_p, max_d2);
            let right = c.class == l.class;
            match (keep, right) {
                (true, true) => kept_correct += 1,
                (true, false) => kept_wrong += 1,
                (false, true) => rejected_correct += 1,
                (false, false) => rejected_wrong += 1,
            }
        }
        let gibberish_rejected = gibberish
            .iter()
            .filter(|g| !classifier.classify(g).accepted(min_p, max_d2))
            .count();
        rows.push(vec![
            format!(
                "P>={min_p:.2}{}",
                if max_d2.is_finite() {
                    format!(", d2<={max_d2:.0}")
                } else {
                    String::new()
                }
            ),
            format!("{kept_correct}"),
            format!("{kept_wrong}"),
            format!("{rejected_correct}"),
            format!("{rejected_wrong}"),
            format!("{gibberish_rejected}/100"),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "thresholds",
                "kept correct",
                "kept wrong",
                "rejected correct",
                "rejected wrong",
                "gibberish rejected"
            ],
            &rows
        )
    );
    println!(
        "expected shape: the probability threshold trades a few correct\n\
         classifications for most of the wrong ones; the Mahalanobis threshold\n\
         catches gibberish (outliers) that the probability estimate is confident\n\
         about — the two are complementary, which is why the paper keeps both."
    );
}
