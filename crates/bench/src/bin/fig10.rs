//! Figure 10 + §5: the GDP gesture set.
//!
//! Paper numbers: full classifier 99.7 % correct; eager recognizer 93.5 %
//! correct, examining 60.5 % of each gesture on average. Trained with 10
//! examples of each of the 11 classes, tested on 30. The `group` gesture
//! is drawn clockwise (the §5 alteration; see the `group_direction`
//! binary for the ablation).
//!
//! Run: `cargo run -p grandma-bench --bin fig10`

use grandma_bench::{evaluate, print_per_class, report};
use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let data = datasets::gdp(0x0f10, 10, 30);
    let summary =
        evaluate(&data, &FeatureMask::all(), &EagerConfig::default()).expect("training succeeds");

    println!("== Figure 10: the GDP gesture set (group trained clockwise) ==\n");
    println!("{}", summary.headline());
    println!();
    print_per_class(&summary);

    // Figure 10 annotates each example "points-at-recognition / total";
    // print the first five test examples per class the same way.
    let (eager, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    println!("per-example recognition points (first five per class, as in the figure):");
    for (c, name) in data.class_names.iter().enumerate() {
        let cells: Vec<String> = data
            .testing_of(c)
            .take(5)
            .map(|l| {
                let run = eager.run(&l.gesture);
                let mark = if run.class != l.class { " E" } else { "" };
                format!("{}/{}{}", run.points_at_recognition, run.total_points, mark)
            })
            .collect();
        println!("  {name:14} {}", cells.join("  "));
    }
    println!();
    println!(
        "{}",
        report::kv_block(&[
            ("paper full accuracy", "99.7%".into()),
            (
                "ours  full accuracy",
                format!("{:.1}%", 100.0 * summary.full_accuracy),
            ),
            ("paper eager accuracy", "93.5%".into()),
            (
                "ours  eager accuracy",
                format!("{:.1}%", 100.0 * summary.eager_accuracy),
            ),
            ("paper points examined", "60.5%".into()),
            (
                "ours  points examined",
                format!("{:.1}%", 100.0 * summary.avg_fraction_seen),
            ),
        ])
    );
    println!(
        "expected shape: eager accuracy below full; eagerness varies strongly by\n\
         class (line and dot are never early — line shares its start with delete,\n\
         dot IS its final point; see EXPERIMENTS.md for the full discussion)."
    );
}
