//! Figures 4–7: the eager-training pipeline on the U/D illustration.
//!
//! Reproduces the paper's walk-through: Figure 5 labels each subgesture of
//! each training example with the full classifier's verdict (uppercase =
//! complete), Figure 6 shows the labels after accidentally complete
//! subgestures move into incomplete classes, and Figure 7 shows the final
//! AUC's verdicts (conservative: never unambiguous where the training data
//! is ambiguous).
//!
//! Run: `cargo run -p grandma-bench --bin ud_pipeline`

use grandma_core::eager::{label_subgestures, move_accidentally_complete, Auc};
use grandma_core::{AucClassKind, Classifier, EagerConfig, FeatureMask};
use grandma_synth::datasets;

fn main() {
    let data = datasets::ud(0x0d0d, 8, 0);
    let config = EagerConfig::default();
    let full = Classifier::train(&data.training, &FeatureMask::all()).expect("training succeeds");
    let records = label_subgestures(&full, &data.training, &config);

    let label_for = |assigned: AucClassKind| -> char {
        let ch = if assigned.gesture_class() == 0 {
            'u'
        } else {
            'd'
        };
        if assigned.is_complete() {
            ch.to_ascii_uppercase()
        } else {
            ch
        }
    };
    let row =
        |records: &[grandma_core::SubgestureRecord], class: usize, example: usize| -> String {
            let mut rs: Vec<&grandma_core::SubgestureRecord> = records
                .iter()
                .filter(|r| r.class == class && r.example == example)
                .collect();
            rs.sort_by_key(|r| r.prefix_len);
            rs.iter().map(|r| label_for(r.assigned)).collect()
        };

    println!("== Figure 5: initial complete/incomplete labels ==");
    println!("(one row per training example; label = full classifier's class for");
    println!(" that prefix, uppercase = complete — note accidentally complete");
    println!(" labels along the shared horizontal prelude)\n");
    for class in 0..2 {
        for example in 0..4 {
            println!(
                "  {}[{example}]: {}",
                data.class_names[class],
                row(&records, class, example)
            );
        }
    }

    let mut moved_records = records.clone();
    let outcome = move_accidentally_complete(&mut moved_records, full.linear(), &config);
    println!("\n== Figure 6: after moving accidentally complete subgestures ==");
    println!(
        "(moved {} subgestures; threshold = {:.2} = {:.0}% of the minimum full-to-\n incomplete Mahalanobis distance)\n",
        outcome.moved,
        outcome.threshold.unwrap_or(f64::NAN),
        100.0 * config.threshold_fraction
    );
    for class in 0..2 {
        for example in 0..4 {
            println!(
                "  {}[{example}]: {}",
                data.class_names[class],
                row(&moved_records, class, example)
            );
        }
    }

    let (auc, stats) = Auc::train(&moved_records, &config).expect("AUC training succeeds");
    println!("\n== Figure 7: final AUC verdicts on the training subgestures ==");
    println!(
        "(uppercase = judged unambiguous; bias ln({}) toward ambiguous, {} tweak\n fix-ups over {} passes, converged = {})\n",
        config.ambiguity_bias, stats.violations_fixed, stats.passes, stats.converged
    );
    for class in 0..2 {
        for example in 0..4 {
            let mut rs: Vec<&grandma_core::SubgestureRecord> = moved_records
                .iter()
                .filter(|r| r.class == class && r.example == example)
                .collect();
            rs.sort_by_key(|r| r.prefix_len);
            let verdicts: String = rs
                .iter()
                .map(|r| {
                    let kind = auc.classify_kind(&r.features);
                    label_for(kind)
                })
                .collect();
            println!("  {}[{example}]: {}", data.class_names[class], verdicts);
        }
    }

    // The paper's conservatism claim, checked over all training data.
    let violations = moved_records
        .iter()
        .filter(|r| r.is_incomplete())
        .filter(|r| auc.is_unambiguous(&r.features))
        .count();
    println!(
        "\nconservatism check: {} of {} ambiguous training subgestures judged \
         unambiguous (paper: the classifier \"performs conservatively, never \
         indicating that a subgesture is unambiguous when it is not\")",
        violations,
        moved_records.iter().filter(|r| r.is_incomplete()).count()
    );
}
