//! Criterion benchmarks for training: the closed-form full-classifier
//! solve and the whole eager pipeline (labeling + move + AUC + tweaks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grandma_core::{Classifier, EagerConfig, EagerRecognizer, FeatureMask};
use grandma_synth::datasets;
use std::hint::black_box;

fn bench_full_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_classifier_training");
    group.sample_size(20);
    for examples in [5usize, 15] {
        let data = datasets::gdp(2, examples, 0);
        group.bench_with_input(BenchmarkId::from_parameter(examples), &examples, |b, _| {
            b.iter(|| {
                black_box(
                    Classifier::train(black_box(&data.training), &FeatureMask::all())
                        .expect("training"),
                )
            });
        });
    }
    group.finish();
}

fn bench_eager_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("eager_recognizer_training");
    group.sample_size(10);
    for (name, data) in [
        ("eight_way", datasets::eight_way(3, 10, 0)),
        ("gdp", datasets::gdp(3, 10, 0)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                black_box(
                    EagerRecognizer::train(
                        black_box(&data.training),
                        &FeatureMask::all(),
                        &EagerConfig::default(),
                    )
                    .expect("training"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_training, bench_eager_training);
criterion_main!(benches);
