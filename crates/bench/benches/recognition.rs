//! Criterion benchmarks for the per-point recognition path (§5's costs):
//! feature update per mouse point, AUC evaluation (per class count), full
//! classification, and a whole eager run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grandma_core::{Classifier, EagerConfig, EagerRecognizer, FeatureExtractor, FeatureMask};
use grandma_geom::Point;
use grandma_synth::datasets;
use std::hint::black_box;

fn bench_feature_update(c: &mut Criterion) {
    c.bench_function("feature_update_per_point", |b| {
        let mut fx = FeatureExtractor::new();
        let mut i = 0u64;
        b.iter(|| {
            let s = i as f64;
            fx.update(black_box(Point::new(
                s.sin() * 40.0,
                s.cos() * 40.0,
                s * 10.0,
            )));
            i += 1;
            if i.is_multiple_of(4096) {
                fx.reset();
            }
        });
    });
}

fn bench_auc_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("auc_eval_by_class_count");
    for classes in [2usize, 4, 8] {
        let data = datasets::eight_way(1, 10, 0);
        let training: Vec<_> = data.training.into_iter().take(classes).collect();
        let (rec, _) =
            EagerRecognizer::train(&training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        let features = FeatureExtractor::extract(&training[0][0], &FeatureMask::all());
        group.bench_with_input(BenchmarkId::from_parameter(classes), &classes, |b, _| {
            b.iter(|| black_box(rec.auc().is_unambiguous(black_box(&features))));
        });
    }
    group.finish();
}

fn bench_full_classify(c: &mut Criterion) {
    let data = datasets::gdp(1, 10, 1);
    let classifier = Classifier::train(&data.training, &FeatureMask::all()).expect("training");
    let gesture = &data.testing[0].gesture;
    c.bench_function("full_classify_gdp_gesture", |b| {
        b.iter(|| black_box(classifier.classify(black_box(gesture))));
    });
}

fn bench_eager_run(c: &mut Criterion) {
    let data = datasets::eight_way(1, 10, 1);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training");
    let gesture = &data.testing[0].gesture;
    c.bench_function("eager_run_whole_gesture", |b| {
        b.iter(|| black_box(rec.run(black_box(gesture))));
    });
}

criterion_group!(
    benches,
    bench_feature_update,
    bench_auc_eval,
    bench_full_classify,
    bench_eager_run
);
criterion_main!(benches);
