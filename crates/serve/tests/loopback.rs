//! The loopback integration test: 64 concurrent sessions over real TCP
//! connections, interleaved within and across connections, must produce
//! *byte-identical* per-session frame sequences to the deterministic
//! in-process pipeline — per seed, across two independent service runs.
//!
//! A quarter of the sessions replay `FaultInjector`-corrupted streams, so
//! the equality also covers the sanitizer/fault path end to end.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventScript, InputEvent};
use grandma_serve::{
    encode_client, encode_server, run_events_inproc, ClientFrame, FrameBuffer, OutcomeKind,
    PipelineConfig, ServeConfig, ServerFrame, SessionRouter, TcpService, WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector, SynthRng};

const SESSIONS: u64 = 64;
const CONNECTIONS: u64 = 8;
const SESSIONS_PER_CONN: u64 = SESSIONS / CONNECTIONS;

fn recognizer() -> Arc<EagerRecognizer> {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    Arc::new(rec)
}

/// The seeded event stream of one session: a few gestures picked by the
/// session's own rng, with every fourth session corrupted.
fn session_stream(session: u64) -> Vec<(u32, InputEvent)> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    let mut rng = SynthRng::seed_from_u64(0x10AD ^ session.wrapping_mul(0x9E37_79B9));
    let gestures = 2 + (rng.next_u64() % 2) as usize;
    let mut script = EventScript::new();
    for _ in 0..gestures {
        let idx = (rng.next_u64() as usize) % data.testing.len();
        script = script.then_gesture(&data.testing[idx].gesture, Button::Left);
    }
    let mut events = script.into_events();
    if session.is_multiple_of(4) {
        events = FaultInjector::new(0xBAD ^ session).corrupt(&events);
    }
    events
        .into_iter()
        .enumerate()
        .map(|(i, e)| (i as u32, e))
        .collect()
}

/// Serializes a frame sequence to wire bytes — the "byte-identical"
/// comparison is on these, not on struct equality.
fn frames_to_bytes(frames: &[ServerFrame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        encode_server(frame, &mut bytes);
    }
    bytes
}

/// One client connection driving `sessions` concurrently: opens all of
/// them, interleaves their events round-robin, closes each, then reads
/// until every session's `Closed` marker arrived.
fn drive_connection(
    addr: std::net::SocketAddr,
    sessions: &[u64],
    streams: &HashMap<u64, Vec<(u32, InputEvent)>>,
) -> HashMap<u64, Vec<ServerFrame>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut bytes = Vec::new();
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    for &session in sessions {
        encode_client(&ClientFrame::Open { session }, &mut bytes);
    }
    // Round-robin interleave: session A's event i, session B's event i, …
    // so sessions genuinely overlap in time on the wire and in the shards.
    let mut cursors: Vec<usize> = vec![0; sessions.len()];
    loop {
        let mut progressed = false;
        for (slot, &session) in sessions.iter().enumerate() {
            let events = &streams[&session];
            if let Some(&(seq, event)) = events.get(cursors[slot]) {
                encode_client(
                    &ClientFrame::Event {
                        session,
                        seq,
                        event,
                    },
                    &mut bytes,
                );
                cursors[slot] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for &session in sessions {
        encode_client(
            &ClientFrame::Close {
                session,
                seq: streams[&session].len() as u32,
            },
            &mut bytes,
        );
    }
    stream.write_all(&bytes).expect("write");
    stream.flush().expect("flush");

    let mut fb = FrameBuffer::new();
    let mut per_session: HashMap<u64, Vec<ServerFrame>> =
        sessions.iter().map(|&s| (s, Vec::new())).collect();
    let mut closed = 0usize;
    let mut chunk = [0u8; 8192];
    while closed < sessions.len() {
        let n = match stream.read(&mut chunk) {
            Ok(0) => panic!("server EOF with {closed}/{} sessions closed", sessions.len()),
            Ok(n) => n,
            Err(e) => panic!("read failed with {closed} closed: {e}"),
        };
        fb.extend(&chunk[..n]);
        while let Some(frame) = fb.next_server().expect("valid server stream") {
            let session = match frame {
                ServerFrame::Recognized { session, .. }
                | ServerFrame::Manipulate { session, .. }
                | ServerFrame::Outcome { session, .. }
                | ServerFrame::Fault { session, .. }
                | ServerFrame::Resumed { session, .. }
                | ServerFrame::HandoffAck { session, .. }
                | ServerFrame::NotOwner { session, .. } => session,
            };
            if matches!(
                frame,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Closed,
                    ..
                }
            ) {
                closed += 1;
            }
            per_session
                .get_mut(&session)
                .expect("frame for unknown session")
                .push(frame);
        }
    }
    per_session
}

/// One full service run: start TCP, drive every connection from its own
/// thread, shut down, return per-session frames.
fn run_service_once(
    rec: Arc<EagerRecognizer>,
    streams: &HashMap<u64, Vec<(u32, InputEvent)>>,
) -> HashMap<u64, Vec<ServerFrame>> {
    let config = ServeConfig {
        shards: 4,
        // Large enough that this test never trips backpressure — Busy
        // determinism is covered separately in tests/backpressure.rs.
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    };
    let mut service =
        TcpService::start(SessionRouter::new(rec, config), "127.0.0.1:0").expect("bind");
    let addr = service.local_addr();
    let mut results = HashMap::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for conn in 0..CONNECTIONS {
            let sessions: Vec<u64> = (0..SESSIONS_PER_CONN)
                .map(|i| 1 + conn * SESSIONS_PER_CONN + i)
                .collect();
            let streams = &streams;
            joins.push(scope.spawn(move || drive_connection(addr, &sessions, streams)));
        }
        for join in joins {
            results.extend(join.join().expect("client thread"));
        }
    });
    service.shutdown();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.sessions_opened, SESSIONS, "{snap:?}");
    assert_eq!(snap.sessions_closed, SESSIONS, "{snap:?}");
    assert_eq!(snap.busy_rejections, 0, "loopback run must not hit Busy");
    results
}

#[test]
fn sixty_four_tcp_sessions_match_the_inproc_pipeline_byte_for_byte() {
    let rec = recognizer();
    let streams: HashMap<u64, Vec<(u32, InputEvent)>> =
        (1..=SESSIONS).map(|s| (s, session_stream(s))).collect();

    // The deterministic reference: each session through a bare pipeline.
    let expected: HashMap<u64, Vec<u8>> = streams
        .iter()
        .map(|(&session, events)| {
            let frames = run_events_inproc(
                &rec,
                session,
                &PipelineConfig::default(),
                events,
                events.len() as u32,
            );
            (session, frames_to_bytes(&frames))
        })
        .collect();

    // Sanity on the workload itself: corrupted sessions really repaired
    // faults, clean ones really recognized.
    let fault_frames = |bytes: &Vec<u8>| !bytes.is_empty();
    assert!(expected.values().all(fault_frames));

    // Two independent service runs must both reproduce the reference.
    for run in 0..2 {
        let got = run_service_once(rec.clone(), &streams);
        assert_eq!(got.len() as u64, SESSIONS);
        for (&session, frames) in &got {
            let got_bytes = frames_to_bytes(frames);
            assert_eq!(
                got_bytes, expected[&session],
                "run {run}, session {session}: TCP frames diverge from in-process pipeline"
            );
            assert!(
                matches!(
                    frames.last(),
                    Some(ServerFrame::Outcome {
                        outcome: OutcomeKind::Closed,
                        ..
                    })
                ),
                "run {run}, session {session} missing Closed marker"
            );
        }
    }
}

#[test]
fn half_closed_client_still_receives_every_reply() {
    // Regression: a client that writes its whole session and then
    // `shutdown(Write)` immediately presents the reactor with EOF while
    // replies are still queued. The reactor must treat EOF as a
    // half-close — drain every pending reply to the still-open write
    // side — rather than tearing the connection down on first EOF.
    let rec = recognizer();
    let session = 7u64;
    let events = session_stream(session);
    let expected = frames_to_bytes(&run_events_inproc(
        &rec,
        session,
        &PipelineConfig::default(),
        &events,
        events.len() as u32,
    ));

    let config = ServeConfig {
        shards: 2,
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    };
    let mut service =
        TcpService::start(SessionRouter::new(rec, config), "127.0.0.1:0").expect("bind");
    let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut bytes = Vec::new();
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    encode_client(&ClientFrame::Open { session }, &mut bytes);
    for &(seq, event) in &events {
        encode_client(
            &ClientFrame::Event {
                session,
                seq,
                event,
            },
            &mut bytes,
        );
    }
    encode_client(
        &ClientFrame::Close {
            session,
            seq: events.len() as u32,
        },
        &mut bytes,
    );
    stream.write_all(&bytes).expect("write");
    stream.flush().expect("flush");
    // The half-close: our write side is done before a single reply has
    // been read. The read side stays open for the drain.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    let mut fb = FrameBuffer::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut done = false;
    while !done {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => panic!("read after half-close failed: {e}"),
        };
        fb.extend(&chunk[..n]);
        while let Some(frame) = fb.next_server().expect("valid server stream") {
            if matches!(
                frame,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Closed,
                    ..
                }
            ) {
                done = true;
            }
            frames.push(frame);
        }
    }
    assert!(done, "server EOF before the Closed marker arrived");
    assert_eq!(
        frames_to_bytes(&frames),
        expected,
        "half-closed connection must still deliver the full reply stream"
    );
    service.shutdown();
}

#[test]
fn corrupted_sessions_report_faults_and_clean_ones_do_not_cancel() {
    let rec = recognizer();
    let streams: HashMap<u64, Vec<(u32, InputEvent)>> =
        (1..=SESSIONS).map(|s| (s, session_stream(s))).collect();
    let mut corrupted_faults = 0usize;
    let mut clean_recognized = 0usize;
    for (&session, events) in &streams {
        let frames = run_events_inproc(
            &rec,
            session,
            &PipelineConfig::default(),
            events,
            events.len() as u32,
        );
        let faults = frames
            .iter()
            .filter(|f| matches!(f, ServerFrame::Fault { .. }))
            .count();
        if session.is_multiple_of(4) {
            corrupted_faults += faults;
        } else {
            assert_eq!(faults, 0, "clean session {session} reported faults");
            clean_recognized += frames
                .iter()
                .filter(|f| {
                    matches!(
                        f,
                        ServerFrame::Outcome {
                            outcome: OutcomeKind::Recognized | OutcomeKind::Manipulated,
                            ..
                        }
                    )
                })
                .count();
        }
    }
    assert!(
        corrupted_faults > 0,
        "the corrupted quarter must provoke fault frames"
    );
    assert!(
        clean_recognized as u64 >= SESSIONS,
        "clean sessions must mostly recognize: {clean_recognized}"
    );
}
