//! Wire-protocol contract tests: seeded encode→decode identity for every
//! frame kind, and a decoder fuzz pass proving hostile bytes produce
//! typed errors, never panics.

use grandma_events::{Button, EventKind, InputEvent};
use grandma_serve::wire::{
    decode_client, decode_client_view, decode_server, encode_client, encode_server, ClientFrame,
    FaultCode, FrameBuffer, OutcomeKind, ServerFrame, WireError, MAX_BATCH_EVENTS,
    MAX_BATCH_FRAME_LEN, MAX_FRAME_LEN, WIRE_VERSION,
};
use grandma_synth::SynthRng;

fn rng_f64(rng: &mut SynthRng) -> f64 {
    // Raw bit patterns: exercises NaN, infinities, subnormals — the wire
    // must carry all of them bit-exact.
    f64::from_bits(rng.next_u64())
}

fn rng_kind(rng: &mut SynthRng) -> EventKind {
    let button = match rng.next_u64() % 3 {
        0 => Button::Left,
        1 => Button::Middle,
        _ => Button::Right,
    };
    match rng.next_u64() % 5 {
        0 => EventKind::MouseDown { button },
        1 => EventKind::MouseMove,
        2 => EventKind::MouseUp { button },
        3 => EventKind::Timeout,
        _ => EventKind::GrabBreak,
    }
}

fn rng_event(rng: &mut SynthRng) -> InputEvent {
    InputEvent::new(rng_kind(rng), rng_f64(rng), rng_f64(rng), rng_f64(rng))
}

fn rng_client(rng: &mut SynthRng) -> ClientFrame {
    match rng.next_u64() % 6 {
        0 => ClientFrame::Hello {
            version: rng.next_u64() as u16,
        },
        1 => ClientFrame::Open {
            session: rng.next_u64(),
        },
        2 => ClientFrame::Event {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
            event: rng_event(rng),
        },
        3 => {
            // Counts up to the single-frame cap so the identity check
            // below sees exactly one frame per generated value.
            let count = (rng.next_u64() % (MAX_BATCH_EVENTS as u64 + 1)) as usize;
            ClientFrame::EventBatch {
                session: rng.next_u64(),
                events: (0..count)
                    .map(|_| (rng.next_u64() as u32, rng_event(rng)))
                    .collect(),
            }
        }
        4 => ClientFrame::Close {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
        },
        _ => ClientFrame::Resume {
            session: rng.next_u64(),
            last_seq: rng.next_u64() as u32,
        },
    }
}

fn rng_server(rng: &mut SynthRng) -> ServerFrame {
    match rng.next_u64() % 5 {
        0 => ServerFrame::Recognized {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
            class: rng.next_u64() as u16,
            points: rng.next_u64() as u32,
        },
        1 => ServerFrame::Manipulate {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
            x: rng_f64(rng),
            y: rng_f64(rng),
        },
        2 => ServerFrame::Outcome {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
            outcome: match rng.next_u64() % 5 {
                0 => OutcomeKind::Recognized,
                1 => OutcomeKind::Manipulated,
                2 => OutcomeKind::Cancelled,
                3 => OutcomeKind::Rejected,
                _ => OutcomeKind::Closed,
            },
            class: match rng.next_u64() % 3 {
                0 => None,
                // u16::MAX is the no-class sentinel; keep generated
                // classes below it.
                _ => Some((rng.next_u64() % u64::from(u16::MAX)) as u16),
            },
            total_points: rng.next_u64() as u32,
            faults: rng.next_u64() as u32,
        },
        3 => ServerFrame::Fault {
            session: rng.next_u64(),
            seq: rng.next_u64() as u32,
            code: match rng.next_u64() % 13 {
                0 => FaultCode::NonFiniteCoordinates,
                1 => FaultCode::NonFiniteTimestamp,
                2 => FaultCode::OutOfOrder,
                3 => FaultCode::DroppedStale,
                4 => FaultCode::DuplicateMouseDown,
                5 => FaultCode::UnmatchedMouseUp,
                6 => FaultCode::MissingMouseUp,
                7 => FaultCode::Busy,
                8 => FaultCode::BadFrame,
                9 => FaultCode::UnknownSession,
                10 => FaultCode::AlreadyOpen,
                11 => FaultCode::SessionLimit,
                _ => FaultCode::VersionMismatch,
            },
        },
        _ => ServerFrame::Resumed {
            session: rng.next_u64(),
            last_seq: rng.next_u64() as u32,
        },
    }
}

/// `true` when two frames are identical *including* float bit patterns
/// (`==` treats NaN as unequal to itself, which would fail exactly the
/// values this suite most needs to check).
fn event_bit_eq(e1: &InputEvent, e2: &InputEvent) -> bool {
    e1.kind == e2.kind
        && e1.x.to_bits() == e2.x.to_bits()
        && e1.y.to_bits() == e2.y.to_bits()
        && e1.t.to_bits() == e2.t.to_bits()
}

fn client_bit_eq(a: &ClientFrame, b: &ClientFrame) -> bool {
    match (a, b) {
        (
            ClientFrame::Event {
                session: s1,
                seq: q1,
                event: e1,
            },
            ClientFrame::Event {
                session: s2,
                seq: q2,
                event: e2,
            },
        ) => s1 == s2 && q1 == q2 && event_bit_eq(e1, e2),
        (
            ClientFrame::EventBatch {
                session: s1,
                events: v1,
            },
            ClientFrame::EventBatch {
                session: s2,
                events: v2,
            },
        ) => {
            s1 == s2
                && v1.len() == v2.len()
                && v1
                    .iter()
                    .zip(v2)
                    .all(|((q1, e1), (q2, e2))| q1 == q2 && event_bit_eq(e1, e2))
        }
        _ => a == b,
    }
}

fn server_bit_eq(a: &ServerFrame, b: &ServerFrame) -> bool {
    match (a, b) {
        (
            ServerFrame::Manipulate {
                session: s1,
                seq: q1,
                x: x1,
                y: y1,
            },
            ServerFrame::Manipulate {
                session: s2,
                seq: q2,
                x: x2,
                y: y2,
            },
        ) => s1 == s2 && q1 == q2 && x1.to_bits() == x2.to_bits() && y1.to_bits() == y2.to_bits(),
        _ => a == b,
    }
}

#[test]
fn seeded_client_frames_round_trip_identically() {
    let mut rng = SynthRng::seed_from_u64(0xC11E);
    for i in 0..2000 {
        let frame = rng_client(&mut rng);
        let mut bytes = Vec::new();
        encode_client(&frame, &mut bytes);
        let cap = if matches!(frame, ClientFrame::EventBatch { .. }) {
            MAX_BATCH_FRAME_LEN
        } else {
            MAX_FRAME_LEN
        };
        assert!(bytes.len() <= 4 + cap, "frame {i} oversized");
        let (decoded, consumed) = decode_client(&bytes)
            .expect("round trip decodes")
            .expect("round trip is complete");
        assert_eq!(consumed, bytes.len(), "frame {i} left bytes behind");
        assert!(
            client_bit_eq(&decoded, &frame),
            "frame {i}: {decoded:?} != {frame:?}"
        );
        // The zero-copy view path must agree with the owned decoder.
        let (view, view_consumed) = decode_client_view(&bytes)
            .expect("view decodes")
            .expect("view is complete");
        assert_eq!(view_consumed, consumed);
        assert!(client_bit_eq(&view.into_frame(), &frame), "view mismatch at {i}");
    }
}

#[test]
fn seeded_server_frames_round_trip_identically() {
    let mut rng = SynthRng::seed_from_u64(0x5E12);
    for i in 0..2000 {
        let frame = rng_server(&mut rng);
        let mut bytes = Vec::new();
        encode_server(&frame, &mut bytes);
        assert!(bytes.len() <= 4 + MAX_FRAME_LEN, "frame {i} oversized");
        let (decoded, consumed) = decode_server(&bytes)
            .expect("round trip decodes")
            .expect("round trip is complete");
        assert_eq!(consumed, bytes.len(), "frame {i} left bytes behind");
        assert!(
            server_bit_eq(&decoded, &frame),
            "frame {i}: {decoded:?} != {frame:?}"
        );
    }
}

#[test]
fn round_trips_are_seed_stable_across_runs() {
    // Same seed, two independent generator+codec passes, identical bytes:
    // the protocol has no hidden nondeterminism.
    let encode_all = |seed: u64| {
        let mut rng = SynthRng::seed_from_u64(seed);
        let mut bytes = Vec::new();
        for _ in 0..256 {
            encode_client(&rng_client(&mut rng), &mut bytes);
        }
        bytes
    };
    assert_eq!(encode_all(0xAB), encode_all(0xAB));
}

#[test]
fn decoder_fuzz_returns_typed_errors_never_panics() {
    let mut rng = SynthRng::seed_from_u64(0xF022);
    let mut typed_errors = 0usize;
    for _ in 0..5000 {
        let len = (rng.next_u64() % 96) as usize;
        let soup: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Any outcome but a panic is acceptable; errors must be typed.
        match decode_client(&soup) {
            Ok(_) => {}
            Err(
                WireError::Oversized { .. }
                | WireError::EmptyFrame
                | WireError::UnknownTag { .. }
                | WireError::BadEnum { .. }
                | WireError::Malformed { .. }
                | WireError::TrailingBytes { .. }
                | WireError::IntOutOfRange { .. },
            ) => typed_errors += 1,
        }
        // The borrowed decoder sees the identical verdict: same Ok/Err
        // shape on every input, no panics.
        match (decode_client(&soup), decode_client_view(&soup)) {
            (Ok(Some((owned, c1))), Ok(Some((view, c2)))) => {
                assert_eq!(c1, c2);
                assert!(client_bit_eq(&owned, &view.into_frame()));
            }
            (Ok(None), Ok(None)) => {}
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("owned {a:?} disagrees with view {b:?}"),
        }
        match decode_server(&soup) {
            Ok(_) => {}
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either.
                typed_errors += 1;
            }
        }
    }
    assert!(typed_errors > 1000, "byte soup should mostly be rejected");
}

#[test]
fn frame_buffer_fuzz_survives_adversarial_chunking() {
    // Valid frames interleaved with random chunk boundaries: the buffer
    // must reassemble every frame exactly once, in order.
    let mut rng = SynthRng::seed_from_u64(0xC4A7);
    let mut frames = Vec::new();
    let mut bytes = Vec::new();
    for _ in 0..300 {
        let frame = rng_server(&mut rng);
        frames.push(frame);
        encode_server(&frame, &mut bytes);
    }
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let chunk = 1 + (rng.next_u64() % 11) as usize;
        let end = (pos + chunk).min(bytes.len());
        fb.extend(&bytes[pos..end]);
        pos = end;
        while let Some(frame) = fb.next_server().expect("valid stream") {
            got.push(frame);
        }
    }
    assert_eq!(got.len(), frames.len());
    for (g, f) in got.iter().zip(&frames) {
        assert!(server_bit_eq(g, f));
    }
    assert_eq!(fb.pending(), 0);
}

#[test]
fn corrupted_valid_frames_never_panic_the_decoder() {
    // Take real frames and flip seeded bytes: decoders must return
    // Ok or a typed error on every mutation.
    let mut rng = SynthRng::seed_from_u64(0xB17F);
    for _ in 0..1500 {
        let mut bytes = Vec::new();
        encode_client(&rng_client(&mut rng), &mut bytes);
        let flips = 1 + (rng.next_u64() % 4) as usize;
        for _ in 0..flips {
            let at = (rng.next_u64() as usize) % bytes.len();
            bytes[at] ^= (rng.next_u64() as u8) | 1;
        }
        let _ = decode_client(&bytes);
        let _ = decode_client_view(&bytes);
        let _ = decode_server(&bytes);
    }
}

#[test]
fn client_view_stream_survives_adversarial_chunking() {
    // Batched and single-event frames mixed, fed through the zero-copy
    // FrameBuffer path at random chunk boundaries: every frame comes out
    // exactly once, in order, bit-identical.
    let mut rng = SynthRng::seed_from_u64(0x0BA7C4);
    let mut frames = Vec::new();
    let mut bytes = Vec::new();
    for _ in 0..200 {
        let frame = rng_client(&mut rng);
        encode_client(&frame, &mut bytes);
        frames.push(frame);
    }
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let chunk = 1 + (rng.next_u64() % 37) as usize;
        let end = (pos + chunk).min(bytes.len());
        fb.extend(&bytes[pos..end]);
        pos = end;
        while let Some(view) = fb.next_client_view().expect("valid stream") {
            got.push(view.into_frame());
        }
    }
    assert_eq!(got.len(), frames.len());
    for (i, (g, f)) in got.iter().zip(&frames).enumerate() {
        assert!(client_bit_eq(g, f), "frame {i} diverged");
    }
    assert_eq!(fb.pending(), 0);
}

#[test]
fn resume_frames_survive_one_byte_delivery_and_torn_tails() {
    // The resume handshake happens on freshly reconnected sockets, where
    // tiny reads and mid-frame truncation are the norm, not the edge
    // case. One byte at a time, both directions, then a torn tail.
    let resume = ClientFrame::Resume {
        session: 0xDEAD_BEEF,
        last_seq: 41,
    };
    let resumed = ServerFrame::Resumed {
        session: 0xDEAD_BEEF,
        last_seq: 37,
    };
    let mut client_bytes = Vec::new();
    encode_client(&resume, &mut client_bytes);
    encode_client(
        &ClientFrame::Close {
            session: 0xDEAD_BEEF,
            seq: 42,
        },
        &mut client_bytes,
    );
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    for &b in &client_bytes {
        fb.extend(&[b]);
        while let Some(view) = fb.next_client_view().expect("valid stream") {
            got.push(view.into_frame());
        }
    }
    assert_eq!(got.len(), 2);
    assert_eq!(got[0], resume);
    assert_eq!(fb.pending(), 0);

    let mut server_bytes = Vec::new();
    encode_server(&resumed, &mut server_bytes);
    let mut fb = FrameBuffer::new();
    let mut got = Vec::new();
    for &b in &server_bytes {
        fb.extend(&[b]);
        while let Some(frame) = fb.next_server().expect("valid stream") {
            got.push(frame);
        }
    }
    assert_eq!(got, vec![resumed]);

    // A torn tail — the frame cut anywhere mid-body — must park as
    // incomplete (Ok(None) with bytes pending), never error or yield a
    // partial frame.
    for cut in 1..server_bytes.len() {
        let mut fb = FrameBuffer::new();
        fb.extend(&server_bytes[..cut]);
        assert!(
            fb.next_server().expect("torn frame is not an error").is_none(),
            "cut at {cut} produced a frame from a partial Resumed"
        );
        assert_eq!(fb.pending(), cut, "cut at {cut} dropped buffered bytes");
        // The remainder arriving later completes it.
        fb.extend(&server_bytes[cut..]);
        assert_eq!(fb.next_server().expect("completes"), Some(resumed));
    }
}

#[test]
fn hello_frame_is_versioned() {
    let mut bytes = Vec::new();
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    let (decoded, _) = decode_client(&bytes).expect("decodes").expect("complete");
    assert_eq!(
        decoded,
        ClientFrame::Hello {
            version: WIRE_VERSION
        }
    );
}
