//! Hermetic kill-and-recover tests: a point-in-time copy of the WAL
//! directory stands in for a SIGKILL (everything the dead process would
//! leave behind is exactly what was on disk), a fresh router recovers
//! from the copy, and resumed sessions must finish **byte-identically**
//! to a never-crashed in-process pipeline — with zero cross-session
//! contamination and the torn tail of a mid-write crash dropped, not
//! fatal.
//!
//! The process-level version of this drill (real SIGKILL of a `serve`
//! child, restart with `--recover`) lives in `serve_load
//! --kill-after-ms`; these tests pin the same guarantees without
//! spawning processes so they can run in the workspace test suite.

use std::sync::Arc;
use std::time::Duration;

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventScript, InputEvent};
use grandma_serve::{
    encode_server, run_events_inproc, ClientFrame, Duplex, FsyncPolicy, PipelineConfig,
    ServeConfig, ServerFrame, SessionRouter, WalConfig, WIRE_VERSION,
};
use grandma_synth::{datasets, SynthRng};

const SESSIONS: u64 = 4;

fn recognizer() -> Arc<EagerRecognizer> {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    Arc::new(rec)
}

/// A session's seeded events with the resume protocol's 1-based seqs.
fn session_stream(session: u64) -> Vec<(u32, InputEvent)> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    let mut rng = SynthRng::seed_from_u64(0xC4A5 ^ session.wrapping_mul(0x9E37_79B9));
    let mut script = EventScript::new();
    for _ in 0..2 {
        let idx = (rng.next_u64() as usize) % data.testing.len();
        script = script.then_gesture(&data.testing[idx].gesture, Button::Left);
    }
    script
        .into_events()
        .into_iter()
        .enumerate()
        .map(|(i, e)| ((i + 1) as u32, e))
        .collect()
}

fn frame_session(frame: &ServerFrame) -> u64 {
    match *frame {
        ServerFrame::Recognized { session, .. }
        | ServerFrame::Manipulate { session, .. }
        | ServerFrame::Outcome { session, .. }
        | ServerFrame::Fault { session, .. }
        | ServerFrame::Resumed { session, .. }
        | ServerFrame::HandoffAck { session, .. }
        | ServerFrame::NotOwner { session, .. } => session,
    }
}

fn frame_seq(frame: &ServerFrame) -> u32 {
    match *frame {
        ServerFrame::Recognized { seq, .. }
        | ServerFrame::Manipulate { seq, .. }
        | ServerFrame::Outcome { seq, .. }
        | ServerFrame::Fault { seq, .. } => seq,
        ServerFrame::Resumed { last_seq, .. } | ServerFrame::HandoffAck { last_seq, .. } => {
            last_seq
        }
        ServerFrame::NotOwner { .. } => 0,
    }
}

fn frames_to_bytes(frames: &[ServerFrame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        encode_server(frame, &mut bytes);
    }
    bytes
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("grandma-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The SIGKILL stand-in: freeze the live WAL directory into an image.
fn copy_wal(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("mkdir image");
    for entry in std::fs::read_dir(from).expect("read wal dir").flatten() {
        if entry.file_name().to_string_lossy().starts_with("shard-") {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy");
        }
    }
}

/// Runs the crash drill and returns each session's full received frame
/// sequence (pre-crash prefix + post-recovery tail), the recovery
/// report, and the expected baselines. `mangle` gets to corrupt the
/// crash image before recovery.
fn crash_and_recover(
    tag: &str,
    mangle: impl FnOnce(&std::path::Path),
) -> (Vec<Vec<ServerFrame>>, grandma_serve::RecoveryReport, Vec<Vec<ServerFrame>>) {
    let rec = recognizer();
    let live_dir = tmp_dir(&format!("{tag}-live"));
    let image_dir = tmp_dir(&format!("{tag}-image"));

    let streams: Vec<Vec<(u32, InputEvent)>> = (1..=SESSIONS).map(session_stream).collect();
    let baselines: Vec<Vec<ServerFrame>> = streams
        .iter()
        .enumerate()
        .map(|(i, events)| {
            run_events_inproc(
                &rec,
                i as u64 + 1,
                &PipelineConfig::default(),
                events,
                events.len() as u32 + 1,
            )
        })
        .collect();

    // Phase 1: live router with a sync WAL; feed each session's first
    // half and collect exactly the frames those events produce.
    let config = ServeConfig {
        wal: Some(WalConfig::new(live_dir.clone(), FsyncPolicy::Sync)),
        ..ServeConfig::default()
    };
    let router = SessionRouter::new(rec.clone(), config);
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    let mut prefix_ends = Vec::new();
    let mut expected_prefix_counts = Vec::new();
    for (i, events) in streams.iter().enumerate() {
        let session = i as u64 + 1;
        let prefix_end = (events.len() / 2) as u32;
        prefix_ends.push(prefix_end);
        expected_prefix_counts.push(
            baselines[i]
                .iter()
                .filter(|f| frame_seq(f) <= prefix_end)
                .count(),
        );
        client
            .send(&ClientFrame::Open { session })
            .expect("open");
        for &(seq, event) in events.iter().filter(|&&(seq, _)| seq <= prefix_end) {
            client
                .send(&ClientFrame::Event {
                    session,
                    seq,
                    event,
                })
                .expect("event");
        }
    }
    let mut received: Vec<Vec<ServerFrame>> = vec![Vec::new(); SESSIONS as usize];
    let want_total: usize = expected_prefix_counts.iter().sum();
    let mut got_total = 0usize;
    while got_total < want_total {
        let frame = client
            .recv_timeout(Duration::from_secs(10))
            .expect("recv")
            .expect("prefix frame");
        let session = frame_session(&frame);
        assert!(
            (1..=SESSIONS).contains(&session),
            "foreign session {session} in prefix: {frame:?}"
        );
        received[session as usize - 1].push(frame);
        got_total += 1;
    }

    // The "crash": freeze the durable state as the kill would leave it,
    // then tear the live router down. Its graceful shutdown compacts
    // `live_dir`, but the frozen image no longer changes.
    copy_wal(&live_dir, &image_dir);
    router.shutdown();
    mangle(&image_dir);

    // Phase 2: a fresh router recovers from the image.
    let wal = WalConfig::new(image_dir.clone(), FsyncPolicy::Sync);
    let config = ServeConfig {
        wal: Some(wal.clone()),
        ..ServeConfig::default()
    };
    let router = SessionRouter::new(rec.clone(), config);
    let report = router.recover(&wal).expect("recover");
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    // Recovered sessions are orphans: nothing may arrive before Resume.
    assert!(
        client
            .recv_timeout(Duration::from_millis(50))
            .expect("recv")
            .is_none(),
        "recovered sessions must stay silent until resumed"
    );
    for (i, _) in streams.iter().enumerate() {
        let session = i as u64 + 1;
        client
            .send(&ClientFrame::Resume {
                session,
                last_seq: 0,
            })
            .expect("resume");
        let frame = client
            .recv_timeout(Duration::from_secs(10))
            .expect("recv")
            .expect("resumed frame");
        match frame {
            ServerFrame::Resumed { session: s, last_seq } => {
                assert_eq!(s, session);
                assert_eq!(
                    last_seq, prefix_ends[i],
                    "server-authoritative last_seq must be the durable prefix"
                );
            }
            other => panic!("expected Resumed, got {other:?}"),
        }
    }
    // Finish each session: the tail events, then Close.
    for (i, events) in streams.iter().enumerate() {
        let session = i as u64 + 1;
        for &(seq, event) in events.iter().filter(|&&(seq, _)| seq > prefix_ends[i]) {
            client
                .send(&ClientFrame::Event {
                    session,
                    seq,
                    event,
                })
                .expect("tail event");
        }
        client
            .send(&ClientFrame::Close {
                session,
                seq: events.len() as u32 + 1,
            })
            .expect("close");
        for frame in client
            .recv_session_until_closed(session, Duration::from_secs(10))
            .expect("tail frames")
        {
            let s = frame_session(&frame);
            assert_eq!(s, session, "cross-session contamination: {frame:?}");
            received[i].push(frame);
        }
    }
    router.shutdown();
    let _ = std::fs::remove_dir_all(&live_dir);
    let _ = std::fs::remove_dir_all(&image_dir);
    (received, report, baselines)
}

#[test]
fn recovered_sessions_finish_byte_identically() {
    let (received, report, baselines) = crash_and_recover("clean", |_| {});
    assert_eq!(report.sessions, SESSIONS);
    assert!(!report.torn, "clean image must not report a torn tail");
    assert!(report.frames > 0, "the log tail must replay frames");
    for (i, (got, want)) in received.iter().zip(&baselines).enumerate() {
        assert_eq!(
            frames_to_bytes(got),
            frames_to_bytes(want),
            "session {}: crashed-and-recovered frames must be byte-identical \
             to the never-crashed pipeline",
            i + 1
        );
    }
}

#[test]
fn torn_wal_tail_is_dropped_and_sessions_still_resume() {
    let (received, report, baselines) = crash_and_recover("torn", |image| {
        // A crash mid-append leaves a half-written record; recovery must
        // shrug it off. The prefix events are all durable already (sync
        // WAL), so the byte-identical guarantee still holds.
        for entry in std::fs::read_dir(image).expect("read image").flatten() {
            if entry.file_name().to_string_lossy().ends_with(".wal") {
                use std::io::Write;
                let mut file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(entry.path())
                    .expect("open wal");
                // A plausible length prefix with a garbage body.
                file.write_all(&[48, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 7, 7])
                    .expect("tear tail");
            }
        }
    });
    assert_eq!(report.sessions, SESSIONS);
    assert!(report.torn, "the torn tail must be reported");
    for (i, (got, want)) in received.iter().zip(&baselines).enumerate() {
        assert_eq!(
            frames_to_bytes(got),
            frames_to_bytes(want),
            "session {}: torn-tail recovery must still be byte-identical",
            i + 1
        );
    }
}

#[test]
fn graceful_shutdown_seals_sessions_for_recovery() {
    // The other half of durability: no crash at all. A router with live
    // sessions shuts down gracefully; its WAL must hold snapshots that
    // a fresh router restores with the exact pipeline state.
    let rec = recognizer();
    let dir = tmp_dir("seal");
    let wal = WalConfig::new(dir.clone(), FsyncPolicy::Sync);
    let config = ServeConfig {
        wal: Some(wal.clone()),
        ..ServeConfig::default()
    };
    let router = SessionRouter::new(rec.clone(), config.clone());
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    let events = session_stream(9);
    let cut = (events.len() / 2) as u32;
    client.send(&ClientFrame::Open { session: 9 }).expect("open");
    for &(seq, event) in events.iter().filter(|&&(seq, _)| seq <= cut) {
        client
            .send(&ClientFrame::Event {
                session: 9,
                seq,
                event,
            })
            .expect("event");
    }
    let baseline = run_events_inproc(
        &rec,
        9,
        &PipelineConfig::default(),
        &events,
        events.len() as u32 + 1,
    );
    let want_prefix = baseline
        .iter()
        .filter(|f| frame_seq(f) <= cut)
        .count();
    let mut received = Vec::new();
    while received.len() < want_prefix {
        received.push(
            client
                .recv_timeout(Duration::from_secs(10))
                .expect("recv")
                .expect("prefix frame"),
        );
    }
    router.shutdown();

    let router = SessionRouter::new(rec.clone(), config);
    let report = router.recover(&wal).expect("recover");
    assert_eq!(report.sessions, 1, "the sealed session must come back");
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    client
        .send(&ClientFrame::Resume {
            session: 9,
            last_seq: 0,
        })
        .expect("resume");
    match client
        .recv_timeout(Duration::from_secs(10))
        .expect("recv")
        .expect("resumed")
    {
        ServerFrame::Resumed { session, last_seq } => {
            assert_eq!(session, 9);
            assert_eq!(last_seq, cut);
        }
        other => panic!("expected Resumed, got {other:?}"),
    }
    for &(seq, event) in events.iter().filter(|&&(seq, _)| seq > cut) {
        client
            .send(&ClientFrame::Event {
                session: 9,
                seq,
                event,
            })
            .expect("tail event");
    }
    client
        .send(&ClientFrame::Close {
            session: 9,
            seq: events.len() as u32 + 1,
        })
        .expect("close");
    received.extend(
        client
            .recv_session_until_closed(9, Duration::from_secs(10))
            .expect("tail"),
    );
    router.shutdown();
    assert_eq!(
        frames_to_bytes(&received),
        frames_to_bytes(&baseline),
        "graceful shutdown + recovery must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_foreign_or_unknown_session_is_faulted() {
    let rec = recognizer();
    let router = SessionRouter::new(rec, ServeConfig::default());
    let mut owner = Duplex::connect(router.clone());
    let mut intruder = Duplex::connect(router.clone());
    for client in [&mut owner, &mut intruder] {
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION,
            })
            .expect("hello");
    }
    owner.send(&ClientFrame::Open { session: 5 }).expect("open");
    // A live session owned by another connection must not be stealable
    // — and the fault must be indistinguishable from "never existed".
    intruder
        .send(&ClientFrame::Resume {
            session: 5,
            last_seq: 0,
        })
        .expect("resume");
    intruder
        .send(&ClientFrame::Resume {
            session: 404,
            last_seq: 0,
        })
        .expect("resume unknown");
    for _ in 0..2 {
        let frame = intruder
            .recv_timeout(Duration::from_secs(10))
            .expect("recv")
            .expect("fault");
        assert!(
            matches!(
                frame,
                ServerFrame::Fault {
                    code: grandma_serve::FaultCode::UnknownSession,
                    seq: 0,
                    ..
                }
            ),
            "got {frame:?}"
        );
    }
    router.shutdown();
}
