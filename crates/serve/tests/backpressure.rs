//! Backpressure and resilience: a full shard queue rejects with `Busy`
//! (it never grows), every rejection is reported (nothing is silently
//! dropped), and corrupted or hostile byte streams cost at most a
//! connection, never the process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventKind, EventScript, InputEvent};
use grandma_serve::{
    encode_client, ClientFrame, Duplex, FaultCode, FrameBuffer, OutcomeKind, ServeConfig,
    ServerFrame, SessionRouter, TcpService, WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector, SynthRng};

fn recognizer() -> Arc<EagerRecognizer> {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    Arc::new(rec)
}

#[test]
fn full_shard_queue_rejects_busy_and_depth_stays_bounded() {
    const CAPACITY: usize = 8;
    const FLOOD: u32 = 256;
    let config = ServeConfig {
        shards: 1,
        queue_capacity: CAPACITY,
        ..ServeConfig::default()
    };
    let router = SessionRouter::new(recognizer(), config);
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    client.send(&ClientFrame::Open { session: 1 }).expect("open");
    // Hold the shard still so the queue genuinely fills, deterministically
    // even on a single-core box.
    std::thread::sleep(Duration::from_millis(50));
    let pause = router.pause_shard(0).expect("pause");
    std::thread::sleep(Duration::from_millis(50));

    for seq in 0..FLOOD {
        client
            .send(&ClientFrame::Event {
                session: 1,
                seq,
                event: InputEvent::new(EventKind::MouseMove, seq as f64, 0.0, seq as f64),
            })
            .expect("send never blocks");
    }
    let snap = router.metrics().snapshot();
    // Bounded growth: the queue never exceeded its capacity (+1 for the
    // pause marker itself), no matter how hard the flood pushed.
    assert!(
        snap.shards[0].queue_highwater <= (CAPACITY + 1) as u64,
        "queue grew past its bound: {snap:?}"
    );
    assert!(
        snap.busy_rejections > 0,
        "a stalled shard must reject with Busy"
    );

    pause.release();
    // Let the shard drain before closing — a Close against a still-full
    // queue would itself bounce as Busy.
    while router.metrics().snapshot().shards[0].queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    client
        .send(&ClientFrame::Close {
            session: 1,
            seq: FLOOD,
        })
        .expect("close");
    let frames = client
        .recv_session_until_closed(1, Duration::from_secs(10))
        .expect("recv");
    let busy_faults = frames
        .iter()
        .filter(|f| {
            matches!(
                f,
                ServerFrame::Fault {
                    code: FaultCode::Busy,
                    ..
                }
            )
        })
        .count() as u64;
    assert!(
        matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ),
        "session must still close cleanly after the flood"
    );
    // Accounting: every flooded event was either ingested or explicitly
    // bounced as Busy — nothing vanished.
    router.shutdown();
    let snap = router.metrics().snapshot();
    assert_eq!(
        snap.events_ingested + busy_faults,
        u64::from(FLOOD),
        "events must be accepted or rejected, never dropped: {snap:?}"
    );
    assert_eq!(snap.busy_rejections, busy_faults);
}

#[test]
fn busy_rejections_are_deterministic_for_a_fixed_schedule() {
    // Same pause → flood → release schedule twice: identical Busy counts.
    let run = || {
        let config = ServeConfig {
            shards: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        let router = SessionRouter::new(recognizer(), config);
        let pause = router.pause_shard(0).expect("pause");
        std::thread::sleep(Duration::from_millis(50));
        let mut client = Duplex::connect(router.clone());
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION,
            })
            .expect("hello");
        client.send(&ClientFrame::Open { session: 1 }).expect("open");
        for seq in 0..64 {
            client
                .send(&ClientFrame::Event {
                    session: 1,
                    seq,
                    event: InputEvent::new(EventKind::MouseMove, 1.0, 1.0, seq as f64),
                })
                .expect("send");
        }
        pause.release();
        router.shutdown();
        router.metrics().snapshot().busy_rejections
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "Busy schedule must replay identically");
    assert!(a > 0);
}

#[test]
fn corrupted_event_streams_over_tcp_never_panic_the_service() {
    let mut service = TcpService::start(
        SessionRouter::new(recognizer(), ServeConfig::default()),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = service.local_addr();
    let data = datasets::eight_way(0x7e57, 0, 4);

    // Wave after wave of FaultInjector-corrupted streams, each from a
    // fresh connection.
    for wave in 0u64..6 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let clean = EventScript::new()
            .then_gesture(&data.testing[wave as usize % data.testing.len()].gesture, Button::Left)
            .into_events();
        let corrupted = FaultInjector::new(0xDEAD ^ wave).corrupt(&clean);
        let session = 100 + wave;
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session }, &mut bytes);
        for (i, e) in corrupted.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session,
                seq: corrupted.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        // Drain until the Closed marker: the pipeline digested the
        // corruption without dying.
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        let mut closed = false;
        while !closed {
            let n = match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            fb.extend(&chunk[..n]);
            while let Some(frame) = fb.next_server().expect("server bytes") {
                if matches!(
                    frame,
                    ServerFrame::Outcome {
                        outcome: OutcomeKind::Closed,
                        ..
                    }
                ) {
                    closed = true;
                }
            }
        }
        assert!(closed, "wave {wave}: corrupted session must still close");
    }

    // Hostile frames (random bytes) on top: each costs one connection.
    let mut rng = SynthRng::seed_from_u64(0x50DA);
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let soup: Vec<u8> = (0..256).map(|_| rng.next_u64() as u8).collect();
        let _ = stream.write_all(&soup);
        // The server may close the connection at any point; ignore errors.
        let _ = stream.read(&mut [0u8; 64]);
    }

    // The service is still alive and serving correctly.
    let mut stream = TcpStream::connect(addr).expect("service survived");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut bytes = Vec::new();
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    encode_client(&ClientFrame::Open { session: 999 }, &mut bytes);
    encode_client(&ClientFrame::Close { session: 999, seq: 0 }, &mut bytes);
    stream.write_all(&bytes).expect("write");
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 1024];
    let mut closed = false;
    while !closed {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        fb.extend(&chunk[..n]);
        while let Some(frame) = fb.next_server().expect("server bytes") {
            closed |= matches!(
                frame,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Closed,
                    ..
                }
            );
        }
    }
    assert!(closed, "post-garbage session must serve normally");
    service.shutdown();
    let snap = service.metrics().snapshot();
    assert!(snap.decode_errors >= 1, "garbage must be counted: {snap:?}");
    assert_eq!(snap.sessions_opened, snap.sessions_closed, "{snap:?}");
}
