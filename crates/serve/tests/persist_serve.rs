//! Persistence regression: a recognizer saved with `grandma_core::persist`
//! and loaded back must serve *identically* to the in-memory original —
//! same frames, same outcomes, over both transports.

use std::sync::Arc;
use std::time::Duration;

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventScript, InputEvent};
use grandma_serve::{
    run_events_inproc, ClientFrame, Duplex, PipelineConfig, ServeConfig, SessionRouter,
    WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector};

fn trained() -> EagerRecognizer {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    rec
}

fn streams() -> Vec<(u64, Vec<(u32, InputEvent)>)> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    (0..8u64)
        .map(|i| {
            let mut events = EventScript::new()
                .then_gesture(&data.testing[i as usize].gesture, Button::Left)
                .then_gesture(&data.testing[(i as usize + 3) % 8].gesture, Button::Left)
                .into_events();
            if i.is_multiple_of(2) {
                events = FaultInjector::new(0xFACE ^ i).corrupt(&events);
            }
            (
                i + 1,
                events
                    .into_iter()
                    .enumerate()
                    .map(|(k, e)| (k as u32, e))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn loaded_recognizer_serves_identically_to_in_memory() {
    let original = trained();
    let text = original.to_text();
    let loaded = EagerRecognizer::from_text(&text).expect("persisted text loads");
    let config = PipelineConfig::default();
    for (session, events) in streams() {
        let close = events.len() as u32;
        let mem = run_events_inproc(&original, session, &config, &events, close);
        let disk = run_events_inproc(&loaded, session, &config, &events, close);
        assert_eq!(
            mem, disk,
            "session {session}: loaded recognizer diverges from in-memory"
        );
    }
}

#[test]
fn persistence_round_trip_is_textually_stable() {
    // save → load → save must be a fixed point: no drift on re-serve.
    let original = trained();
    let text = original.to_text();
    let loaded = EagerRecognizer::from_text(&text).expect("loads");
    assert_eq!(text, loaded.to_text());
}

#[test]
fn routed_service_on_a_loaded_model_matches_the_in_memory_reference() {
    // The exact flow the serve binary uses: persist to disk, read the
    // file back, serve the loaded model — compared against frames from
    // the in-memory recognizer.
    let original = trained();
    let path = std::env::temp_dir().join(format!(
        "grandma-serve-persist-{}.txt",
        std::process::id()
    ));
    std::fs::write(&path, original.to_text()).expect("write model");
    let text = std::fs::read_to_string(&path).expect("read model");
    std::fs::remove_file(&path).ok();
    let loaded = Arc::new(EagerRecognizer::from_text(&text).expect("loads"));

    let router = SessionRouter::new(loaded, ServeConfig::default());
    for (session, events) in streams() {
        let close = events.len() as u32;
        let expected =
            run_events_inproc(&original, session, &PipelineConfig::default(), &events, close);
        let mut client = Duplex::connect(router.clone());
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION,
            })
            .expect("hello");
        client.send(&ClientFrame::Open { session }).expect("open");
        for &(seq, event) in &events {
            client
                .send(&ClientFrame::Event {
                    session,
                    seq,
                    event,
                })
                .expect("event");
        }
        client
            .send(&ClientFrame::Close {
                session,
                seq: close,
            })
            .expect("close");
        let got = client
            .recv_session_until_closed(session, Duration::from_secs(10))
            .expect("frames");
        assert_eq!(
            got, expected,
            "session {session}: served frames diverge from in-memory reference"
        );
    }
    router.shutdown();
}
