//! Wire v2 property test: a session stream sent as `EventBatch` frames
//! must produce *byte-identical* server frames to the same stream sent
//! as single `Event` frames — over both the Duplex and TCP transports,
//! with the deterministic in-process pipeline as the common reference.
//!
//! Batch sizes vary per session (including size-1 batches and batches
//! beyond the single-frame cap, which the encoder splits), and every
//! fourth session replays a `FaultInjector`-corrupted stream so the
//! equivalence covers the repair path too.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_events::{Button, EventScript, InputEvent};
use grandma_serve::{
    encode_client, encode_event_batch, encode_server, run_events_inproc, ClientFrame, Duplex,
    FrameBuffer, OutcomeKind, PipelineConfig, ServeConfig, ServerFrame, SessionRouter, TcpService,
    MAX_BATCH_EVENTS, WIRE_VERSION,
};
use grandma_synth::{datasets, FaultInjector, SynthRng};

const SESSIONS: u64 = 12;

/// Per-session batch size: exercises single-record batches, typical
/// sizes, the exact frame cap, and an over-cap size the encoder must
/// split across frames.
fn batch_size(session: u64) -> usize {
    [1, 3, 17, 64, MAX_BATCH_EVENTS, MAX_BATCH_EVENTS + 44][(session % 6) as usize]
}

fn recognizer() -> Arc<EagerRecognizer> {
    let data = datasets::eight_way(0x2b2b, 10, 0);
    let (rec, _) =
        EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
            .expect("training succeeds");
    Arc::new(rec)
}

fn session_stream(session: u64) -> Vec<(u32, InputEvent)> {
    let data = datasets::eight_way(0x7e57, 0, 8);
    let mut rng = SynthRng::seed_from_u64(0x10AD ^ session.wrapping_mul(0x9E37_79B9));
    let gestures = 2 + (rng.next_u64() % 2) as usize;
    let mut script = EventScript::new();
    for _ in 0..gestures {
        let idx = (rng.next_u64() as usize) % data.testing.len();
        script = script.then_gesture(&data.testing[idx].gesture, Button::Left);
    }
    let mut events = script.into_events();
    if session.is_multiple_of(4) {
        events = FaultInjector::new(0xBAD ^ session).corrupt(&events);
    }
    events
        .into_iter()
        .enumerate()
        .map(|(i, e)| (i as u32, e))
        .collect()
}

fn frames_to_bytes(frames: &[ServerFrame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        encode_server(frame, &mut bytes);
    }
    bytes
}

fn reference_bytes(rec: &EagerRecognizer, streams: &HashMap<u64, Vec<(u32, InputEvent)>>) -> HashMap<u64, Vec<u8>> {
    streams
        .iter()
        .map(|(&session, events)| {
            let frames = run_events_inproc(
                rec,
                session,
                &PipelineConfig::default(),
                events,
                events.len() as u32,
            );
            (session, frames_to_bytes(&frames))
        })
        .collect()
}

fn loose_config() -> ServeConfig {
    ServeConfig {
        shards: 4,
        // Big enough that this test never trips Busy backpressure.
        queue_capacity: 1 << 15,
        ..ServeConfig::default()
    }
}

/// Drives one session over Duplex, batched (`Some(batch)`) or as single
/// events (`None`), and returns its frame bytes.
fn duplex_session_bytes(
    router: &Arc<SessionRouter>,
    session: u64,
    events: &[(u32, InputEvent)],
    batch: Option<usize>,
) -> Vec<u8> {
    let mut client = Duplex::connect(router.clone());
    client
        .send(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .expect("hello");
    client.send(&ClientFrame::Open { session }).expect("open");
    match batch {
        Some(size) => {
            for chunk in events.chunks(size.max(1)) {
                client
                    .send(&ClientFrame::EventBatch {
                        session,
                        events: chunk.to_vec(),
                    })
                    .expect("batch");
            }
        }
        None => {
            for &(seq, event) in events {
                client
                    .send(&ClientFrame::Event {
                        session,
                        seq,
                        event,
                    })
                    .expect("event");
            }
        }
    }
    client
        .send(&ClientFrame::Close {
            session,
            seq: events.len() as u32,
        })
        .expect("close");
    let frames = client
        .recv_session_until_closed(session, Duration::from_secs(30))
        .expect("frames");
    frames_to_bytes(&frames)
}

#[test]
fn batched_duplex_is_byte_identical_to_single_events() {
    let rec = recognizer();
    let streams: HashMap<u64, Vec<(u32, InputEvent)>> =
        (1..=SESSIONS).map(|s| (s, session_stream(s))).collect();
    let expected = reference_bytes(&rec, &streams);

    let router = SessionRouter::new(rec.clone(), loose_config());
    for (&session, events) in &streams {
        let single = duplex_session_bytes(&router, session, events, None);
        assert_eq!(
            single, expected[&session],
            "session {session}: single-event duplex diverges from the in-process reference"
        );
    }
    // Batched sessions reuse ids offset past the single-event ones so
    // both variants run against one router instance; frames are stamped
    // with the session id, so the reference is re-run under the offset
    // id for an apples-to-apples byte comparison.
    for (&session, events) in &streams {
        let batched =
            duplex_session_bytes(&router, session + 1000, events, Some(batch_size(session)));
        let frames = run_events_inproc(
            &rec,
            session + 1000,
            &PipelineConfig::default(),
            events,
            events.len() as u32,
        );
        assert_eq!(
            batched,
            frames_to_bytes(&frames),
            "session {session}: batched duplex diverges (batch size {})",
            batch_size(session)
        );
    }
    router.shutdown();
    assert_eq!(router.metrics().snapshot().busy_rejections, 0);
    let (hits, misses) = router.batch_pool().stats();
    assert!(
        hits > misses,
        "steady-state batches must reuse pooled buffers: {hits} hits / {misses} misses"
    );
}

/// Drives one TCP connection carrying every session, batched or single,
/// and returns per-session frame bytes.
fn tcp_run_bytes(
    addr: std::net::SocketAddr,
    streams: &HashMap<u64, Vec<(u32, InputEvent)>>,
    batched: bool,
) -> HashMap<u64, Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut bytes = Vec::new();
    encode_client(
        &ClientFrame::Hello {
            version: WIRE_VERSION,
        },
        &mut bytes,
    );
    let mut sessions: Vec<u64> = streams.keys().copied().collect();
    sessions.sort_unstable();
    for &session in &sessions {
        encode_client(&ClientFrame::Open { session }, &mut bytes);
        let events = &streams[&session];
        if batched {
            // encode_event_batch splits over-cap chunks across frames
            // itself; feed it the whole stream in session-sized chunks.
            for chunk in events.chunks(batch_size(session).max(1)) {
                encode_event_batch(session, chunk, &mut bytes);
            }
        } else {
            for &(seq, event) in events {
                encode_client(
                    &ClientFrame::Event {
                        session,
                        seq,
                        event,
                    },
                    &mut bytes,
                );
            }
        }
        encode_client(
            &ClientFrame::Close {
                session,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
    }
    stream.write_all(&bytes).expect("write");
    stream.flush().expect("flush");

    let mut fb = FrameBuffer::new();
    let mut per_session: HashMap<u64, Vec<ServerFrame>> =
        sessions.iter().map(|&s| (s, Vec::new())).collect();
    let mut closed = 0usize;
    let mut chunk = [0u8; 16384];
    while closed < sessions.len() {
        let n = match stream.read(&mut chunk) {
            Ok(0) => panic!("server EOF with {closed}/{} closed", sessions.len()),
            Ok(n) => n,
            Err(e) => panic!("read failed with {closed} closed: {e}"),
        };
        fb.extend(&chunk[..n]);
        while let Some(frame) = fb.next_server().expect("valid server stream") {
            let session = match frame {
                ServerFrame::Recognized { session, .. }
                | ServerFrame::Manipulate { session, .. }
                | ServerFrame::Outcome { session, .. }
                | ServerFrame::Fault { session, .. }
                | ServerFrame::Resumed { session, .. }
                | ServerFrame::HandoffAck { session, .. }
                | ServerFrame::NotOwner { session, .. } => session,
            };
            if matches!(
                frame,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Closed,
                    ..
                }
            ) {
                closed += 1;
            }
            per_session
                .get_mut(&session)
                .expect("frame for unknown session")
                .push(frame);
        }
    }
    per_session
        .into_iter()
        .map(|(s, frames)| (s, frames_to_bytes(&frames)))
        .collect()
}

#[test]
fn batched_tcp_is_byte_identical_to_single_events() {
    let rec = recognizer();
    let streams: HashMap<u64, Vec<(u32, InputEvent)>> =
        (1..=SESSIONS).map(|s| (s, session_stream(s))).collect();
    let expected = reference_bytes(&rec, &streams);

    let mut service =
        TcpService::start(SessionRouter::new(rec, loose_config()), "127.0.0.1:0").expect("bind");
    let addr = service.local_addr();

    let single = tcp_run_bytes(addr, &streams, false);
    let batched = tcp_run_bytes(addr, &streams, true);
    for (&session, reference) in &expected {
        assert_eq!(
            &single[&session], reference,
            "session {session}: single-event TCP diverges from the reference"
        );
        assert_eq!(
            &batched[&session], reference,
            "session {session}: batched TCP diverges from the reference"
        );
    }
    service.shutdown();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.busy_rejections, 0, "{snap:?}");
    assert_eq!(snap.decode_errors, 0, "{snap:?}");
    assert!(snap.batches_ingested > 0, "{snap:?}");
}
