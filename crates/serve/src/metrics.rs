//! Service metrics: lock-free counters snapshotted to JSON.
//!
//! One [`ServiceMetrics`] instance is shared (via `Arc`) by the router,
//! every shard worker, and every transport thread. All counters are
//! relaxed atomics — metrics must never contend with the hot path — and
//! [`ServiceMetrics::snapshot`] produces a consistent-enough point-in-time
//! [`MetricsSnapshot`] that serializes itself to JSON with
//! [`MetricsSnapshot::to_json`] (hand-rolled; the serving layer is
//! dependency-free).

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-shard counters.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Messages currently queued to the shard (approximate: incremented
    /// by submitters, decremented by the worker).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_highwater: AtomicU64,
    /// Events this shard processed.
    pub events: AtomicU64,
    /// Mouse-move points this shard ingested.
    pub points: AtomicU64,
    /// Nanoseconds spent inside the pipeline on this shard.
    pub busy_ns: AtomicU64,
}

impl ShardMetrics {
    /// Records a submit: bumps depth and folds it into the high-water
    /// mark.
    pub fn note_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_highwater.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records the worker taking a message off the queue.
    pub fn note_dequeue(&self) {
        // Saturate rather than wrap if an enqueue/dequeue race ever
        // transiently inverts the count.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }
}

/// Counter index for [`ServiceMetrics::outcomes`]: Recognized,
/// Manipulated, Cancelled, Rejected, Closed.
pub const OUTCOME_KINDS: usize = 5;

/// The service-wide counter set.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Sessions opened over the service lifetime.
    pub sessions_opened: AtomicU64,
    /// Sessions closed (client `Close` or connection teardown).
    pub sessions_closed: AtomicU64,
    /// Client `Event` frames accepted into shard queues.
    pub events_ingested: AtomicU64,
    /// Mouse-move points among them.
    pub points_ingested: AtomicU64,
    /// `EventBatch` frames accepted into shard queues (wire v2).
    pub batches_ingested: AtomicU64,
    /// Coalesced socket writes performed by connection writer threads.
    pub writer_flushes: AtomicU64,
    /// Server frames encoded into those writes.
    pub frames_sent: AtomicU64,
    /// Interaction outcomes by kind (see [`OUTCOME_KINDS`]).
    pub outcomes: [AtomicU64; OUTCOME_KINDS],
    /// Sanitizer repairs performed across all sessions.
    pub faults_repaired: AtomicU64,
    /// Frames rejected with `Busy` because a shard queue was full.
    pub busy_rejections: AtomicU64,
    /// Events/closes naming a session no shard holds.
    pub unknown_sessions: AtomicU64,
    /// Connections dropped for undecodable bytes.
    pub decode_errors: AtomicU64,
    /// Gauge: TCP connections currently registered with the reactor
    /// (incremented at accept handoff, decremented at teardown).
    pub open_connections: AtomicU64,
    /// Self-pipe wakeups consumed by reactor I/O threads. Wakes that
    /// arrive while a poll loop is busy coalesce and are not counted.
    pub reactor_wakeups: AtomicU64,
    /// File-descriptor readiness notifications processed by reactor
    /// poll loops (sum of ready entries over all `poll` returns).
    pub readiness_events: AtomicU64,
    /// Which readiness backend the reactor resolved to: 0 = no reactor
    /// started yet, 1 = poll(2), 2 = epoll(7).
    pub reactor_backend: AtomicU64,
    /// `epoll_ctl` syscalls issued by reactor threads (adds, interest
    /// modifies, deletes). Stays 0 on the poll(2) backend, whose
    /// interest set is a userspace map. The ratio of this to
    /// `readiness_events` shows how rare interest transitions are
    /// relative to wakeups.
    pub epoll_ctl_calls: AtomicU64,
    /// Socket writes that accepted fewer bytes than requested; the
    /// remainder stayed queued until the next writable notification.
    pub writes_short: AtomicU64,
    /// Connections deliberately dropped at accept time: over
    /// `max_connections`, fd exhaustion (EMFILE/ENFILE), or a
    /// slow-consumer write queue overrunning its cap.
    pub connections_shed: AtomicU64,
    /// `accept()` failures (including fd exhaustion before shedding).
    pub accept_errors: AtomicU64,
    /// Connections reaped by the idle timeout.
    pub idle_reaped: AtomicU64,
    /// Session `Close`s the shutdown drain gave up retrying against a
    /// saturated shard queue; the router's own shutdown still finalizes
    /// those sessions, but the orderly Close path lost them.
    pub closes_abandoned: AtomicU64,
    /// Sessions rebuilt from WAL compaction snapshots during recovery.
    pub recovered_sessions: AtomicU64,
    /// Successful `Resume`s — orphaned sessions re-bound to a live
    /// connection.
    pub sessions_resumed: AtomicU64,
    /// Sessions accepted from peer nodes via wire v4 `Handoff`.
    pub sessions_handed_off: AtomicU64,
    /// `Open`/`Resume` requests answered with `NotOwner` because the
    /// cluster ring maps the session to another node.
    pub not_owner_redirects: AtomicU64,
    /// Records appended to write-ahead logs across all shards.
    pub wal_appends: AtomicU64,
    /// Bytes those appends wrote (headers included).
    pub wal_bytes: AtomicU64,
    /// Gauge: wall-clock milliseconds the last WAL recovery took
    /// (0 when the process never recovered).
    pub replay_ms: AtomicU64,
    /// Per-shard counters.
    shards: Vec<ShardMetrics>,
}

impl ServiceMetrics {
    /// Creates the counter set for `shards` shard workers.
    pub fn new(shards: usize) -> Self {
        Self {
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            events_ingested: AtomicU64::new(0),
            points_ingested: AtomicU64::new(0),
            batches_ingested: AtomicU64::new(0),
            writer_flushes: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            outcomes: Default::default(),
            faults_repaired: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            unknown_sessions: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            readiness_events: AtomicU64::new(0),
            reactor_backend: AtomicU64::new(0),
            epoll_ctl_calls: AtomicU64::new(0),
            writes_short: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            closes_abandoned: AtomicU64::new(0),
            recovered_sessions: AtomicU64::new(0),
            sessions_resumed: AtomicU64::new(0),
            sessions_handed_off: AtomicU64::new(0),
            not_owner_redirects: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            replay_ms: AtomicU64::new(0),
            shards: (0..shards.max(1)).map(|_| ShardMetrics::default()).collect(),
        }
    }

    /// The per-shard counter block (clamped to a valid index).
    pub fn shard(&self, shard: usize) -> &ShardMetrics {
        let idx = shard % self.shards.len().max(1);
        // The modulo keeps idx in range; fall back to shard 0 defensively.
        self.shards.get(idx).unwrap_or_else(|| &self.shards[0])
    }

    /// Number of shards the metrics were sized for.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records which readiness backend the reactor settled on.
    pub fn set_reactor_backend(&self, backend: crate::sys::Backend) {
        let code = match backend {
            crate::sys::Backend::Poll => 1,
            crate::sys::Backend::Epoll => 2,
        };
        self.reactor_backend.store(code, Ordering::Relaxed);
    }

    /// Records one interaction outcome by wire kind.
    pub fn note_outcome(&self, kind: crate::wire::OutcomeKind) {
        use crate::wire::OutcomeKind as K;
        let idx = match kind {
            K::Recognized => 0,
            K::Manipulated => 1,
            K::Cancelled => 2,
            K::Rejected => 3,
            K::Closed => 4,
        };
        if let Some(counter) = self.outcomes.get(idx) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let opened = load(&self.sessions_opened);
        let closed = load(&self.sessions_closed);
        MetricsSnapshot {
            sessions_opened: opened,
            sessions_closed: closed,
            sessions_active: opened.saturating_sub(closed),
            events_ingested: load(&self.events_ingested),
            points_ingested: load(&self.points_ingested),
            batches_ingested: load(&self.batches_ingested),
            writer_flushes: load(&self.writer_flushes),
            frames_sent: load(&self.frames_sent),
            outcomes_recognized: load(&self.outcomes[0]),
            outcomes_manipulated: load(&self.outcomes[1]),
            outcomes_cancelled: load(&self.outcomes[2]),
            outcomes_rejected: load(&self.outcomes[3]),
            outcomes_closed: load(&self.outcomes[4]),
            faults_repaired: load(&self.faults_repaired),
            busy_rejections: load(&self.busy_rejections),
            unknown_sessions: load(&self.unknown_sessions),
            decode_errors: load(&self.decode_errors),
            open_connections: load(&self.open_connections),
            reactor_wakeups: load(&self.reactor_wakeups),
            readiness_events: load(&self.readiness_events),
            reactor_backend: match load(&self.reactor_backend) {
                1 => "poll",
                2 => "epoll",
                _ => "none",
            },
            epoll_ctl_calls: load(&self.epoll_ctl_calls),
            writes_short: load(&self.writes_short),
            connections_shed: load(&self.connections_shed),
            accept_errors: load(&self.accept_errors),
            idle_reaped: load(&self.idle_reaped),
            closes_abandoned: load(&self.closes_abandoned),
            recovered_sessions: load(&self.recovered_sessions),
            sessions_resumed: load(&self.sessions_resumed),
            sessions_handed_off: load(&self.sessions_handed_off),
            not_owner_redirects: load(&self.not_owner_redirects),
            wal_appends: load(&self.wal_appends),
            wal_bytes: load(&self.wal_bytes),
            replay_ms: load(&self.replay_ms),
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let points = load(&s.points);
                    let ns = load(&s.busy_ns);
                    ShardSnapshot {
                        queue_depth: load(&s.queue_depth),
                        queue_highwater: load(&s.queue_highwater),
                        events: load(&s.events),
                        points,
                        ns_per_point: if points > 0 {
                            ns as f64 / points as f64
                        } else {
                            0.0
                        },
                    }
                })
                .collect(),
        }
    }
}

/// One shard's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Approximate queued messages at snapshot time.
    pub queue_depth: u64,
    /// Deepest the queue has been.
    pub queue_highwater: u64,
    /// Events processed.
    pub events: u64,
    /// Move points ingested.
    pub points: u64,
    /// Mean pipeline nanoseconds per ingested point.
    pub ns_per_point: f64,
}

/// Point-in-time service counters; serializes to JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sessions opened over the service lifetime.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Opened minus closed.
    pub sessions_active: u64,
    /// Events accepted into shard queues.
    pub events_ingested: u64,
    /// Mouse-move points among them.
    pub points_ingested: u64,
    /// `EventBatch` frames accepted into shard queues.
    pub batches_ingested: u64,
    /// Coalesced socket writes by connection writers.
    pub writer_flushes: u64,
    /// Server frames carried by those writes.
    pub frames_sent: u64,
    /// Outcomes by kind.
    pub outcomes_recognized: u64,
    /// Outcomes by kind.
    pub outcomes_manipulated: u64,
    /// Outcomes by kind.
    pub outcomes_cancelled: u64,
    /// Outcomes by kind.
    pub outcomes_rejected: u64,
    /// End-of-session markers emitted.
    pub outcomes_closed: u64,
    /// Sanitizer repairs.
    pub faults_repaired: u64,
    /// Busy rejections.
    pub busy_rejections: u64,
    /// Unknown-session drops.
    pub unknown_sessions: u64,
    /// Connections dropped for undecodable bytes.
    pub decode_errors: u64,
    /// Gauge: connections currently registered with the reactor.
    pub open_connections: u64,
    /// Self-pipe wakeups consumed by reactor poll loops.
    pub reactor_wakeups: u64,
    /// Readiness notifications processed by reactor poll loops.
    pub readiness_events: u64,
    /// Readiness backend the reactor resolved to: `"poll"`, `"epoll"`,
    /// or `"none"` before any reactor started.
    pub reactor_backend: &'static str,
    /// `epoll_ctl` syscalls issued (0 on the poll backend).
    pub epoll_ctl_calls: u64,
    /// Partial socket writes (kernel accepted fewer bytes than asked).
    pub writes_short: u64,
    /// Connections shed at accept (limit, fd exhaustion, slow consumer).
    pub connections_shed: u64,
    /// `accept()` failures.
    pub accept_errors: u64,
    /// Connections reaped by the idle timeout.
    pub idle_reaped: u64,
    /// `Close`s abandoned by the shutdown drain against saturated shards.
    pub closes_abandoned: u64,
    /// Sessions rebuilt from WAL snapshots during recovery.
    pub recovered_sessions: u64,
    /// Successful `Resume`s onto live connections.
    pub sessions_resumed: u64,
    /// Sessions accepted from peer nodes via `Handoff`.
    pub sessions_handed_off: u64,
    /// `Open`/`Resume`s answered with `NotOwner` redirects.
    pub not_owner_redirects: u64,
    /// WAL records appended across all shards.
    pub wal_appends: u64,
    /// Bytes those appends wrote.
    pub wal_bytes: u64,
    /// Milliseconds the last WAL recovery took (0 = never recovered).
    pub replay_ms: u64,
    /// Per-shard snapshots.
    pub shards: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut shards = String::new();
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                shards.push_str(", ");
            }
            shards.push_str(&format!(
                "{{\"queue_depth\": {}, \"queue_highwater\": {}, \"events\": {}, \"points\": {}, \"ns_per_point\": {:.1}}}",
                s.queue_depth, s.queue_highwater, s.events, s.points, s.ns_per_point
            ));
        }
        format!(
            "{{\n  \"sessions_opened\": {},\n  \"sessions_closed\": {},\n  \"sessions_active\": {},\n  \
             \"events_ingested\": {},\n  \"points_ingested\": {},\n  \"batches_ingested\": {},\n  \
             \"writer_flushes\": {},\n  \"frames_sent\": {},\n  \
             \"outcomes\": {{\"recognized\": {}, \"manipulated\": {}, \"cancelled\": {}, \"rejected\": {}, \"closed\": {}}},\n  \
             \"faults_repaired\": {},\n  \"busy_rejections\": {},\n  \"unknown_sessions\": {},\n  \"decode_errors\": {},\n  \
             \"open_connections\": {},\n  \"reactor_wakeups\": {},\n  \"readiness_events\": {},\n  \
             \"reactor_backend\": \"{}\",\n  \"epoll_ctl_calls\": {},\n  \
             \"writes_short\": {},\n  \"connections_shed\": {},\n  \"accept_errors\": {},\n  \"idle_reaped\": {},\n  \
             \"closes_abandoned\": {},\n  \
             \"recovered_sessions\": {},\n  \"sessions_resumed\": {},\n  \
             \"sessions_handed_off\": {},\n  \"not_owner_redirects\": {},\n  \
             \"wal_appends\": {},\n  \"wal_bytes\": {},\n  \"replay_ms\": {},\n  \
             \"shards\": [{}]\n}}",
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_active,
            self.events_ingested,
            self.points_ingested,
            self.batches_ingested,
            self.writer_flushes,
            self.frames_sent,
            self.outcomes_recognized,
            self.outcomes_manipulated,
            self.outcomes_cancelled,
            self.outcomes_rejected,
            self.outcomes_closed,
            self.faults_repaired,
            self.busy_rejections,
            self.unknown_sessions,
            self.decode_errors,
            self.open_connections,
            self.reactor_wakeups,
            self.readiness_events,
            self.reactor_backend,
            self.epoll_ctl_calls,
            self.writes_short,
            self.connections_shed,
            self.accept_errors,
            self.idle_reaped,
            self.closes_abandoned,
            self.recovered_sessions,
            self.sessions_resumed,
            self.sessions_handed_off,
            self.not_owner_redirects,
            self.wal_appends,
            self.wal_bytes,
            self.replay_ms,
            shards
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highwater_tracks_the_deepest_queue() {
        let m = ServiceMetrics::new(2);
        let s = m.shard(0);
        s.note_enqueue();
        s.note_enqueue();
        s.note_enqueue();
        s.note_dequeue();
        s.note_enqueue();
        let snap = m.snapshot();
        assert_eq!(snap.shards[0].queue_depth, 3);
        assert_eq!(snap.shards[0].queue_highwater, 3);
    }

    #[test]
    fn dequeue_saturates_at_zero() {
        let m = ServiceMetrics::new(1);
        m.shard(0).note_dequeue();
        assert_eq!(m.snapshot().shards[0].queue_depth, 0);
    }

    #[test]
    fn snapshot_json_is_valid_enough() {
        let m = ServiceMetrics::new(2);
        m.sessions_opened.fetch_add(3, Ordering::Relaxed);
        m.note_outcome(crate::wire::OutcomeKind::Manipulated);
        let json = m.snapshot().to_json();
        assert!(json.contains("\"sessions_opened\": 3"));
        assert!(json.contains("\"manipulated\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_json_carries_every_reactor_counter_exactly_once() {
        let m = ServiceMetrics::new(1);
        m.open_connections.fetch_add(2, Ordering::Relaxed);
        m.reactor_wakeups.fetch_add(5, Ordering::Relaxed);
        m.readiness_events.fetch_add(7, Ordering::Relaxed);
        m.writes_short.fetch_add(1, Ordering::Relaxed);
        m.connections_shed.fetch_add(3, Ordering::Relaxed);
        m.accept_errors.fetch_add(4, Ordering::Relaxed);
        m.idle_reaped.fetch_add(6, Ordering::Relaxed);
        m.closes_abandoned.fetch_add(8, Ordering::Relaxed);
        m.recovered_sessions.fetch_add(9, Ordering::Relaxed);
        m.sessions_resumed.fetch_add(10, Ordering::Relaxed);
        m.wal_appends.fetch_add(11, Ordering::Relaxed);
        m.wal_bytes.fetch_add(12, Ordering::Relaxed);
        m.replay_ms.store(13, Ordering::Relaxed);
        m.sessions_handed_off.fetch_add(14, Ordering::Relaxed);
        m.not_owner_redirects.fetch_add(15, Ordering::Relaxed);
        m.set_reactor_backend(crate::sys::Backend::Epoll);
        m.epoll_ctl_calls.fetch_add(16, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.open_connections, 2);
        assert_eq!(snap.reactor_wakeups, 5);
        assert_eq!(snap.readiness_events, 7);
        assert_eq!(snap.writes_short, 1);
        assert_eq!(snap.connections_shed, 3);
        assert_eq!(snap.accept_errors, 4);
        assert_eq!(snap.idle_reaped, 6);
        assert_eq!(snap.closes_abandoned, 8);
        assert_eq!(snap.recovered_sessions, 9);
        assert_eq!(snap.sessions_resumed, 10);
        assert_eq!(snap.wal_appends, 11);
        assert_eq!(snap.wal_bytes, 12);
        assert_eq!(snap.replay_ms, 13);
        assert_eq!(snap.sessions_handed_off, 14);
        assert_eq!(snap.not_owner_redirects, 15);
        assert_eq!(snap.reactor_backend, "epoll");
        assert_eq!(snap.epoll_ctl_calls, 16);
        let json = snap.to_json();
        assert_eq!(
            json.matches("\"reactor_backend\": \"epoll\"").count(),
            1,
            "snapshot JSON must carry reactor_backend exactly once:\n{json}"
        );
        for (key, value) in [
            ("open_connections", 2u64),
            ("reactor_wakeups", 5),
            ("readiness_events", 7),
            ("writes_short", 1),
            ("connections_shed", 3),
            ("accept_errors", 4),
            ("idle_reaped", 6),
            ("closes_abandoned", 8),
            ("recovered_sessions", 9),
            ("sessions_resumed", 10),
            ("wal_appends", 11),
            ("wal_bytes", 12),
            ("replay_ms", 13),
            ("sessions_handed_off", 14),
            ("not_owner_redirects", 15),
            ("epoll_ctl_calls", 16),
        ] {
            let needle = format!("\"{key}\": {value}");
            assert_eq!(
                json.matches(&needle).count(),
                1,
                "snapshot JSON must carry {key} exactly once:\n{json}"
            );
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn shard_index_wraps_safely() {
        let m = ServiceMetrics::new(2);
        m.shard(7).note_enqueue(); // 7 % 2 == 1
        assert_eq!(m.snapshot().shards[1].queue_depth, 1);
    }
}
