//! Buffer pooling for the serve fast path.
//!
//! A batched event frame crosses three threads: the connection reader
//! fills a `Vec<(u32, InputEvent)>` from the borrowed
//! [`crate::wire::EventBatchView`], the shard worker drains it through
//! the session pipeline, and the buffer then needs to get back to *some*
//! reader for the next batch. [`BatchPool`] closes that loop: a small
//! mutex-guarded free list of cleared buffers shared by every reader and
//! shard worker on a router, so the steady state recycles a handful of
//! allocations instead of making one per frame.
//!
//! The pool is deliberately tiny and boring: an uncontended `Mutex` around
//! a `Vec` costs a few tens of nanoseconds per take/put — noise next to
//! the syscall and channel hops it sits between — and a bounded free list
//! means a burst can grow the working set but an idle service gives the
//! memory back. Hit/miss counters are exposed so the load generator can
//! report steady-state allocation behavior instead of asserting it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use grandma_events::InputEvent;

/// How many idle buffers the pool keeps before dropping returns on the
/// floor. Sized for a few connections' worth of in-flight batches.
const MAX_IDLE: usize = 64;

/// Initial capacity of a fresh pool buffer — one full wire batch.
const FRESH_CAPACITY: usize = crate::wire::MAX_BATCH_EVENTS;

/// A shared free list of `(seq, event)` batch buffers. One pool is owned
/// by the [`crate::SessionRouter`] and shared (via `Arc`) across every
/// transport reader and shard worker attached to it.
#[derive(Debug, Default)]
pub struct BatchPool {
    idle: Mutex<Vec<Vec<(u32, InputEvent)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BatchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer, reusing an idle one when available.
    pub fn take(&self) -> Vec<(u32, InputEvent)> {
        // lint:try-bounded start — the critical section is one Vec::pop;
        // every holder of this mutex does O(1) work, so contention cannot
        // stall a reactor path beyond a pointer swap.
        let recycled = match self.idle.lock() {
            Ok(mut idle) => idle.pop(),
            Err(poisoned) => poisoned.into_inner().pop(),
        };
        // lint:try-bounded end
        match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(FRESH_CAPACITY)
            }
        }
    }

    /// Returns a buffer to the pool (cleared here, so callers cannot leak
    /// stale events into the next batch). Buffers beyond the idle cap are
    /// simply dropped.
    pub fn put(&self, mut buf: Vec<(u32, InputEvent)>) {
        buf.clear();
        // lint:try-bounded start — bounded-length check plus one Vec::push
        // under the lock; same O(1) discipline as `take`.
        let mut idle = match self.idle.lock() {
            Ok(idle) => idle,
            Err(poisoned) => poisoned.into_inner(),
        };
        if idle.len() < MAX_IDLE {
            idle.push(buf);
        }
        // lint:try-bounded end
    }

    /// Takes a buffer recycled from the pool (`hits`) vs freshly
    /// allocated (`misses`). Steady state should be all hits.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Buffers currently idle in the pool.
    pub fn idle_len(&self) -> usize {
        match self.idle.lock() {
            Ok(idle) => idle.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grandma_events::EventKind;

    #[test]
    fn buffers_are_recycled_and_cleared() {
        let pool = BatchPool::new();
        let mut buf = pool.take();
        buf.push((1, InputEvent::new(EventKind::MouseMove, 1.0, 2.0, 3.0)));
        let ptr = buf.as_ptr();
        pool.put(buf);
        let again = pool.take();
        assert!(again.is_empty(), "recycled buffers must come back empty");
        assert_eq!(again.as_ptr(), ptr, "same allocation must be reused");
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn idle_list_is_bounded() {
        let pool = BatchPool::new();
        for _ in 0..(MAX_IDLE + 10) {
            pool.put(Vec::new());
        }
        assert_eq!(pool.idle_len(), MAX_IDLE);
    }

    #[test]
    fn take_from_empty_pool_allocates_capacity() {
        let pool = BatchPool::new();
        let buf = pool.take();
        assert!(buf.capacity() >= FRESH_CAPACITY);
        assert_eq!(pool.stats(), (0, 1));
    }
}
