// `deny`, not `forbid`: the reactor's audited syscall boundary — the
// `sys` module tree (`sys/mod.rs`, `sys/epoll.rs`, `sys/rlimit.rs`) —
// opts back in with a module-level allow; everywhere else in the crate
// `unsafe` stays a hard error, and grandma-lint's `unsafe-code` rule
// holds the inventory to exactly those files (the safe `sys/poller.rs`
// abstraction is deliberately outside it).
#![deny(unsafe_code)]
//! Sharded multi-session gesture recognition service.
//!
//! GRANDMA was a single-user toolkit; this crate (DESIGN.md §11) turns
//! the recognition pipeline into a small network service without taking
//! on a single dependency: a versioned length-prefixed binary protocol
//! ([`wire`]), a per-session sanitize→classify→outcome pipeline
//! ([`SessionPipeline`]) mirroring the toolkit's interaction state
//! machine, a [`SessionRouter`] that shards sessions across a fixed pool
//! of worker threads with bounded queues and `Busy` backpressure, two
//! transports — the in-process [`Duplex`] for deterministic tests and a
//! `std::net` [`TcpService`] — and lock-free [`ServiceMetrics`]
//! snapshotted to JSON.
//!
//! Wire v2 adds the serve fast path: `EventBatch` frames carry many
//! events per syscall, decoded zero-copy via [`ClientFrameView`], routed
//! across the shard queue as one message, and drained through pooled
//! buffers ([`BatchPool`]) so the steady state allocates nothing per
//! frame. v1 single-`Event` clients still round-trip unchanged
//! ([`MIN_WIRE_VERSION`]).
//!
//! Wire v4 adds the cluster layer (DESIGN.md §15): an ownership fence
//! ([`SessionFence`]) answers `Open`/`Resume` for foreign sessions with
//! `NotOwner { owner }`, `Handoff` frames move serialized
//! [`SessionSnapshot`]s between nodes (acked with `HandoffAck`), and
//! [`ClusterClient`] routes a session to its consistent-hash ring owner
//! via the `grandma-cluster` discovery file, following redirects and
//! membership changes without losing or duplicating events.
//!
//! Determinism contract: a session's server-frame sequence is a pure
//! function of its event stream and the recognizer, regardless of
//! transport, shard count, or how other sessions interleave. The
//! loopback integration test holds the TCP service to byte-identical
//! outcomes against [`run_events_inproc`].
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
//! use grandma_serve::{Duplex, ClientFrame, ServeConfig, SessionRouter, WIRE_VERSION};
//! use grandma_synth::datasets;
//!
//! let data = datasets::eight_way(7, 6, 0);
//! let (rec, _) = EagerRecognizer::train(
//!     &data.training, &FeatureMask::all(), &EagerConfig::default()).unwrap();
//! let router = SessionRouter::new(Arc::new(rec), ServeConfig::default());
//! let mut client = Duplex::connect(router.clone());
//! client.send(&ClientFrame::Hello { version: WIRE_VERSION }).unwrap();
//! client.send(&ClientFrame::Open { session: 1 }).unwrap();
//! client.send(&ClientFrame::Close { session: 1, seq: 0 }).unwrap();
//! let frames = client
//!     .recv_session_until_closed(1, std::time::Duration::from_secs(5))
//!     .unwrap();
//! assert!(!frames.is_empty());
//! router.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster_client;
pub mod duplex;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod session;
pub mod sys;
pub mod tcp;
pub mod wal;
pub mod wire;

pub use client::{ClientError, ReconnectingClient, RetryPolicy};
pub use cluster_client::{ClusterClient, ClusterError, MAX_ROUTE_HOPS};
pub use duplex::{Duplex, DuplexError};
pub use metrics::{MetricsSnapshot, ServiceMetrics, ShardSnapshot};
pub use pool::BatchPool;
pub use router::{
    RecoveryReport, ReplyBridge, ReplyTx, ServeConfig, SessionFence, SessionRouter, ShardMsg,
    SubmitError,
};
pub use session::{
    run_events_inproc, PipelineConfig, SessionPipeline, SessionSnapshot, SnapshotError,
    SnapshotPhase, OUTCOME_KIND_COUNT,
};
pub use tcp::{PollBackend, TcpOptions, TcpService};
pub use wal::{FsyncPolicy, WalConfig, WalDirLock, WAL_LOCK_FILE};
pub use wire::{
    decode_client, decode_client_view, decode_server, encode_client, encode_event_batch,
    encode_server, ClientFrame, ClientFrameView, EventBatchIter, EventBatchView, FaultCode,
    FrameBuffer, OutcomeKind, ServerFrame, WireError, EVENT_RECORD_LEN, MAX_BATCH_EVENTS,
    MAX_BATCH_FRAME_LEN, MAX_FRAME_LEN, MAX_HANDOFF_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
