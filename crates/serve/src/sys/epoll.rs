//! Hand-declared `epoll(7)` bindings: the kernel-maintained interest
//! set behind the reactor's [`super::Poller`] epoll backend.
//!
//! Level-triggered on purpose — the reactor's connection state machine
//! was written against `poll(2)` semantics (a readable fd re-reports
//! until drained), and the epoll backend must preserve them exactly so
//! the two backends stay behaviorally interchangeable. The win over
//! `poll(2)` is not edge triggering; it is that the interest set lives
//! in the kernel, so each wakeup costs O(ready) instead of O(open)
//! (DESIGN.md §13).
//!
//! Everything exported is safe; each unsafe block carries its own
//! SAFETY note and grandma-lint inventories this file under the
//! `unsafe-code` rule.

use std::io;

use super::{RawFd, Ready, POLLERR, POLLHUP, POLLIN, POLLOUT};

/// Readiness bits in the kernel's epoll encoding. The low bits happen
/// to coincide with the `poll(2)` constants, but the translation below
/// is written out so neither side silently depends on that.
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

/// `epoll_create1` flag: close-on-exec, same value as `O_CLOEXEC`.
const EPOLL_CLOEXEC: i32 = 0o2000000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Mirrors the kernel's `struct epoll_event`, whose layout is
/// arch-dependent: x86-64 alone declares it packed (12 bytes: `u32`
/// events + `u64` data with no padding), while every other Linux arch
/// (aarch64, riscv64, ...) uses natural alignment (16 bytes, `data` at
/// offset 8). Getting this wrong is a heap buffer overflow — the kernel
/// writes `maxevents` entries at *its* stride into a buffer we
/// allocated at ours — so the repr is selected per-arch. Fields are
/// only ever copied out by value — taking a reference into a packed
/// struct is UB and never happens here.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// Pin the stride to the kernel's at compile time: 12 bytes packed on
// x86-64, 16 bytes naturally aligned everywhere else.
const _: () = assert!(
    std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 }
);

// Hand-declared libc entry points (the workspace is dependency-free by
// policy). Signatures match the Linux ABI; the event-struct layout they
// depend on is selected per-arch above.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// How many ready entries one `epoll_wait` call can return. Level
/// triggering makes the cap harmless: anything still ready beyond it is
/// re-reported by the next call.
const WAIT_CAP: usize = 1024;

/// Translates a `poll(2)` interest mask (`POLLIN`/`POLLOUT`) into epoll
/// event bits.
fn interest_to_epoll(interest: i16) -> u32 {
    let mut ev = 0u32;
    if interest & POLLIN != 0 {
        ev |= EPOLLIN;
    }
    if interest & POLLOUT != 0 {
        ev |= EPOLLOUT;
    }
    ev
}

/// Translates reported epoll bits back into `poll(2)` result flags, the
/// reactor's lingua franca.
fn epoll_to_flags(events: u32) -> i16 {
    let mut flags = 0i16;
    if events & EPOLLIN != 0 {
        flags |= POLLIN;
    }
    if events & EPOLLOUT != 0 {
        flags |= POLLOUT;
    }
    if events & EPOLLERR != 0 {
        flags |= POLLERR;
    }
    if events & EPOLLHUP != 0 {
        flags |= POLLHUP;
    }
    flags
}

/// An owned epoll instance: registered fds carry a caller token in
/// `epoll_event.data`, and [`EpollSet::wait`] reports readiness as
/// [`Ready`] entries keyed by that token. Counts every `epoll_ctl`
/// issued so the reactor can surface interest-set churn as a metric.
pub struct EpollSet {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
    ctl_calls: u64,
}

impl EpollSet {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: `epoll_create1` takes a flags word and returns a new
        // fd or -1; no memory is exchanged.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_CAP],
            ctl_calls: 0,
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, interest: i16, token: u64) -> io::Result<()> {
        self.ctl_calls += 1;
        let mut ev = EpollEvent {
            events: interest_to_epoll(interest),
            data: token,
        };
        // SAFETY: `ev` is a live, exclusively owned stack value with
        // the kernel's expected (packed) layout; the kernel only reads
        // it (and ignores the pointer entirely for EPOLL_CTL_DEL).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` to the interest set, watching `interest`
    /// (`POLLIN`/`POLLOUT`) and tagging events with `token`.
    pub fn add(&mut self, fd: RawFd, interest: i16, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Rewrites `fd`'s interest mask in place.
    pub fn modify(&mut self, fd: RawFd, interest: i16, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Removes `fd` from the interest set.
    pub fn del(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until something is ready or `timeout_ms` elapses (`<0` =
    /// forever, `0` = poll), appending [`Ready`] entries to `out` and
    /// returning how many. `EINTR` is retried with the full timeout,
    /// matching [`super::poll_fds`].
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Ready>) -> io::Result<usize> {
        let n = loop {
            // SAFETY: `buf` is a live Vec of `WAIT_CAP` kernel-layout
            // entries; `maxevents` is its exact length, so the kernel
            // never writes past it.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        };
        for ev in self.buf.iter().take(n) {
            // Copy packed fields out by value; never by reference.
            let (events, data) = (ev.events, ev.data);
            out.push(Ready {
                token: data,
                flags: epoll_to_flags(events),
            });
        }
        Ok(n)
    }

    /// Total `epoll_ctl` syscalls issued since creation (add + modify +
    /// del). The reactor diffs this into its `epoll_ctl_calls` counter.
    pub fn ctl_calls(&self) -> u64 {
        self.ctl_calls
    }
}

impl Drop for EpollSet {
    fn drop(&mut self) {
        // SAFETY: the epoll fd is closed exactly once; it is private to
        // this struct so nothing can use it afterwards.
        unsafe {
            let _ = close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Waker;
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_times_out_on_a_quiet_fd() {
        let waker = Waker::new().expect("pipe");
        let mut set = EpollSet::new().expect("epoll");
        set.add(waker.fd(), POLLIN, 7).expect("add");
        let mut out = Vec::new();
        let start = Instant::now();
        let n = set.wait(50, &mut out).expect("wait");
        assert_eq!(n, 0);
        assert!(out.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn readiness_carries_the_registered_token() {
        let waker = Waker::new().expect("pipe");
        let mut set = EpollSet::new().expect("epoll");
        set.add(waker.fd(), POLLIN, 42).expect("add");
        waker.arm();
        assert!(waker.wake());
        let mut out = Vec::new();
        let n = set.wait(1_000, &mut out).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable());
        assert_eq!(set.ctl_calls(), 1);
    }

    #[test]
    fn del_removes_the_fd_from_the_interest_set() {
        let waker = Waker::new().expect("pipe");
        let mut set = EpollSet::new().expect("epoll");
        set.add(waker.fd(), POLLIN, 1).expect("add");
        waker.arm();
        waker.wake();
        set.del(waker.fd()).expect("del");
        let mut out = Vec::new();
        let n = set.wait(0, &mut out).expect("wait");
        assert_eq!(n, 0, "deleted fd must not report");
        assert_eq!(set.ctl_calls(), 2);
    }
}
