//! The audited syscall boundary for the reactor transport.
//!
//! This module tree is the **only** place in the workspace (outside the
//! two bench counting allocators) that contains `unsafe`: hand-declared
//! bindings for `poll(2)` (here), `epoll(7)` ([`epoll`]),
//! `setrlimit(2)` ([`rlimit`]), and a self-pipe waker, kept
//! dependency-free because the workspace links no external crates.
//! Everything exported is a safe API; grandma-lint inventories exactly
//! these files under the `unsafe-code` rule and the crate root holds
//! `#![deny(unsafe_code)]` so any `unsafe` that leaks outside this
//! module tree is a build error. [`poller`] holds the safe [`Poller`]
//! abstraction over both readiness backends and is deliberately *not*
//! in the inventory — it contains no `unsafe`.
//!
//! Audit notes, one per unsafe block in this file (submodules carry
//! their own):
//!
//! * `poll` — passes a pointer/length pair derived from a live
//!   `&mut [PollFd]`; `PollFd` is `#[repr(C)]` and layout-identical to
//!   `struct pollfd`, so the kernel writes `revents` in place and never
//!   beyond `fds.len()` entries.
//! * `pipe2` — writes exactly two `i32`s into a stack array we own.
//! * `read`/`write` on the pipe — buffer pointers come from live stack
//!   arrays with the matching length; both fds are owned by the `Waker`
//!   until `Drop` closes them.
//! * `close` — called once per fd from `Drop`; the fds are private so
//!   no safe code can observe them after.
//!
//! The waker uses the classic self-pipe pattern with an armed flag so
//! that back-to-back wakes while the poller is busy collapse into one
//! pipe write: [`Waker::wake`] only writes when the poll thread has
//! declared (via [`Waker::arm`]) that it may be about to block.
#![allow(unsafe_code)]

#[cfg(target_os = "linux")]
pub mod epoll;
pub mod poller;
pub mod rlimit;

pub use poller::{Backend, Poller, Ready};
pub use rlimit::{ensure_nofile_limit, raise_nofile_limit};

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// Raw file descriptor. Mirrors `std::os::fd::RawFd` without pulling
/// the unix-only prelude into every signature.
pub type RawFd = i32;

/// Event flag: readable.
pub const POLLIN: i16 = 0x001;
/// Event flag: writable.
pub const POLLOUT: i16 = 0x004;
/// Result flag: error condition.
pub const POLLERR: i16 = 0x008;
/// Result flag: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Result flag: fd not open (registration bug or racing close).
pub const POLLNVAL: i16 = 0x020;

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// One entry in a poll set. `#[repr(C)]` so a `&mut [PollFd]` can be
/// handed to the kernel as a `struct pollfd` array verbatim.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// A poll entry watching `fd` for `events` (`POLLIN` / `POLLOUT`).
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// The watched descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// True when the kernel reported any readiness or error condition.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// Readable — includes `POLLERR`/`POLLHUP` so a dead socket is
    /// handled through the read path (where it reports EOF/error).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable and not simultaneously dead.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }
}

// Hand-declared libc entry points: the workspace is dependency-free by
// policy, so these syscall wrappers are written out instead of linking
// the `libc` crate. Signatures match the x86-64 Linux ABI.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses.
///
/// `timeout_ms < 0` blocks indefinitely; `0` polls without blocking.
/// Returns the number of entries with non-zero `revents`. `EINTR` is
/// retried transparently (with the full timeout — callers here treat
/// timeouts as hints, not deadlines).
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel reads/writes
        // at most `fds.len()` entries.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Cross-thread wakeup for a poll loop: a nonblocking self-pipe whose
/// read end sits in the poll set, plus an armed flag so redundant wakes
/// skip the syscall entirely.
///
/// Protocol: the poll thread calls [`Waker::arm`] *before* its final
/// check of the work queues and blocks in [`poll_fds`]; producers
/// enqueue work and then call [`Waker::wake`]. Either the producer's
/// write lands before the poller blocks (poll returns immediately with
/// the pipe readable) or the poller's post-arm queue check sees the
/// work. Wakes while the poller is not armed are free.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
    armed: AtomicBool,
}

impl Waker {
    /// Creates the pipe pair (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        // SAFETY: `pipe2` writes exactly two fds into the array we own.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            read_fd: fds[0],
            write_fd: fds[1],
            armed: AtomicBool::new(false),
        })
    }

    /// The read end, for registering in the poll set with `POLLIN`.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// Declares that the poll thread may be about to block. Must be
    /// followed by a re-check of the work queues before blocking.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Notifies the poll thread. Returns `true` when a pipe write was
    /// actually issued (the poller was armed), `false` when the wake
    /// coalesced with a previous one or the poller was busy anyway.
    pub fn wake(&self) -> bool {
        if !self.armed.swap(false, Ordering::SeqCst) {
            return false;
        }
        let byte = [1u8];
        // SAFETY: the buffer is a live 1-byte stack array; `write_fd`
        // is owned by `self` and open until Drop. A full pipe (EAGAIN)
        // is fine: a wake byte is already pending.
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
        true
    }

    /// Drains any pending wake bytes; called by the poll thread after
    /// `poll` returns with the pipe readable.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::SeqCst);
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: buffer is a live stack array of the stated
            // length; `read_fd` is owned by `self` and open until Drop.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                // 0 = impossible for an open pipe write end we hold;
                // <0 = EAGAIN (drained) or a transient signal — either
                // way there is nothing more to read right now.
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: each fd is closed exactly once; both are private to
        // this struct so nothing can use them afterwards.
        unsafe {
            let _ = close(self.read_fd);
            let _ = close(self.write_fd);
        }
    }
}

/// `SIGINT` (ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill).
pub const SIGTERM: i32 = 15;

/// The write end of the process-wide signal self-pipe, or -1 before
/// [`SignalPipe::install`]. An atomic because the handler reads it from
/// signal context.
static SIGNAL_WRITE_FD: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(-1);
/// The last signal delivered, for polling without the pipe.
static SIGNAL_SEEN: std::sync::atomic::AtomicI32 = std::sync::atomic::AtomicI32::new(0);

/// The actual handler. Restricted to async-signal-safe work: two atomic
/// ops and one `write(2)` on a nonblocking pipe.
extern "C" fn on_signal(signo: i32) {
    SIGNAL_SEEN.store(signo, Ordering::SeqCst);
    let fd = SIGNAL_WRITE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = [signo as u8];
        // SAFETY: 1-byte live stack buffer; the fd stays open for the
        // process lifetime once installed (SignalPipe never closes it
        // while handlers are registered). EAGAIN on a full pipe is fine
        // — a wake byte is already pending.
        let _ = unsafe { write(fd, byte.as_ptr(), 1) };
    }
}

/// Termination signals (`SIGINT`/`SIGTERM`) turned into a pollable fd —
/// the classic self-pipe trick, so a poll loop (or a blocking wait) can
/// treat "please shut down" as just another readable descriptor.
///
/// [`SignalPipe::install`] is process-global and idempotent-hostile by
/// nature (the second install would steal the first one's handlers), so
/// the serve binary installs exactly one at startup. Dropping the pipe
/// restores the default dispositions and closes the fds.
pub struct SignalPipe {
    read_fd: RawFd,
}

impl SignalPipe {
    /// Creates the pipe and registers `SIGINT`/`SIGTERM` handlers that
    /// write to it.
    pub fn install() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        // SAFETY: `pipe2` writes exactly two fds into the array we own.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        SIGNAL_WRITE_FD.store(fds[1], Ordering::SeqCst);
        const SIG_ERR: usize = usize::MAX;
        for signo in [SIGINT, SIGTERM] {
            // SAFETY: `on_signal` is an `extern "C" fn(i32)` doing only
            // async-signal-safe work; glibc's `signal` gives BSD
            // semantics (no handler reset, SA_RESTART), which is what
            // the self-pipe pattern wants.
            if unsafe { signal(signo, on_signal as *const () as usize) } == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(Self { read_fd: fds[0] })
    }

    /// The read end, for registering in a poll set with `POLLIN`.
    pub fn fd(&self) -> RawFd {
        self.read_fd
    }

    /// The signal received so far, if any, without blocking.
    pub fn triggered(&self) -> Option<i32> {
        match SIGNAL_SEEN.load(Ordering::SeqCst) {
            0 => None,
            signo => Some(signo),
        }
    }

    /// Blocks up to `timeout_ms` (`<0` = forever) for a signal; returns
    /// it, or `None` on timeout. Drains the pipe so a later wait blocks
    /// again.
    pub fn wait(&self, timeout_ms: i32) -> io::Result<Option<i32>> {
        if let Some(signo) = self.triggered() {
            self.drain();
            return Ok(Some(signo));
        }
        let mut fds = [PollFd::new(self.read_fd, POLLIN)];
        poll_fds(&mut fds, timeout_ms)?;
        if fds[0].readable() {
            self.drain();
        }
        Ok(self.triggered())
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: live stack buffer of the stated length; the read
            // end is owned by `self` and open until Drop.
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for SignalPipe {
    fn drop(&mut self) {
        const SIG_DFL: usize = 0;
        // SAFETY: restoring the default disposition detaches the
        // handler before its pipe goes away.
        unsafe {
            let _ = signal(SIGINT, SIG_DFL);
            let _ = signal(SIGTERM, SIG_DFL);
        }
        let write_fd = SIGNAL_WRITE_FD.swap(-1, Ordering::SeqCst);
        // SAFETY: fds closed exactly once; the handler can no longer
        // observe `write_fd` (swapped to -1 first, handlers detached).
        unsafe {
            let _ = close(self.read_fd);
            if write_fd >= 0 {
                let _ = close(write_fd);
            }
        }
    }
}

/// Sends `signo` to the calling process — test hook for the signal
/// path.
pub fn raise_signal(signo: i32) {
    // SAFETY: `raise` has no memory effects visible to us.
    let _ = unsafe { raise(signo) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_on_quiet_fd() {
        let waker = Waker::new().expect("pipe");
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, 50).expect("poll");
        assert_eq!(n, 0, "no readiness expected");
        assert!(!fds[0].ready());
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn wake_makes_pipe_readable_and_drain_clears_it() {
        let waker = Waker::new().expect("pipe");
        waker.arm();
        assert!(waker.wake(), "armed waker must write");
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        waker.drain();
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let n = poll_fds(&mut fds, 0).expect("poll");
        assert_eq!(n, 0, "drained pipe must be quiet");
    }

    #[test]
    fn unarmed_wakes_coalesce() {
        let waker = Waker::new().expect("pipe");
        assert!(!waker.wake(), "unarmed wake must skip the syscall");
        waker.arm();
        assert!(waker.wake());
        assert!(!waker.wake(), "second wake coalesces");
    }

    #[test]
    fn signal_pipe_reports_sigterm_via_fd_and_flag() {
        let pipe = SignalPipe::install().expect("install");
        assert_eq!(pipe.triggered(), None, "no signal yet");
        raise_signal(SIGTERM);
        let got = pipe.wait(2_000).expect("wait");
        assert_eq!(got, Some(SIGTERM));
        assert_eq!(pipe.triggered(), Some(SIGTERM), "flag latches");
    }

    #[test]
    fn wake_unblocks_a_sleeping_poller() {
        let waker = Arc::new(Waker::new().expect("pipe"));
        let poller = waker.clone();
        let handle = std::thread::spawn(move || {
            poller.arm();
            let mut fds = [PollFd::new(poller.fd(), POLLIN)];
            let n = poll_fds(&mut fds, 5_000).expect("poll");
            poller.drain();
            n
        });
        std::thread::sleep(Duration::from_millis(30));
        waker.arm();
        waker.wake();
        let n = handle.join().expect("join");
        assert_eq!(n, 1, "poller must be woken by the pipe");
    }
}
