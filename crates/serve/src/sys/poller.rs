//! Safe readiness-backend abstraction over `poll(2)` and `epoll(7)`.
//!
//! The reactor speaks only this API: register a token + fd + interest
//! mask once, adjust the mask on transitions, and walk the ready set
//! each wakeup. The two backends differ in where the interest set
//! lives:
//!
//! * [`Backend::Poll`] keeps it in userspace and rebuilds a `pollfd`
//!   array for **every** wait — O(open connections) per wakeup, but
//!   portable and zero setup cost. This is the pre-epoll reactor
//!   behavior, preserved byte-for-byte.
//! * [`Backend::Epoll`] keeps it in the kernel via
//!   [`super::epoll::EpollSet`] — registration costs one syscall per
//!   *transition*, and each wakeup costs O(ready).
//!
//! Both backends are level-triggered and both report error conditions
//! (`POLLERR`/`POLLHUP`) regardless of the requested mask, so the
//! reactor's teardown logic is backend-agnostic. This file contains no
//! direct syscall bindings and is deliberately absent from
//! grandma-lint's audit inventory.

use std::collections::HashMap;
use std::io;

use super::{poll_fds, PollFd, RawFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

/// One readiness report: the token the fd was registered under plus the
/// reported `poll(2)`-style result flags.
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// Caller-chosen registration token (the reactor uses conn ids,
    /// with token 0 reserved for the waker pipe).
    pub token: u64,
    /// Result flags in `poll(2)` encoding (`POLLIN`/`POLLOUT`/
    /// `POLLERR`/`POLLHUP`/`POLLNVAL`).
    pub flags: i16,
}

impl Ready {
    /// Readable — includes error conditions so a dead socket is handled
    /// through the read path, mirroring [`PollFd::readable`].
    pub fn readable(&self) -> bool {
        self.flags & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable.
    pub fn writable(&self) -> bool {
        self.flags & POLLOUT != 0
    }
}

/// Which readiness syscall family backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `poll(2)`: rebuild-and-scan, O(open) per wakeup, portable.
    Poll,
    /// `epoll(7)`: kernel interest set, O(ready) per wakeup, Linux.
    Epoll,
}

impl Backend {
    /// Stable lowercase name, used in metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Poll => "poll",
            Backend::Epoll => "epoll",
        }
    }
}

enum Imp {
    Poll {
        /// token → (fd, interest). Rebuilt into `fds`/`tokens` on every
        /// wait — the O(open) cost this abstraction exists to expose.
        interest: HashMap<u64, (RawFd, i16)>,
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    },
    #[cfg(target_os = "linux")]
    Epoll {
        set: super::epoll::EpollSet,
        /// `epoll_ctl` total already handed out via
        /// [`Poller::take_ctl_calls`].
        reported: u64,
    },
}

/// A readiness poller with a uniform register/modify/deregister/wait
/// surface over both backends.
pub struct Poller {
    imp: Imp,
}

impl Poller {
    /// Creates a poller on the requested backend. [`Backend::Epoll`] on
    /// a non-Linux target returns `Unsupported` so callers can fall
    /// back explicitly.
    pub fn new(backend: Backend) -> io::Result<Self> {
        match backend {
            Backend::Poll => Ok(Self {
                imp: Imp::Poll {
                    interest: HashMap::new(),
                    fds: Vec::new(),
                    tokens: Vec::new(),
                },
            }),
            #[cfg(target_os = "linux")]
            Backend::Epoll => Ok(Self {
                imp: Imp::Epoll {
                    set: super::epoll::EpollSet::new()?,
                    reported: 0,
                },
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.imp {
            Imp::Poll { .. } => Backend::Poll,
            #[cfg(target_os = "linux")]
            Imp::Epoll { .. } => Backend::Epoll,
        }
    }

    /// Starts watching `fd` under `token` for `interest`
    /// (`POLLIN`/`POLLOUT` bits; error conditions are always reported).
    /// Each token must be registered at most once at a time.
    pub fn register(&mut self, token: u64, fd: RawFd, interest: i16) -> io::Result<()> {
        match &mut self.imp {
            Imp::Poll {
                interest: map, ..
            } => {
                map.insert(token, (fd, interest));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Imp::Epoll { set, .. } => set.add(fd, interest, token),
        }
    }

    /// Replaces the interest mask for an already-registered token. The
    /// reactor calls this only on actual transitions, so on epoll the
    /// `epoll_ctl(MOD)` count equals the transition count.
    pub fn modify(&mut self, token: u64, fd: RawFd, interest: i16) -> io::Result<()> {
        match &mut self.imp {
            Imp::Poll {
                interest: map, ..
            } => {
                map.insert(token, (fd, interest));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Imp::Epoll { set, .. } => set.modify(fd, interest, token),
        }
    }

    /// Stops watching a token. Must be called *before* the fd is closed
    /// (a closed fd is auto-removed from an epoll set, but deregistering
    /// first keeps both backends on one discipline and avoids stale
    /// entries when an fd number is recycled).
    pub fn deregister(&mut self, token: u64, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            Imp::Poll {
                interest: map, ..
            } => {
                map.remove(&token);
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Imp::Epoll { set, .. } => set.del(fd),
        }
    }

    /// Blocks until readiness or `timeout_ms` (`<0` = forever, `0` =
    /// non-blocking check). Clears `out` and fills it with one
    /// [`Ready`] per fd that reported; returns the count. `EINTR` is
    /// retried transparently on both backends.
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Ready>) -> io::Result<usize> {
        out.clear();
        match &mut self.imp {
            Imp::Poll {
                interest: map,
                fds,
                tokens,
            } => {
                fds.clear();
                tokens.clear();
                for (&token, &(fd, interest)) in map.iter() {
                    fds.push(PollFd::new(fd, interest));
                    tokens.push(token);
                }
                let n = poll_fds(fds, timeout_ms)?;
                if n > 0 {
                    for (i, pfd) in fds.iter().enumerate() {
                        if pfd.ready() {
                            out.push(Ready {
                                token: tokens[i],
                                flags: pfd.revents,
                            });
                        }
                    }
                }
                Ok(out.len())
            }
            #[cfg(target_os = "linux")]
            Imp::Epoll { set, .. } => set.wait(timeout_ms, out),
        }
    }

    /// Drains the interest-churn counter: `epoll_ctl` syscalls issued
    /// since the previous call (always 0 on the poll backend, where
    /// registration is a map write). The reactor flushes this into the
    /// `epoll_ctl_calls` metric once per loop iteration.
    pub fn take_ctl_calls(&mut self) -> u64 {
        match &mut self.imp {
            Imp::Poll { .. } => 0,
            #[cfg(target_os = "linux")]
            Imp::Epoll { set, reported } => {
                let total = set.ctl_calls();
                let delta = total - *reported;
                *reported = total;
                delta
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Waker;
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn backends() -> Vec<Backend> {
        let mut v = vec![Backend::Poll];
        if cfg!(target_os = "linux") {
            v.push(Backend::Epoll);
        }
        v
    }

    #[test]
    fn wait_times_out_on_a_quiet_fd_on_both_backends() {
        for backend in backends() {
            let waker = Waker::new().expect("pipe");
            let mut poller = Poller::new(backend).expect("poller");
            assert_eq!(poller.backend(), backend);
            poller.register(1, waker.fd(), POLLIN).expect("register");
            let mut out = Vec::new();
            let start = Instant::now();
            let n = poller.wait(50, &mut out).expect("wait");
            assert_eq!(n, 0, "{}: no readiness expected", backend.name());
            assert!(start.elapsed() >= Duration::from_millis(40));
        }
    }

    #[test]
    fn waker_arm_before_drain_protocol_holds_under_both_backends() {
        // The lost-wakeup protocol: wake() after arm() must make the
        // pipe readable to the poller, and drain() must reset it so the
        // next wait blocks again. PR 6 proved this for poll(2); the
        // epoll backend must not regress it.
        for backend in backends() {
            let waker = Waker::new().expect("pipe");
            let mut poller = Poller::new(backend).expect("poller");
            poller.register(0, waker.fd(), POLLIN).expect("register");
            waker.arm();
            assert!(waker.wake(), "{}: armed waker must write", backend.name());
            let mut out = Vec::new();
            let n = poller.wait(1_000, &mut out).expect("wait");
            assert_eq!(n, 1, "{}: wake must be visible", backend.name());
            assert_eq!(out[0].token, 0);
            assert!(out[0].readable());
            waker.drain();
            let n = poller.wait(0, &mut out).expect("wait");
            assert_eq!(n, 0, "{}: drained pipe must be quiet", backend.name());
            // An unarmed wake coalesces (no write), so the poller stays
            // asleep — the post-arm queue re-check is what catches it.
            assert!(!waker.wake(), "{}: unarmed wake coalesces", backend.name());
            let n = poller.wait(0, &mut out).expect("wait");
            assert_eq!(n, 0, "{}: coalesced wake writes nothing", backend.name());
        }
    }

    #[test]
    fn wake_unblocks_a_sleeping_epoll_poller() {
        for backend in backends() {
            let waker = Arc::new(Waker::new().expect("pipe"));
            let mut poller = Poller::new(backend).expect("poller");
            poller.register(0, waker.fd(), POLLIN).expect("register");
            let producer = waker.clone();
            waker.arm();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                producer.wake()
            });
            let mut out = Vec::new();
            let n = poller.wait(5_000, &mut out).expect("wait");
            waker.drain();
            assert!(handle.join().expect("join"), "wake must have written");
            assert_eq!(n, 1, "{}: poller must be woken", backend.name());
        }
    }

    #[test]
    fn error_bits_are_reported_even_with_empty_interest() {
        // A reset connection must surface through the poller even when
        // the reactor is not currently asking for readable/writable —
        // both syscall families report error conditions unconditionally,
        // and the reactor's teardown path depends on that.
        for backend in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = TcpStream::connect(addr).expect("connect");
            let (mut server, _) = listener.accept().expect("accept");
            use std::os::fd::AsRawFd;
            let fd = server.as_raw_fd();

            let mut poller = Poller::new(backend).expect("poller");
            poller.register(9, fd, 0).expect("register");

            // Leave unread data in the client's receive buffer, then
            // drop it: the kernel answers with RST, flipping the server
            // side into an error state.
            server.write_all(b"doomed").expect("write");
            drop(client);

            let mut out = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                let n = poller.wait(100, &mut out).expect("wait");
                if n > 0 {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "{}: RST never reported",
                    backend.name()
                );
            }
            assert_eq!(out[0].token, 9);
            assert!(
                out[0].flags & (POLLERR | POLLHUP) != 0,
                "{}: expected error bits, got {:#x}",
                backend.name(),
                out[0].flags
            );
            assert!(
                out[0].readable(),
                "{}: error-bit readiness must route through the read path",
                backend.name()
            );
        }
    }

    #[test]
    fn modify_transitions_interest_and_counts_ctl_calls() {
        for backend in backends() {
            let waker = Waker::new().expect("pipe");
            let mut poller = Poller::new(backend).expect("poller");
            poller.register(3, waker.fd(), POLLIN).expect("register");
            let after_register = poller.take_ctl_calls();

            waker.arm();
            waker.wake();
            let mut out = Vec::new();
            let n = poller.wait(1_000, &mut out).expect("wait");
            assert_eq!(n, 1, "{}: readable under POLLIN", backend.name());

            // Flip interest away from POLLIN: the pending byte must no
            // longer report (write interest on a pipe read end is never
            // satisfied).
            poller.modify(3, waker.fd(), POLLOUT).expect("modify");
            let n = poller.wait(50, &mut out).expect("wait");
            assert_eq!(n, 0, "{}: POLLIN masked off", backend.name());

            // And back: the level-triggered byte reports again.
            poller.modify(3, waker.fd(), POLLIN).expect("modify");
            let n = poller.wait(1_000, &mut out).expect("wait");
            assert_eq!(n, 1, "{}: POLLIN restored", backend.name());

            let after_mods = poller.take_ctl_calls();
            match backend {
                Backend::Poll => {
                    assert_eq!(after_register, 0);
                    assert_eq!(after_mods, 0, "poll backend issues no ctl syscalls");
                }
                Backend::Epoll => {
                    assert_eq!(after_register, 1, "one ADD");
                    assert_eq!(after_mods, 2, "two MODs since last take");
                }
            }
        }
    }

    #[test]
    fn deregister_stops_readiness_reports() {
        for backend in backends() {
            let waker = Waker::new().expect("pipe");
            let mut poller = Poller::new(backend).expect("poller");
            poller.register(5, waker.fd(), POLLIN).expect("register");
            waker.arm();
            waker.wake();
            poller.deregister(5, waker.fd()).expect("deregister");
            let mut out = Vec::new();
            let n = poller.wait(50, &mut out).expect("wait");
            assert_eq!(n, 0, "{}: deregistered fd must not report", backend.name());
        }
    }
}
