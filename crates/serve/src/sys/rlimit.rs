//! Hand-declared `getrlimit(2)`/`setrlimit(2)` bindings, used to raise
//! the open-file limit before the reactor starts accepting.
//!
//! The default soft `RLIMIT_NOFILE` on most distros is 1024 — two
//! orders of magnitude under the 16k-connection tier the reactor is
//! benched at — while the hard limit is typically generous. Raising
//! soft→hard needs no privilege, so the serve binary and the bench
//! harness both do it unconditionally at startup and log the result.
//!
//! The numeric resource id is OS-specific (7 on Linux, 8 across the
//! BSD family — where 7 is `RLIMIT_NPROC`, so a hardcoded Linux value
//! would silently raise the process-count limit instead). OSes whose
//! id these bindings don't know get a no-op that reports `(0, 0)`;
//! the reactor's EMFILE shedding still protects the accept loop there.
//!
//! Everything exported is safe; each unsafe block carries its own
//! SAFETY note and grandma-lint inventories this file under the
//! `unsafe-code` rule.

#[cfg(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod imp {
    use std::io;

    /// Resource id for the open-file-descriptor limit on this OS.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const RLIMIT_NOFILE: i32 = 8;

    /// Mirrors the kernel's `struct rlimit` on 64-bit Linux and the BSD
    /// family: two `u64`s, soft (current) then hard (max).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    struct RLimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    // Hand-declared libc entry points (the workspace is dependency-free
    // by policy).
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Raises the soft `RLIMIT_NOFILE` to the hard limit.
    ///
    /// Returns `(soft_before, soft_after)`. Already at the hard limit
    /// is a no-op success, and a refused `setrlimit` (e.g. a hardened
    /// container profile) degrades gracefully to `(before, before)` —
    /// callers log the pair and carry on; the reactor's EMFILE shedding
    /// still protects the accept loop if the limit stays low.
    pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `getrlimit` writes one `RLimit` into the struct we
        // own; `#[repr(C)]` matches the kernel layout.
        let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        let before = lim.rlim_cur;
        if lim.rlim_cur >= lim.rlim_max {
            return Ok((before, before));
        }
        let want = RLimit {
            rlim_cur: lim.rlim_max,
            rlim_max: lim.rlim_max,
        };
        // SAFETY: `setrlimit` only reads the struct; raising soft to
        // hard requires no privilege.
        let rc = unsafe { setrlimit(RLIMIT_NOFILE, &want) };
        if rc != 0 {
            // Refused (container policy, races with a limit drop): keep
            // the old limit rather than failing startup.
            return Ok((before, before));
        }
        Ok((before, lim.rlim_max))
    }

    /// Tries to get the soft `RLIMIT_NOFILE` to at least `want`,
    /// raising the *hard* limit too when the process is privileged to
    /// (`CAP_SYS_RESOURCE`, i.e. root in the bench container).
    ///
    /// The connection sweep's largest tier holds both ends of every
    /// connection in one process — ~33k descriptors at 16384
    /// connections — which can exceed the hard limit that
    /// [`raise_nofile_limit`] stops at. Returns
    /// `(soft_before, soft_after)`; like the plain raise, a refusal
    /// degrades to whatever soft→hard achieved rather than erroring,
    /// and the caller logs the pair so a short tier is explainable.
    pub fn ensure_nofile_limit(want: u64) -> io::Result<(u64, u64)> {
        let (before, after) = raise_nofile_limit()?;
        if after >= want {
            return Ok((before, after));
        }
        let lifted = RLimit {
            rlim_cur: want,
            rlim_max: want,
        };
        // SAFETY: `setrlimit` only reads the struct. Raising the hard
        // limit needs privilege; unprivileged processes get EPERM and
        // keep the soft→hard result from above.
        let rc = unsafe { setrlimit(RLIMIT_NOFILE, &lifted) };
        if rc != 0 {
            return Ok((before, after));
        }
        Ok((before, want))
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
mod imp {
    use std::io;

    /// No-op on OSes whose `RLIMIT_NOFILE` id is unverified: reports
    /// `(0, 0)` so callers log "nothing raised" instead of silently
    /// adjusting whatever resource happens to sit at a guessed id.
    pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
        Ok((0, 0))
    }

    /// See [`raise_nofile_limit`]: no-op on unverified OSes.
    pub fn ensure_nofile_limit(_want: u64) -> io::Result<(u64, u64)> {
        Ok((0, 0))
    }
}

pub use imp::{ensure_nofile_limit, raise_nofile_limit};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_reaches_the_hard_limit_and_is_idempotent() {
        let (before, after) = raise_nofile_limit().expect("raise");
        assert!(after >= before, "soft limit must never go down");
        // A second call starts at the raised soft limit: nothing left
        // to raise, so it reports the same value twice.
        let (before2, after2) = raise_nofile_limit().expect("raise again");
        assert_eq!(before2, after);
        assert_eq!(after2, after);
    }
}
