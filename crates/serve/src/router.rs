//! The session router: shards sessions across a fixed pool of worker
//! threads with bounded queues and explicit backpressure.
//!
//! Every session id maps to exactly one shard
//! ([`SessionRouter::shard_of`], a fixed multiplicative hash), and each
//! shard worker exclusively owns its sessions' [`SessionPipeline`]s —
//! there is no cross-shard locking and no shared mutable recognition
//! state. Messages travel over `std::sync::mpsc::sync_channel` with a
//! fixed capacity: when a shard's queue is full, [`SessionRouter::submit`]
//! returns [`SubmitError::Busy`] *immediately* and the transport layer
//! converts that into a `Fault(Busy)` wire frame. Queue growth is bounded
//! by construction; the service never buffers an unbounded backlog.
//!
//! Determinism: a session's frames depend only on its own event order,
//! which each transport preserves, so outcome sequences are byte-identical
//! run to run regardless of how sessions interleave across shards.
//!
//! Ownership: session ids are a global namespace, but every session is
//! bound to the connection that opened it. Each transport connection
//! obtains a [`SessionRouter::new_conn_id`] and stamps it on every
//! `Open`/`Event`/`Close`; the shard records the opener's id and rejects
//! `Event`/`Close` from any other connection with
//! [`FaultCode::UnknownSession`] — deliberately indistinguishable from a
//! session that does not exist, so one client can neither probe for nor
//! disturb another client's sessions. In particular, a connection that
//! loses an `Open` race (`AlreadyOpen`) cannot tear the winner's session
//! down by replaying `Close` for the contested id.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use grandma_core::EagerRecognizer;
use grandma_events::{EventKind, InputEvent};

use crate::metrics::ServiceMetrics;
use crate::pool::BatchPool;
use crate::session::{PipelineConfig, SessionPipeline, SessionSnapshot};
use crate::wal::{WalConfig, WalShard};
use crate::wire::{encode_client, ClientFrame, FaultCode, ServerFrame};

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Bounded per-shard queue capacity; a full queue rejects with
    /// `Busy`.
    pub queue_capacity: usize,
    /// Maximum sessions one shard will hold; `Open`s beyond it are
    /// rejected with `SessionLimit`.
    pub max_sessions_per_shard: usize,
    /// Per-session pipeline tuning.
    pub pipeline: PipelineConfig,
    /// Write-ahead log configuration; `None` disables durability.
    pub wal: Option<WalConfig>,
    /// When `true`, a connection teardown *orphans* its open sessions
    /// (owner reset to 0, replies discarded) instead of closing them, so
    /// a reconnecting client can `Resume`. When `false` (the default)
    /// teardown closes the sessions, as before.
    pub detach_on_disconnect: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            max_sessions_per_shard: 4096,
            pipeline: PipelineConfig::default(),
            wal: None,
            detach_on_disconnect: false,
        }
    }
}

/// Delivers server frames from a shard worker back to the transport
/// that owns a connection, without the shard knowing which transport
/// that is.
///
/// The reactor transport implements this by enqueueing `(conn, frame)`
/// on the owning I/O thread's reply queue and waking its poll loop —
/// the non-blocking reply path keyed by conn id. `deliver` must never
/// block: shard workers call it from the hot path.
pub trait ReplyBridge: Send + Sync {
    /// Hands `frame` to the transport for connection `conn`. Frames for
    /// connections that no longer exist are dropped silently.
    fn deliver(&self, conn: u64, frame: ServerFrame);
}

#[derive(Clone)]
enum ReplyInner {
    /// Direct mpsc delivery: the Duplex transport and tests.
    Channel(Sender<ServerFrame>),
    /// Reactor delivery: frames are routed to the transport's bridge
    /// keyed by the owning connection id.
    Bridge {
        conn: u64,
        bridge: Arc<dyn ReplyBridge>,
    },
    /// Discards every frame: the reply path of orphaned (detached or
    /// recovered-but-not-yet-resumed) sessions and of WAL replay.
    Sink,
}

/// A non-blocking outbound frame path from shard workers to one
/// connection. Either a plain mpsc sender (Duplex, tests) or a
/// conn-id-keyed [`ReplyBridge`] (the TCP reactor). Cheap to clone;
/// send never blocks and never fails visibly — a dead connection just
/// drops frames, and its sessions are reaped by the transport's
/// close path.
#[derive(Clone)]
pub struct ReplyTx {
    inner: ReplyInner,
}

impl ReplyTx {
    /// A reply path that hands frames for `conn` to `bridge`.
    pub fn bridged(conn: u64, bridge: Arc<dyn ReplyBridge>) -> Self {
        Self {
            inner: ReplyInner::Bridge { conn, bridge },
        }
    }

    /// A reply path that discards every frame — for orphaned sessions
    /// awaiting `Resume` and for WAL replay, where nobody is listening.
    pub fn sink() -> Self {
        Self {
            inner: ReplyInner::Sink,
        }
    }

    /// Ships one frame. Infallible by design: failures mean the
    /// connection is gone, and the frame is dropped.
    pub fn send(&self, frame: ServerFrame) {
        match &self.inner {
            ReplyInner::Channel(tx) => {
                let _ = tx.send(frame);
            }
            ReplyInner::Bridge { conn, bridge } => bridge.deliver(*conn, frame),
            ReplyInner::Sink => {}
        }
    }
}

impl From<Sender<ServerFrame>> for ReplyTx {
    fn from(tx: Sender<ServerFrame>) -> Self {
        Self {
            inner: ReplyInner::Channel(tx),
        }
    }
}

/// Cluster ownership fence: given a session id, returns `Some(addr)`
/// when a *different* node owns the session per the consistent-hash
/// ring (the transport then answers `NotOwner { owner: addr }` instead
/// of submitting), or `None` when this node owns it — or when no
/// cluster is configured, which is why the fence fails open. Installed
/// by `serve run --cluster-file` via [`SessionRouter::set_fence`].
pub type SessionFence = Arc<dyn Fn(u64) -> Option<SocketAddr> + Send + Sync>;

/// A message to a shard worker.
pub enum ShardMsg {
    /// Open a session; `reply` is the connection's outbound frame
    /// channel, held by the shard for the session's lifetime.
    Open {
        /// The opening connection's [`SessionRouter::new_conn_id`];
        /// recorded as the session's owner.
        conn: u64,
        /// Session id.
        session: u64,
        /// Correlation id for any rejection fault.
        seq: u32,
        /// Outbound frame path of the owning connection.
        reply: ReplyTx,
    },
    /// One input event for an open session. Rejected with
    /// `Fault(UnknownSession)` on `reply` unless `conn` owns `session`.
    Event {
        /// The sending connection's id; must match the session's owner.
        conn: u64,
        /// Session id.
        session: u64,
        /// Correlation id.
        seq: u32,
        /// The raw event.
        event: InputEvent,
        /// Outbound frame path of the sending connection, for
        /// rejection faults.
        reply: ReplyTx,
    },
    /// A whole batch of input events for one open session, crossing the
    /// shard queue as a single message (wire v2): the shard resolves the
    /// session once and feeds every record through the pipeline loop.
    /// Rejected with one `Fault(UnknownSession)` (carrying the first
    /// record's seq) unless `conn` owns `session`. The buffer is
    /// recycled through the router's [`BatchPool`] after processing.
    EventBatch {
        /// The sending connection's id; must match the session's owner.
        conn: u64,
        /// Session id.
        session: u64,
        /// The `(seq, event)` records, in send order.
        events: Vec<(u32, InputEvent)>,
        /// Outbound frame path of the sending connection.
        reply: ReplyTx,
    },
    /// Close a session (flush, finalize, emit `Closed`). Rejected with
    /// `Fault(UnknownSession)` on `reply` unless `conn` owns `session`.
    Close {
        /// The sending connection's id; must match the session's owner.
        conn: u64,
        /// Session id.
        session: u64,
        /// Correlation id.
        seq: u32,
        /// Outbound frame path of the sending connection, for
        /// rejection faults.
        reply: ReplyTx,
    },
    /// Re-bind an orphaned (or own) session to `conn`. Succeeds when the
    /// session exists and is either unowned (owner 0: detached or
    /// recovered) or already owned by `conn`; replies
    /// [`ServerFrame::Resumed`] carrying the server's `last_seq` so the
    /// client knows exactly which events to re-send. Any other state —
    /// including a session owned by a *different* live connection —
    /// faults `UnknownSession`, indistinguishable from nonexistence.
    Resume {
        /// The resuming connection's id; becomes the session's owner.
        conn: u64,
        /// Session id.
        session: u64,
        /// Outbound frame path of the resuming connection.
        reply: ReplyTx,
    },
    /// Orphan every session owned by `conn`: owner reset to 0, reply
    /// replaced with a sink. Sent to *all* shards on teardown when
    /// [`ServeConfig::detach_on_disconnect`] is set.
    Detach {
        /// The disconnected connection's id.
        conn: u64,
    },
    /// Install a recovered session from a WAL compaction snapshot,
    /// orphaned (owner 0) until a client `Resume`s it. Skipped silently
    /// if the session id already exists.
    Restore {
        /// The decoded snapshot (boxed: snapshots carry point buffers).
        snapshot: Box<SessionSnapshot>,
    },
    /// Install a session transferred from another node (wire v4
    /// `Handoff`). Like `Restore` the session lands orphaned awaiting
    /// its client's `Resume`, but the sender is a live peer expecting
    /// an answer: [`ServerFrame::HandoffAck`] on success, a typed fault
    /// (`AlreadyOpen`, `SessionLimit`) otherwise. The accepted handoff
    /// is journaled to the WAL before it is acknowledged.
    Handoff {
        /// The submitting connection's id (0 in replay).
        conn: u64,
        /// The decoded snapshot.
        snapshot: Box<SessionSnapshot>,
        /// Outbound frame path of the submitting connection.
        reply: ReplyTx,
    },
    /// Snapshot **and remove** every session the shard holds, shipping
    /// the snapshots to `out` — the outbound half of a node drain. The
    /// emptied shard is sealed into its WAL so a restart cannot
    /// resurrect sessions that moved to other nodes.
    Drain {
        /// Where the drained snapshots go.
        out: Sender<Vec<SessionSnapshot>>,
    },
    /// Snapshot every live session into the shard's WAL snapshot file
    /// and truncate its log, then rendezvous on the barrier. Doubles as
    /// a flush fence: by the time the barrier releases, every message
    /// queued ahead of the checkpoint has been processed.
    Checkpoint(Arc<Barrier>),
    /// Park the worker on a barrier — used by backpressure tests and
    /// controlled drains to hold a shard still while its queue fills.
    Pause(Arc<Barrier>),
    /// Finalize every session and exit the worker.
    Shutdown,
}

impl ShardMsg {
    fn session(&self) -> Option<u64> {
        match self {
            ShardMsg::Open { session, .. }
            | ShardMsg::Event { session, .. }
            | ShardMsg::EventBatch { session, .. }
            | ShardMsg::Close { session, .. }
            | ShardMsg::Resume { session, .. } => Some(*session),
            ShardMsg::Restore { snapshot } | ShardMsg::Handoff { snapshot, .. } => {
                Some(snapshot.session)
            }
            ShardMsg::Detach { .. }
            | ShardMsg::Drain { .. }
            | ShardMsg::Checkpoint(_)
            | ShardMsg::Pause(_)
            | ShardMsg::Shutdown => None,
        }
    }
}

/// Why a submit was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard queue is full; retry after draining replies.
    Busy,
    /// The router has shut down.
    Closed,
}

/// What [`SessionRouter::recover`] rebuilt, for operator logs and the
/// benchmark's recovery section.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Sessions restored from compaction snapshots.
    pub sessions: u64,
    /// Log-tail frames re-fed through the pipelines.
    pub frames: u64,
    /// Verified payload bytes read across all shard files.
    pub bytes: u64,
    /// Wall-clock milliseconds from first read to sealed checkpoint.
    pub replay_ms: f64,
    /// `true` when any shard file ended in a torn record (dropped).
    pub torn: bool,
}

/// Handle returned by [`SessionRouter::pause_shard`]; dropping or
/// releasing it lets the worker continue.
pub struct ShardPause {
    barrier: Arc<Barrier>,
}

impl ShardPause {
    /// Releases the paused worker.
    pub fn release(self) {
        self.barrier.wait();
    }
}

struct SessionEntry {
    /// The connection that opened (or resumed) the session; the only
    /// one allowed to feed or close it. 0 marks an orphan — detached or
    /// recovered — that only `Resume` (or WAL replay, which stamps
    /// conn 0) can touch.
    conn: u64,
    /// `Some(last_seq)` while the entry is freshly restored from a
    /// compaction snapshot: replayed (conn 0) events at or below the
    /// watermark were already applied before the snapshot was cut and
    /// are skipped, which makes the crash window between snapshot
    /// rename and log truncate double-apply-safe. Live traffic never
    /// consults it.
    restored_watermark: Option<u32>,
    pipeline: SessionPipeline,
    reply: ReplyTx,
}

/// The sharded session router. Shared across transports via `Arc`;
/// [`SessionRouter::shutdown`] is idempotent and joins every worker.
pub struct SessionRouter {
    shards: Vec<SyncSender<ShardMsg>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<ServiceMetrics>,
    pool: Arc<BatchPool>,
    conn_ids: AtomicU64,
    down: AtomicBool,
    detach_on_disconnect: bool,
    /// Cluster ownership fence; `None` (the default) means every session
    /// is ours. Behind an `RwLock` so `serve run` can install it after
    /// the listener binds and refresh-driven closures can be swapped.
    fence: RwLock<Option<SessionFence>>,
}

impl SessionRouter {
    /// Spawns `config.shards` workers, each owning its sessions' full
    /// pipelines and sharing `recognizer` read-only.
    pub fn new(recognizer: Arc<EagerRecognizer>, config: ServeConfig) -> Arc<Self> {
        let shard_count = config.shards.max(1);
        let metrics = Arc::new(ServiceMetrics::new(shard_count));
        let pool = Arc::new(BatchPool::new());
        let mut shards = Vec::with_capacity(shard_count);
        let mut handles = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_capacity.max(1));
            let worker_rec = recognizer.clone();
            let worker_metrics = metrics.clone();
            let worker_config = config.clone();
            let worker_pool = pool.clone();
            let handle = std::thread::Builder::new()
                .name(format!("grandma-shard-{shard}"))
                .spawn(move || {
                    shard_worker(shard, rx, worker_rec, worker_metrics, worker_config, worker_pool)
                });
            match handle {
                Ok(h) => {
                    shards.push(tx);
                    handles.push(h);
                }
                Err(_) => {
                    // Thread spawn failed (resource exhaustion): run with
                    // the shards that did start. shard_of only routes to
                    // live senders.
                }
            }
        }
        Arc::new(Self {
            shards,
            handles: Mutex::new(handles),
            metrics,
            pool,
            conn_ids: AtomicU64::new(0),
            down: AtomicBool::new(false),
            detach_on_disconnect: config.detach_on_disconnect,
            fence: RwLock::new(None),
        })
    }

    /// Whether transports should orphan (detach) a torn-down
    /// connection's sessions for later `Resume` instead of closing them.
    pub fn detach_on_disconnect(&self) -> bool {
        self.detach_on_disconnect
    }

    /// The shared batch-buffer pool. Transports take buffers here to
    /// assemble [`ShardMsg::EventBatch`] payloads; shard workers return
    /// them after draining, so the steady state recycles instead of
    /// allocating.
    pub fn batch_pool(&self) -> &Arc<BatchPool> {
        &self.pool
    }

    /// Issues a fresh connection identity. Every transport connection
    /// must hold one and stamp it on its `Open`/`Event`/`Close`
    /// messages; sessions are owned by the connection id that opened
    /// them. Ids start at 1, so 0 never matches a live connection.
    pub fn new_conn_id(&self) -> u64 {
        self.conn_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The shard a session id routes to: a fixed multiplicative mix so
    /// adjacent ids spread across shards, stable across runs.
    pub fn shard_of(&self, session: u64) -> usize {
        let mixed = session.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.shards.len().max(1)
    }

    /// Number of live shard workers.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Routes `msg` to its session's shard without blocking. A full
    /// queue returns [`SubmitError::Busy`] — the caller owns the
    /// rejection (typically by sending a `Fault(Busy)` frame).
    pub fn submit(&self, msg: ShardMsg) -> Result<(), SubmitError> {
        let shard = msg.session().map(|s| self.shard_of(s)).unwrap_or(0);
        let Some(tx) = self.shards.get(shard) else {
            return Err(SubmitError::Closed);
        };
        // Count *before* sending: the instant the message lands, an idle
        // worker may dequeue it and decrement — and a decrement racing
        // ahead of its own increment saturates at zero, skewing the
        // depth gauge high for the rest of the process. Rejected sends
        // undo the increment (their transient +1 is why the high-water
        // bound is capacity + 1).
        let shard_metrics = self.metrics.shard(shard);
        shard_metrics.note_enqueue();
        match tx.try_send(msg) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(msg)) => {
                shard_metrics.note_dequeue();
                // A rejected batch still owns a pooled buffer; recycle it
                // so backpressure doesn't leak allocations.
                if let ShardMsg::EventBatch { events, .. } = msg {
                    self.pool.put(events);
                }
                self.metrics.busy_rejections.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Busy)
            }
            Err(TrySendError::Disconnected(_)) => {
                shard_metrics.note_dequeue();
                Err(SubmitError::Closed)
            }
        }
    }

    /// Parks `shard`'s worker on a barrier until the returned handle is
    /// released. Blocks while the shard queue is full. For tests and
    /// controlled drains.
    pub fn pause_shard(&self, shard: usize) -> Option<ShardPause> {
        let barrier = Arc::new(Barrier::new(2));
        let tx = self.shards.get(shard)?;
        // Same ordering as submit: the worker is idle here, so it will
        // dequeue (and decrement) the moment the send lands.
        self.metrics.shard(shard).note_enqueue();
        if tx.send(ShardMsg::Pause(barrier.clone())).is_err() {
            self.metrics.shard(shard).note_dequeue();
            return None;
        }
        Some(ShardPause { barrier })
    }

    /// Blocking submit for recovery and teardown paths, where waiting
    /// out a full queue is correct and `Busy` rejection is not. Keeps
    /// the same enqueue-before-send metrics discipline as `submit`.
    fn send_blocking(&self, msg: ShardMsg) {
        let shard = msg.session().map(|s| self.shard_of(s)).unwrap_or(0);
        let Some(tx) = self.shards.get(shard) else {
            return;
        };
        self.metrics.shard(shard).note_enqueue();
        if tx.send(msg).is_err() {
            self.metrics.shard(shard).note_dequeue();
        }
    }

    /// Orphans every session owned by `conn` on every shard (owner reset
    /// to 0, replies discarded) so a reconnecting client can `Resume`
    /// them. Called by transports on teardown when
    /// [`ServeConfig::detach_on_disconnect`] is set.
    pub fn detach_conn(&self, conn: u64) {
        for (shard, tx) in self.shards.iter().enumerate() {
            self.metrics.shard(shard).note_enqueue();
            if tx.send(ShardMsg::Detach { conn }).is_err() {
                self.metrics.shard(shard).note_dequeue();
            }
        }
    }

    /// Installs (or replaces) the cluster ownership fence. Transports
    /// consult it via [`SessionRouter::owner_redirect`] before admitting
    /// `Open`/`Resume` traffic.
    pub fn set_fence(&self, fence: SessionFence) {
        // lint:try-bounded start — the write guard lives for one pointer
        // store; this is what keeps the hot-path `fence.read()` bounded.
        if let Ok(mut slot) = self.fence.write() {
            *slot = Some(fence);
        }
        // lint:try-bounded end
    }

    /// Where `session` should be redirected, per the installed fence:
    /// `Some(owner_addr)` when another node owns it, `None` when this
    /// node does (or no fence is installed — the fence fails open so a
    /// torn cluster file never blackholes traffic).
    pub fn owner_redirect(&self, session: u64) -> Option<SocketAddr> {
        // lint:try-bounded start — readers only contend with `set_fence`'s
        // single pointer store, and the fence closure is a pure routing
        // lookup; the guard never outlives this expression.
        let guard = self.fence.read().ok()?;
        guard.as_ref().and_then(|f| f(session))
        // lint:try-bounded end
    }

    /// Snapshots **and removes** every session on every shard, returning
    /// the snapshots sorted by session id — the outbound half of a node
    /// drain. Each emptied shard seals its WAL, so a restart of this
    /// node cannot resurrect sessions that were handed to other nodes.
    /// Blocks until every shard has drained.
    pub fn drain_sessions(&self) -> Vec<SessionSnapshot> {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut expected = 0usize;
        for (shard, shard_tx) in self.shards.iter().enumerate() {
            self.metrics.shard(shard).note_enqueue();
            if shard_tx.send(ShardMsg::Drain { out: tx.clone() }).is_err() {
                self.metrics.shard(shard).note_dequeue();
            } else {
                expected += 1;
            }
        }
        drop(tx);
        let mut drained = Vec::new();
        for _ in 0..expected {
            match rx.recv() {
                Ok(batch) => drained.extend(batch),
                Err(_) => break,
            }
        }
        drained.sort_by_key(|s| s.session);
        drained
    }

    /// Forces every shard to snapshot its live sessions into the WAL
    /// snapshot file and truncate its log, blocking until all shards
    /// have done so. A no-op fence on shards without a WAL. Used for the
    /// final snapshot of a graceful shutdown and to seal a recovery.
    pub fn checkpoint_all(&self) {
        let mut barriers = Vec::new();
        for (shard, tx) in self.shards.iter().enumerate() {
            let barrier = Arc::new(Barrier::new(2));
            self.metrics.shard(shard).note_enqueue();
            if tx.send(ShardMsg::Checkpoint(barrier.clone())).is_err() {
                self.metrics.shard(shard).note_dequeue();
            } else {
                barriers.push(barrier);
            }
        }
        for barrier in barriers {
            barrier.wait();
        }
    }

    /// Rebuilds session state from `wal`'s directory: every shard file's
    /// compaction snapshots are restored (orphaned, awaiting `Resume`)
    /// and the log tails re-fed through the normal pipeline path with
    /// replay identity conn 0, so replayed outcomes are byte-identical
    /// to the pre-crash run. Finishes with [`SessionRouter::checkpoint_all`],
    /// which seals the recovered state into a fresh snapshot + empty log
    /// (replayed frames are deliberately *not* re-appended; a crash
    /// mid-recovery just recovers again from the same files). Call
    /// before accepting connections. Routing is by session id, so the
    /// shard count may differ from the crashed process's.
    pub fn recover(&self, wal: &WalConfig) -> std::io::Result<RecoveryReport> {
        let start = Instant::now();
        let mut report = RecoveryReport::default();
        for shard in 0..self.shard_count() {
            let recovery = crate::wal::read_shard(wal, shard)?;
            report.torn |= recovery.torn;
            report.bytes += recovery.bytes;
            for snapshot in recovery.snapshots {
                report.sessions += 1;
                self.send_blocking(ShardMsg::Restore {
                    snapshot: Box::new(snapshot),
                });
            }
            for frame in recovery.frames {
                let msg = match frame {
                    // A logged Open is a session the log (re)creates —
                    // count it alongside the snapshot sessions.
                    ClientFrame::Open { session } => {
                        report.sessions += 1;
                        ShardMsg::Open {
                            conn: 0,
                            session,
                            seq: 0,
                            reply: ReplyTx::sink(),
                        }
                    }
                    ClientFrame::Event {
                        session,
                        seq,
                        event,
                    } => ShardMsg::Event {
                        conn: 0,
                        session,
                        seq,
                        event,
                        reply: ReplyTx::sink(),
                    },
                    ClientFrame::EventBatch { session, events } => {
                        let mut buf = self.pool.take();
                        buf.extend_from_slice(&events);
                        ShardMsg::EventBatch {
                            conn: 0,
                            session,
                            events: buf,
                            reply: ReplyTx::sink(),
                        }
                    }
                    ClientFrame::Close { session, seq } => ShardMsg::Close {
                        conn: 0,
                        session,
                        seq,
                        reply: ReplyTx::sink(),
                    },
                    // A journaled handoff is a session this node accepted
                    // from a peer: reinstall it from the embedded
                    // snapshot, exactly like a compaction snapshot.
                    ClientFrame::Handoff { snapshot } => {
                        match SessionSnapshot::decode(&snapshot) {
                            Ok((snap, _)) => {
                                report.sessions += 1;
                                ShardMsg::Restore {
                                    snapshot: Box::new(snap),
                                }
                            }
                            Err(_) => {
                                report.torn = true;
                                continue;
                            }
                        }
                    }
                    // Handshake and resume frames never reach the log;
                    // tolerate them in a hand-edited file by skipping.
                    ClientFrame::Hello { .. } | ClientFrame::Resume { .. } => continue,
                };
                report.frames += 1;
                self.send_blocking(msg);
            }
        }
        self.checkpoint_all();
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        report.replay_ms = elapsed_ms;
        self.metrics
            .replay_ms
            .store(elapsed_ms as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Sends `Shutdown` to every shard and joins the workers. Queued
    /// messages ahead of the `Shutdown` are processed first; open
    /// sessions are finalized. Idempotent.
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for (shard, tx) in self.shards.iter().enumerate() {
            self.metrics.shard(shard).note_enqueue();
            if tx.send(ShardMsg::Shutdown).is_err() {
                self.metrics.shard(shard).note_dequeue();
            }
        }
        // lint:try-bounded start — the guard lives for one mem::take; the
        // joins below happen after it is dropped.
        let handles = match self.handles.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        // lint:try-bounded end
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Closed pipelines kept per shard for reuse; beyond this they drop.
const PIPELINE_POOL_MAX: usize = 64;

/// The shard worker loop: exclusive owner of its sessions' pipelines.
fn shard_worker(
    shard: usize,
    rx: Receiver<ShardMsg>,
    recognizer: Arc<EagerRecognizer>,
    metrics: Arc<ServiceMetrics>,
    config: ServeConfig,
    pool: Arc<BatchPool>,
) {
    let mut sessions: HashMap<u64, SessionEntry> = HashMap::new();
    let mut scratch: Vec<ServerFrame> = Vec::with_capacity(16);
    // Closed sessions donate their pipelines (warmed gesture/sanitizer
    // buffers) back here; Opens take from it before allocating.
    let mut pipeline_pool: Vec<SessionPipeline> = Vec::new();
    // Durability: the worker exclusively owns its shard's log, so
    // appends need no locking and are exactly consistent with the
    // pipelines. A failed open degrades to running without a WAL.
    let mut wal: Option<WalShard> = config.wal.clone().and_then(|wal_config| {
        match WalShard::open(wal_config, shard) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("serve: shard {shard}: WAL disabled (open failed: {e})");
                None
            }
        }
    });
    // Reusable wire-encoding buffer for WAL appends.
    let mut wal_buf: Vec<u8> = Vec::new();
    let shard_metrics = metrics.shard(shard);
    while let Ok(msg) = rx.recv() {
        // lint:reactor-loop start(shard-worker) — the per-shard processing
        // body: a blocking call here stalls every session on this shard.
        // The idle `rx.recv()` above is the scheduler, not a stall.
        shard_metrics.note_dequeue();
        // Amortized compaction between messages, where the log and the
        // pipelines are exactly consistent.
        wal_compact_if_due(&mut wal, shard, &sessions, false);
        match msg {
            ShardMsg::Open {
                conn,
                session,
                seq,
                reply,
            } => {
                if sessions.contains_key(&session) {
                    reply.send(ServerFrame::Fault {
                        session,
                        seq,
                        code: FaultCode::AlreadyOpen,
                    });
                    continue;
                }
                if sessions.len() >= config.max_sessions_per_shard {
                    reply.send(ServerFrame::Fault {
                        session,
                        seq,
                        code: FaultCode::SessionLimit,
                    });
                    continue;
                }
                let pipeline = match pipeline_pool.pop() {
                    Some(mut recycled) => {
                        recycled.recycle(session);
                        recycled
                    }
                    None => SessionPipeline::new(session, config.pipeline.clone()),
                };
                // Write-ahead: the accepted Open is durable before the
                // session exists. Replay (conn 0) never re-appends.
                if conn != 0 && wal.is_some() {
                    wal_buf.clear();
                    encode_client(&ClientFrame::Open { session }, &mut wal_buf);
                    wal_append(&mut wal, shard, &metrics, &wal_buf);
                }
                sessions.insert(
                    session,
                    SessionEntry {
                        conn,
                        restored_watermark: None,
                        pipeline,
                        reply,
                    },
                );
                metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            }
            // lint:hot-path start — per-event/per-batch arms: no panics, no allocation
            ShardMsg::Event {
                conn,
                session,
                seq,
                event,
                reply,
            } => {
                // Unknown and not-owned are deliberately the same fault:
                // a foreign connection must not be able to distinguish
                // (or touch) someone else's session.
                let entry = match sessions.get_mut(&session) {
                    Some(entry) if entry.conn == conn => entry,
                    _ => {
                        metrics.unknown_sessions.fetch_add(1, Ordering::Relaxed);
                        reply.send(ServerFrame::Fault {
                            session,
                            seq,
                            code: FaultCode::UnknownSession,
                        });
                        continue;
                    }
                };
                // Replay dedup: a freshly restored session skips replayed
                // events already folded into its snapshot (see
                // `SessionEntry::restored_watermark`).
                if conn == 0 && entry.restored_watermark.is_some_and(|w| seq <= w) {
                    continue;
                }
                metrics.events_ingested.fetch_add(1, Ordering::Relaxed);
                shard_metrics.events.fetch_add(1, Ordering::Relaxed);
                let is_point = matches!(event.kind, EventKind::MouseMove);
                if is_point {
                    metrics.points_ingested.fetch_add(1, Ordering::Relaxed);
                    shard_metrics.points.fetch_add(1, Ordering::Relaxed);
                }
                // Write-ahead: durable before the pipeline mutates.
                if conn != 0 && wal.is_some() {
                    wal_buf.clear();
                    encode_client(
                        &ClientFrame::Event {
                            session,
                            seq,
                            event,
                        },
                        &mut wal_buf,
                    );
                    wal_append(&mut wal, shard, &metrics, &wal_buf);
                }
                scratch.clear();
                let start = Instant::now();
                let repairs = entry.pipeline.feed(&recognizer, seq, event, &mut scratch);
                shard_metrics
                    .busy_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if repairs > 0 {
                    metrics
                        .faults_repaired
                        .fetch_add(repairs as u64, Ordering::Relaxed);
                }
                flush_frames(&metrics, &entry.reply, &mut scratch);
            }
            ShardMsg::EventBatch {
                conn,
                session,
                events,
                reply,
            } => {
                // Same ownership rule as single events; the whole batch
                // is accepted or rejected as a unit, and the rejection
                // fault echoes the first record's seq.
                let entry = match sessions.get_mut(&session) {
                    Some(entry) if entry.conn == conn => entry,
                    _ => {
                        metrics.unknown_sessions.fetch_add(1, Ordering::Relaxed);
                        let seq = events.first().map(|&(s, _)| s).unwrap_or(0);
                        reply.send(ServerFrame::Fault {
                            session,
                            seq,
                            code: FaultCode::UnknownSession,
                        });
                        pool.put(events);
                        continue;
                    }
                };
                // Session resolved once; every record rides the same
                // zero-alloc pipeline loop as a single Event would.
                let count = events.len() as u64;
                metrics.events_ingested.fetch_add(count, Ordering::Relaxed);
                metrics.batches_ingested.fetch_add(1, Ordering::Relaxed);
                shard_metrics.events.fetch_add(count, Ordering::Relaxed);
                // Write-ahead: the whole accepted batch is durable
                // before the pipeline mutates.
                if conn != 0 && wal.is_some() {
                    wal_buf.clear();
                    crate::wire::encode_event_batch(session, &events, &mut wal_buf);
                    wal_append(&mut wal, shard, &metrics, &wal_buf);
                }
                // Replay dedup, per record (see the Event arm).
                let watermark = if conn == 0 { entry.restored_watermark } else { None };
                let mut repairs = 0u64;
                let mut points = 0u64;
                scratch.clear();
                let start = Instant::now();
                for &(seq, event) in &events {
                    if watermark.is_some_and(|w| seq <= w) {
                        continue;
                    }
                    if matches!(event.kind, EventKind::MouseMove) {
                        points += 1;
                    }
                    repairs += u64::from(entry.pipeline.feed(&recognizer, seq, event, &mut scratch));
                }
                shard_metrics
                    .busy_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if points > 0 {
                    metrics.points_ingested.fetch_add(points, Ordering::Relaxed);
                    shard_metrics.points.fetch_add(points, Ordering::Relaxed);
                }
                if repairs > 0 {
                    metrics.faults_repaired.fetch_add(repairs, Ordering::Relaxed);
                }
                flush_frames(&metrics, &entry.reply, &mut scratch);
                pool.put(events);
            }
            // lint:hot-path end
            ShardMsg::Close {
                conn,
                session,
                seq,
                reply,
            } => {
                let owned = sessions.get(&session).is_some_and(|e| e.conn == conn);
                let entry = if owned { sessions.remove(&session) } else { None };
                let Some(mut entry) = entry else {
                    metrics.unknown_sessions.fetch_add(1, Ordering::Relaxed);
                    reply.send(ServerFrame::Fault {
                        session,
                        seq,
                        code: FaultCode::UnknownSession,
                    });
                    continue;
                };
                // Write-ahead: the accepted Close is durable before the
                // session is finalized, so replay closes it too.
                if conn != 0 && wal.is_some() {
                    wal_buf.clear();
                    encode_client(&ClientFrame::Close { session, seq }, &mut wal_buf);
                    wal_append(&mut wal, shard, &metrics, &wal_buf);
                }
                scratch.clear();
                // lint:allow(reactor-blocking-call): resolution artifact —
                // `.close()` here is `SessionPipeline::close`; the
                // receiver-agnostic method match (DESIGN.md §12) also hits
                // `Client::close`, whose reconnect backoff sleeps. The
                // pipeline close only runs the recognizer teardown.
                entry.pipeline.close(&recognizer, seq, &mut scratch);
                metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                flush_frames(&metrics, &entry.reply, &mut scratch);
                if pipeline_pool.len() < PIPELINE_POOL_MAX {
                    pipeline_pool.push(entry.pipeline);
                }
            }
            ShardMsg::Resume { conn, session, reply } => {
                match sessions.get_mut(&session) {
                    Some(entry) if entry.conn == 0 || entry.conn == conn => {
                        entry.conn = conn;
                        entry.reply = reply.clone();
                        // The session is live again; any future replay
                        // identity mismatch is caught by ownership.
                        entry.restored_watermark = None;
                        reply.send(ServerFrame::Resumed {
                            session,
                            last_seq: entry.pipeline.last_seq(),
                        });
                        metrics.sessions_resumed.fetch_add(1, Ordering::Relaxed);
                    }
                    // Unknown, or owned by a *different* live connection:
                    // same opaque fault as any foreign touch.
                    _ => {
                        metrics.unknown_sessions.fetch_add(1, Ordering::Relaxed);
                        reply.send(ServerFrame::Fault {
                            session,
                            seq: 0,
                            code: FaultCode::UnknownSession,
                        });
                    }
                }
            }
            ShardMsg::Detach { conn } => {
                for entry in sessions.values_mut() {
                    if entry.conn == conn {
                        entry.conn = 0;
                        entry.reply = ReplyTx::sink();
                    }
                }
            }
            ShardMsg::Restore { snapshot } => {
                if sessions.contains_key(&snapshot.session)
                    || sessions.len() >= config.max_sessions_per_shard
                {
                    continue;
                }
                let entry = SessionEntry {
                    conn: 0,
                    restored_watermark: Some(snapshot.last_seq),
                    pipeline: SessionPipeline::restore(&snapshot),
                    reply: ReplyTx::sink(),
                };
                sessions.insert(snapshot.session, entry);
                metrics.recovered_sessions.fetch_add(1, Ordering::Relaxed);
            }
            ShardMsg::Handoff { conn, snapshot, reply } => {
                let session = snapshot.session;
                if sessions.contains_key(&session) {
                    reply.send(ServerFrame::Fault {
                        session,
                        seq: 0,
                        code: FaultCode::AlreadyOpen,
                    });
                    continue;
                }
                if sessions.len() >= config.max_sessions_per_shard {
                    reply.send(ServerFrame::Fault {
                        session,
                        seq: 0,
                        code: FaultCode::SessionLimit,
                    });
                    continue;
                }
                // Write-ahead: journal the accepted handoff before the
                // ack, so a crash right after the sender forgets the
                // session still recovers it here. Replay (conn 0)
                // never re-appends.
                if conn != 0 && wal.is_some() {
                    let mut payload = Vec::new();
                    snapshot.encode(&mut payload);
                    wal_buf.clear();
                    encode_client(&ClientFrame::Handoff { snapshot: payload }, &mut wal_buf);
                    wal_append(&mut wal, shard, &metrics, &wal_buf);
                }
                let last_seq = snapshot.last_seq;
                let entry = SessionEntry {
                    conn: 0,
                    restored_watermark: Some(last_seq),
                    pipeline: SessionPipeline::restore(&snapshot),
                    reply: ReplyTx::sink(),
                };
                sessions.insert(session, entry);
                metrics.sessions_handed_off.fetch_add(1, Ordering::Relaxed);
                reply.send(ServerFrame::HandoffAck { session, last_seq });
            }
            ShardMsg::Drain { out } => {
                let mut drained: Vec<SessionSnapshot> = sessions
                    .drain()
                    .map(|(_, entry)| entry.pipeline.snapshot())
                    .collect();
                drained.sort_by_key(|s| s.session);
                // The shard is empty now; the forced compaction writes an
                // empty snapshot set and truncates the log, sealing the
                // moved sessions out of this node's recovery path.
                wal_compact_if_due(&mut wal, shard, &sessions, true);
                let _ = out.send(drained);
            }
            ShardMsg::Checkpoint(barrier) => {
                wal_compact_if_due(&mut wal, shard, &sessions, true);
                // lint:allow(reactor-blocking-call): the checkpoint
                // rendezvous — the shard must hold still while the
                // coordinator captures a consistent cut; blocking here IS
                // the contract, and every shard arrives promptly because
                // none does unbounded work between messages.
                barrier.wait();
            }
            ShardMsg::Pause(barrier) => {
                // lint:allow(reactor-blocking-call): session-handoff
                // freeze point — the shard parks until `ShardPause::
                // release`, bounded by the handoff deadline in cluster.
                barrier.wait();
            }
            ShardMsg::Shutdown => {
                // Seal in-flight state first: after a graceful shutdown
                // the snapshot file holds every live session, so a
                // restart with `--recover` resumes exactly here.
                wal_compact_if_due(&mut wal, shard, &sessions, true);
                // Then finalize every open session so clients holding
                // the reply channel see a terminal Closed marker. The
                // closes deliberately do not touch the sealed WAL.
                for (_, mut entry) in sessions.drain() {
                    scratch.clear();
                    // lint:allow(reactor-blocking-call): resolution
                    // artifact — `SessionPipeline::close`, not
                    // `Client::close`; see the close above.
                    entry.pipeline.close(&recognizer, u32::MAX, &mut scratch);
                    metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
                    flush_frames(&metrics, &entry.reply, &mut scratch);
                }
                break;
            }
        }
        // lint:reactor-loop end
    }
}

/// Appends one already-encoded record to the shard's WAL, folding the
/// byte/append counters into `metrics`. An append failure permanently
/// disables the shard's WAL (fail-open: availability over durability,
/// loudly on stderr) rather than faulting live traffic.
fn wal_append(wal: &mut Option<WalShard>, shard: usize, metrics: &ServiceMetrics, buf: &[u8]) {
    let Some(w) = wal.as_mut() else { return };
    match w.append_frame(buf) {
        Ok(written) => {
            metrics.wal_appends.fetch_add(1, Ordering::Relaxed);
            metrics.wal_bytes.fetch_add(written, Ordering::Relaxed);
        }
        Err(e) => {
            eprintln!("serve: shard {shard}: WAL disabled (append failed: {e})");
            *wal = None;
        }
    }
}

/// Compacts the shard's WAL — snapshot every live session, truncate the
/// log — when due (or `force`d). Failure disables the WAL, like
/// [`wal_append`].
fn wal_compact_if_due(
    wal: &mut Option<WalShard>,
    shard: usize,
    sessions: &HashMap<u64, SessionEntry>,
    force: bool,
) {
    let Some(w) = wal.as_mut() else { return };
    if !force && !w.should_compact() {
        return;
    }
    let snapshots: Vec<SessionSnapshot> =
        sessions.values().map(|e| e.pipeline.snapshot()).collect();
    if let Err(e) = w.compact(&snapshots) {
        eprintln!("serve: shard {shard}: WAL disabled (compact failed: {e})");
        *wal = None;
    }
}

/// Ships pipeline frames to the connection, folding outcomes into the
/// metrics. Send failures mean the connection is gone — the session will
/// be reaped by its `Close`; frames are dropped silently.
fn flush_frames(metrics: &ServiceMetrics, reply: &ReplyTx, frames: &mut Vec<ServerFrame>) {
    for frame in frames.drain(..) {
        if let ServerFrame::Outcome { outcome, .. } = frame {
            metrics.note_outcome(outcome);
        }
        reply.send(frame);
    }
}

/// Convenience: drains `rx` of everything immediately available.
pub fn drain_frames(rx: &Receiver<ServerFrame>) -> Vec<ServerFrame> {
    let mut out = Vec::new();
    while let Ok(frame) = rx.try_recv() {
        out.push(frame);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::OutcomeKind;
    use grandma_core::{EagerConfig, FeatureMask};
    use grandma_events::{Button, EventScript};
    use grandma_synth::datasets;
    use std::time::Duration;

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    fn recv_until_closed(rx: &Receiver<ServerFrame>) -> Vec<ServerFrame> {
        let mut out = Vec::new();
        loop {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(frame) => {
                    let done = matches!(
                        frame,
                        ServerFrame::Outcome {
                            outcome: OutcomeKind::Closed,
                            ..
                        }
                    );
                    out.push(frame);
                    if done {
                        return out;
                    }
                }
                Err(_) => return out,
            }
        }
    }

    #[test]
    fn open_feed_close_produces_outcomes() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn,
                session: 42,
                seq: 0,
                reply: tx.clone().into(),
            })
            .unwrap();
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            router
                .submit(ShardMsg::Event {
                    conn,
                    session: 42,
                    seq: i as u32,
                    event: *e,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        router
            .submit(ShardMsg::Close {
                conn,
                session: 42,
                seq: events.len() as u32,
                reply: tx.into(),
            })
            .unwrap();
        let frames = recv_until_closed(&rx);
        let outcomes: Vec<_> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { outcome, .. } => Some(*outcome),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes.len(), 2, "{outcomes:?}");
        assert!(matches!(
            outcomes[0],
            OutcomeKind::Recognized | OutcomeKind::Manipulated
        ));
        assert_eq!(outcomes[1], OutcomeKind::Closed);
        router.shutdown();
        let snap = router.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert!(snap.points_ingested > 0);
    }

    #[test]
    fn duplicate_open_faults_already_open() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        for seq in 0..2 {
            router
                .submit(ShardMsg::Open {
                    conn,
                    session: 7,
                    seq,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        router
            .submit(ShardMsg::Close {
                conn,
                session: 7,
                seq: 2,
                reply: tx.into(),
            })
            .unwrap();
        let frames = recv_until_closed(&rx);
        assert!(frames.iter().any(|f| matches!(
            f,
            ServerFrame::Fault {
                code: FaultCode::AlreadyOpen,
                ..
            }
        )));
        router.shutdown();
    }

    #[test]
    fn foreign_connection_cannot_feed_or_close_a_session() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let owner = router.new_conn_id();
        let intruder = router.new_conn_id();
        let (owner_tx, owner_rx) = std::sync::mpsc::channel();
        let (intruder_tx, intruder_rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn: owner,
                session: 11,
                seq: 0,
                reply: owner_tx.clone().into(),
            })
            .unwrap();
        // The intruder tries to inject an event and tear the session down.
        router
            .submit(ShardMsg::Event {
                conn: intruder,
                session: 11,
                seq: 0,
                event: InputEvent::new(EventKind::MouseMove, 1.0, 1.0, 1.0),
                reply: intruder_tx.clone().into(),
            })
            .unwrap();
        router
            .submit(ShardMsg::Close {
                conn: intruder,
                session: 11,
                seq: 1,
                reply: intruder_tx.into(),
            })
            .unwrap();
        // The owner can still close its session: the intruder's Close
        // must not have destroyed it.
        router
            .submit(ShardMsg::Close {
                conn: owner,
                session: 11,
                seq: 1,
                reply: owner_tx.into(),
            })
            .unwrap();
        let owner_frames = recv_until_closed(&owner_rx);
        assert!(
            matches!(
                owner_frames.last(),
                Some(ServerFrame::Outcome {
                    outcome: OutcomeKind::Closed,
                    ..
                })
            ),
            "{owner_frames:?}"
        );
        let mut intruder_faults = 0;
        while let Ok(frame) = intruder_rx.recv_timeout(Duration::from_secs(5)) {
            assert!(
                matches!(
                    frame,
                    ServerFrame::Fault {
                        code: FaultCode::UnknownSession,
                        ..
                    }
                ),
                "intruder must only ever see UnknownSession: {frame:?}"
            );
            intruder_faults += 1;
            if intruder_faults == 2 {
                break;
            }
        }
        assert_eq!(intruder_faults, 2);
        router.shutdown();
        let snap = router.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert_eq!(snap.unknown_sessions, 2);
    }

    #[test]
    fn losing_an_open_race_cannot_close_the_winners_session() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let winner = router.new_conn_id();
        let loser = router.new_conn_id();
        let (winner_tx, winner_rx) = std::sync::mpsc::channel();
        let (loser_tx, loser_rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn: winner,
                session: 3,
                seq: 0,
                reply: winner_tx.clone().into(),
            })
            .unwrap();
        router
            .submit(ShardMsg::Open {
                conn: loser,
                session: 3,
                seq: 0,
                reply: loser_tx.clone().into(),
            })
            .unwrap();
        // The loser disconnects and (as the transport teardown does)
        // submits Close for the id it tried to open.
        router
            .submit(ShardMsg::Close {
                conn: loser,
                session: 3,
                seq: 1,
                reply: loser_tx.into(),
            })
            .unwrap();
        let loser_frames: Vec<_> = (0..2)
            .filter_map(|_| loser_rx.recv_timeout(Duration::from_secs(5)).ok())
            .collect();
        assert!(loser_frames.iter().any(|f| matches!(
            f,
            ServerFrame::Fault {
                code: FaultCode::AlreadyOpen,
                ..
            }
        )));
        assert!(loser_frames.iter().any(|f| matches!(
            f,
            ServerFrame::Fault {
                code: FaultCode::UnknownSession,
                ..
            }
        )));
        // The winner's session survived and closes normally.
        router
            .submit(ShardMsg::Close {
                conn: winner,
                session: 3,
                seq: 1,
                reply: winner_tx.into(),
            })
            .unwrap();
        let frames = recv_until_closed(&winner_rx);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        router.shutdown();
        assert_eq!(router.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn paused_shard_fills_its_bounded_queue_and_rejects_busy() {
        let config = ServeConfig {
            shards: 1,
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        let router = SessionRouter::new(recognizer(), config);
        let pause = router.pause_shard(0).expect("pause");
        // Give the worker a moment to take the Pause message off the
        // queue, freeing all capacity slots.
        std::thread::sleep(Duration::from_millis(50));
        let conn = router.new_conn_id();
        let (tx, _rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn,
                session: 1,
                seq: 0,
                reply: tx.clone().into(),
            })
            .unwrap();
        let mut busy = 0;
        for i in 0..32 {
            let r = router.submit(ShardMsg::Event {
                conn,
                session: 1,
                seq: i,
                event: InputEvent::new(EventKind::MouseMove, 0.0, 0.0, i as f64),
                reply: tx.clone().into(),
            });
            if r == Err(SubmitError::Busy) {
                busy += 1;
            }
        }
        assert!(busy >= 28, "queue of 4 must reject the flood: {busy}");
        let snap = router.metrics().snapshot();
        assert!(snap.shards[0].queue_highwater <= 5, "{snap:?}");
        assert!(snap.busy_rejections >= 28);
        pause.release();
        router.shutdown();
    }

    #[test]
    fn event_batch_matches_single_events_and_recycles_buffers() {
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events: Vec<(u32, InputEvent)> = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect();
        let close_seq = events.len() as u32;

        let run = |batched: bool| -> Vec<ServerFrame> {
            let router = SessionRouter::new(recognizer(), ServeConfig::default());
            let conn = router.new_conn_id();
            let (tx, rx) = std::sync::mpsc::channel();
            router
                .submit(ShardMsg::Open {
                    conn,
                    session: 9,
                    seq: 0,
                    reply: tx.clone().into(),
                })
                .unwrap();
            if batched {
                let mut buf = router.batch_pool().take();
                buf.extend_from_slice(&events);
                router
                    .submit(ShardMsg::EventBatch {
                        conn,
                        session: 9,
                        events: buf,
                        reply: tx.clone().into(),
                    })
                    .unwrap();
            } else {
                for &(seq, event) in &events {
                    router
                        .submit(ShardMsg::Event {
                            conn,
                            session: 9,
                            seq,
                            event,
                            reply: tx.clone().into(),
                        })
                        .unwrap();
                }
            }
            router
                .submit(ShardMsg::Close {
                    conn,
                    session: 9,
                    seq: close_seq,
                    reply: tx.into(),
                })
                .unwrap();
            let frames = recv_until_closed(&rx);
            router.shutdown();
            frames
        };

        let batched = run(true);
        let single = run(false);
        assert_eq!(batched, single, "batched path must mirror single events");

        // The shard returns the buffer to the pool after draining it.
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn,
                session: 9,
                seq: 0,
                reply: tx.clone().into(),
            })
            .unwrap();
        for _ in 0..4 {
            let mut buf = router.batch_pool().take();
            buf.extend_from_slice(&events);
            router
                .submit(ShardMsg::EventBatch {
                    conn,
                    session: 9,
                    events: buf,
                    reply: tx.clone().into(),
                })
                .unwrap();
            // Wait for the shard to drain the batch and recycle the
            // buffer, so the next round exercises a pool hit.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while router.batch_pool().idle_len() == 0 {
                assert!(std::time::Instant::now() < deadline, "buffer never recycled");
                std::thread::yield_now();
            }
        }
        router
            .submit(ShardMsg::Close {
                conn,
                session: 9,
                seq: close_seq,
                reply: tx.into(),
            })
            .unwrap();
        let _ = recv_until_closed(&rx);
        router.shutdown();
        let (hits, misses) = router.batch_pool().stats();
        assert!(hits >= 3, "steady state must recycle: {hits} hits, {misses} misses");
        let snap = router.metrics().snapshot();
        assert_eq!(snap.batches_ingested, 4);
        assert_eq!(snap.events_ingested, 4 * events.len() as u64);
    }

    #[test]
    fn event_batch_for_unknown_session_faults_with_first_seq() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        let mut buf = router.batch_pool().take();
        buf.push((17, InputEvent::new(EventKind::MouseMove, 0.0, 0.0, 0.0)));
        buf.push((18, InputEvent::new(EventKind::MouseMove, 1.0, 1.0, 1.0)));
        router
            .submit(ShardMsg::EventBatch {
                conn,
                session: 404,
                events: buf,
                reply: tx.into(),
            })
            .unwrap();
        let frame = rx.recv_timeout(Duration::from_secs(5)).expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                session: 404,
                seq: 17,
                code: FaultCode::UnknownSession,
            }
        ));
        router.shutdown();
        // The rejected batch's buffer still made it back to the pool.
        assert_eq!(router.batch_pool().idle_len(), 1);
    }

    #[test]
    fn unknown_session_events_are_counted_and_faulted() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Event {
                conn,
                session: 999,
                seq: 5,
                event: InputEvent::new(EventKind::MouseMove, 0.0, 0.0, 0.0),
                reply: tx.into(),
            })
            .unwrap();
        let frame = rx.recv_timeout(Duration::from_secs(5)).expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                session: 999,
                seq: 5,
                code: FaultCode::UnknownSession,
            }
        ));
        router.shutdown();
        assert_eq!(router.metrics().snapshot().unknown_sessions, 1);
    }

    #[test]
    fn shutdown_finalizes_open_sessions() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let (tx, rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn: router.new_conn_id(),
                session: 5,
                seq: 0,
                reply: tx.into(),
            })
            .unwrap();
        router.shutdown();
        let frames = drain_frames(&rx);
        assert!(frames.iter().any(|f| matches!(
            f,
            ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            }
        )));
    }

    #[test]
    fn handoff_then_resume_matches_an_unmoved_session_byte_for_byte() {
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events: Vec<(u32, InputEvent)> = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect();
        let close_seq = events.len() as u32;
        let split = events.len() / 2;

        // Control: the whole session on one router.
        let control = {
            let router = SessionRouter::new(recognizer(), ServeConfig::default());
            let conn = router.new_conn_id();
            let (tx, rx) = std::sync::mpsc::channel();
            router
                .submit(ShardMsg::Open {
                    conn,
                    session: 77,
                    seq: 0,
                    reply: tx.clone().into(),
                })
                .unwrap();
            for &(seq, event) in &events {
                router
                    .submit(ShardMsg::Event {
                        conn,
                        session: 77,
                        seq,
                        event,
                        reply: tx.clone().into(),
                    })
                    .unwrap();
            }
            router
                .submit(ShardMsg::Close {
                    conn,
                    session: 77,
                    seq: close_seq,
                    reply: tx.into(),
                })
                .unwrap();
            let frames = recv_until_closed(&rx);
            router.shutdown();
            frames
        };

        // Split run: first half on node A, drain, hand off to node B,
        // resume there, feed the rest.
        let node_a = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn_a = node_a.new_conn_id();
        let (tx_a, rx_a) = std::sync::mpsc::channel();
        node_a
            .submit(ShardMsg::Open {
                conn: conn_a,
                session: 77,
                seq: 0,
                reply: tx_a.clone().into(),
            })
            .unwrap();
        for &(seq, event) in &events[..split] {
            node_a
                .submit(ShardMsg::Event {
                    conn: conn_a,
                    session: 77,
                    seq,
                    event,
                    reply: tx_a.clone().into(),
                })
                .unwrap();
        }
        let snapshots = node_a.drain_sessions();
        node_a.shutdown();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(snapshots[0].session, 77);

        let node_b = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn_b = node_b.new_conn_id();
        let (tx_b, rx_b) = std::sync::mpsc::channel();
        node_b
            .submit(ShardMsg::Handoff {
                conn: conn_b,
                snapshot: Box::new(snapshots[0].clone()),
                reply: tx_b.clone().into(),
            })
            .unwrap();
        let ack = rx_b.recv_timeout(Duration::from_secs(10)).expect("ack");
        let handoff_last_seq = snapshots[0].last_seq;
        assert_eq!(
            ack,
            ServerFrame::HandoffAck {
                session: 77,
                last_seq: handoff_last_seq,
            }
        );
        node_b
            .submit(ShardMsg::Resume {
                conn: conn_b,
                session: 77,
                reply: tx_b.clone().into(),
            })
            .unwrap();
        let resumed = rx_b.recv_timeout(Duration::from_secs(10)).expect("resumed");
        assert_eq!(
            resumed,
            ServerFrame::Resumed {
                session: 77,
                last_seq: handoff_last_seq,
            }
        );
        for &(seq, event) in &events[split..] {
            node_b
                .submit(ShardMsg::Event {
                    conn: conn_b,
                    session: 77,
                    seq,
                    event,
                    reply: tx_b.clone().into(),
                })
                .unwrap();
        }
        node_b
            .submit(ShardMsg::Close {
                conn: conn_b,
                session: 77,
                seq: close_seq,
                reply: tx_b.into(),
            })
            .unwrap();
        let tail = recv_until_closed(&rx_b);
        assert_eq!(node_b.metrics().snapshot().sessions_handed_off, 1);
        node_b.shutdown();

        let mut moved = drain_frames(&rx_a);
        moved.extend(tail);
        assert_eq!(
            moved, control,
            "a handed-off session must emit exactly the control run's frames"
        );
    }

    #[test]
    fn drain_empties_every_shard_and_sorts_snapshots() {
        let router = SessionRouter::new(recognizer(), ServeConfig {
            shards: 3,
            ..ServeConfig::default()
        });
        let conn = router.new_conn_id();
        let (tx, _rx) = std::sync::mpsc::channel::<ServerFrame>();
        for session in [9u64, 2, 31, 14] {
            router
                .submit(ShardMsg::Open {
                    conn,
                    session,
                    seq: 0,
                    reply: tx.clone().into(),
                })
                .unwrap();
        }
        let snapshots = router.drain_sessions();
        let ids: Vec<u64> = snapshots.iter().map(|s| s.session).collect();
        assert_eq!(ids, vec![2, 9, 14, 31], "sorted by session id");
        // The drained sessions are gone: feeding one faults UnknownSession.
        let (tx2, rx2) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Event {
                conn,
                session: 9,
                seq: 1,
                event: InputEvent::new(EventKind::MouseMove, 0.0, 0.0, 0.0),
                reply: tx2.into(),
            })
            .unwrap();
        let frame = rx2.recv_timeout(Duration::from_secs(5)).expect("fault");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                session: 9,
                code: FaultCode::UnknownSession,
                ..
            }
        ));
        router.shutdown();
    }

    #[test]
    fn handoff_of_an_existing_session_faults_already_open() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let conn = router.new_conn_id();
        let (tx, rx) = std::sync::mpsc::channel();
        router
            .submit(ShardMsg::Open {
                conn,
                session: 5,
                seq: 0,
                reply: tx.clone().into(),
            })
            .unwrap();
        // Build a snapshot of some other pipeline with the same id.
        let pipeline = SessionPipeline::new(5, PipelineConfig::default());
        router
            .submit(ShardMsg::Handoff {
                conn,
                snapshot: Box::new(pipeline.snapshot()),
                reply: tx.into(),
            })
            .unwrap();
        let frame = rx.recv_timeout(Duration::from_secs(5)).expect("fault");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                session: 5,
                seq: 0,
                code: FaultCode::AlreadyOpen,
            }
        ));
        router.shutdown();
        assert_eq!(router.metrics().snapshot().sessions_handed_off, 0);
    }

    #[test]
    fn fence_redirects_foreign_sessions_and_fails_open() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        // No fence installed: everything is ours.
        assert_eq!(router.owner_redirect(1), None);
        let peer: SocketAddr = "127.0.0.1:9001".parse().unwrap();
        router.set_fence(Arc::new(move |session| {
            if session % 2 == 1 { Some(peer) } else { None }
        }));
        assert_eq!(router.owner_redirect(1), Some(peer));
        assert_eq!(router.owner_redirect(2), None);
        router.shutdown();
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let router = SessionRouter::new(recognizer(), ServeConfig {
            shards: 4,
            ..ServeConfig::default()
        });
        for s in 0..100u64 {
            let a = router.shard_of(s);
            assert_eq!(a, router.shard_of(s));
            assert!(a < 4);
        }
        router.shutdown();
    }
}
