//! The per-session recognition pipeline: sanitize → eager classify →
//! outcome.
//!
//! [`SessionPipeline`] is the serving-layer counterpart of the toolkit's
//! `GestureHandler` state machine (ISSUE 2), with the interaction
//! semantics stripped out and replaced by wire frames: where the handler
//! evaluates `recog`/`manip`/`done` expressions, the pipeline emits
//! [`ServerFrame::Recognized`] / [`ServerFrame::Manipulate`] /
//! [`ServerFrame::Outcome`] for the consuming application to act on at
//! the far end of the transport.
//!
//! The pipeline is pure with respect to its inputs: the same
//! `(recognizer, config, event sequence)` always produces the same frame
//! sequence, which is what lets the loopback integration test demand
//! byte-identical outcomes between the TCP service and
//! [`run_events_inproc`]. It holds no clock, no thread, and no
//! allocation beyond its collection buffers; the classification hot path
//! is the same allocation-free eager machinery as ISSUE 1.
//!
//! State machine (mirroring the handler's, §3.2 two-phase technique):
//!
//! ```text
//! Idle ──down──▶ Collecting ──eager/timeout──▶ Manipulating ──up──▶ Idle
//!   ▲                │  │                          │    │
//!   │                │  └──up (classify at up)─────────────────────▶ Idle
//!   │                └────reject / budget──▶ Draining ──end────────┘
//!   └────grab-break (from anywhere, immediate Cancelled outcome)────┘
//! ```

use grandma_core::{EagerRecognizer, FeatureExtractor, PointFilter};
use grandma_events::{EventKind, EventSanitizer, InputEvent, SanitizerConfig};
use grandma_geom::{Gesture, Point};

use crate::wire::{fault_code_of, OutcomeKind, ServerFrame};

/// Per-session pipeline tuning. Defaults mirror the toolkit's
/// `GestureHandlerConfig` so a served session behaves like a local one.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Whether eager recognition (the mid-gesture phase transition) is
    /// enabled.
    pub eager: bool,
    /// Jitter filter threshold: collected points closer than this to the
    /// previous kept point are discarded (Rubine used 3 px).
    pub min_point_distance: f64,
    /// Optional rejection: minimum estimated probability for a
    /// classification to be acted on.
    pub min_probability: Option<f64>,
    /// Maximum sanitizer repairs tolerated within one interaction before
    /// it is cancelled — a corrupted-beyond-repair stream must not be
    /// classified.
    pub fault_budget: u32,
    /// Sanitizer tuning for this session's stream.
    pub sanitizer: SanitizerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            eager: true,
            min_point_distance: 3.0,
            min_probability: None,
            fault_budget: 8,
            sanitizer: SanitizerConfig::default(),
        }
    }
}

enum Phase {
    Idle,
    Collecting {
        gesture: Gesture,
        // Boxed: the extractor dominates the enum's size and Collecting
        // is entered once per interaction, not per point.
        extractor: Box<FeatureExtractor>,
        filter: PointFilter,
    },
    Manipulating {
        class: u16,
        total_points: u32,
    },
    /// Terminal outcome decided but the grab is still live: swallow
    /// events until one ends the interaction, then emit the held outcome.
    Draining {
        outcome: OutcomeKind,
        class: Option<u16>,
        total_points: u32,
    },
}

/// One session's full recognition pipeline. Owned by exactly one shard
/// worker; never shared across threads.
pub struct SessionPipeline {
    session: u64,
    config: PipelineConfig,
    sanitizer: EventSanitizer,
    phase: Phase,
    /// Faults charged to the interaction in progress.
    interaction_faults: u32,
}

impl SessionPipeline {
    /// Creates the pipeline for `session`.
    pub fn new(session: u64, config: PipelineConfig) -> Self {
        let sanitizer = EventSanitizer::with_config(config.sanitizer.clone());
        Self {
            session,
            config,
            sanitizer,
            phase: Phase::Idle,
            interaction_faults: 0,
        }
    }

    /// The session id frames are stamped with.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// `true` while an interaction is in progress (any non-idle phase).
    pub fn interaction_in_progress(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    /// Feeds one raw (possibly corrupted) event through sanitization and
    /// the state machine, appending every provoked frame to `out`.
    /// Returns the number of sanitizer repairs this event cost.
    pub fn feed(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        raw: InputEvent,
        out: &mut Vec<ServerFrame>,
    ) -> u32 {
        let cleaned = self.sanitizer.process(raw);
        let repairs = self.note_sanitizer_faults(seq, out);
        for event in cleaned {
            self.dispatch(rec, seq, event, out);
        }
        repairs
    }

    /// Ends the session: flushes the sanitizer (closing any dangling
    /// interaction), finalizes the state machine, and emits the terminal
    /// [`OutcomeKind::Closed`] marker. Exactly one `Closed` outcome is
    /// emitted per pipeline lifetime.
    pub fn close(&mut self, rec: &EagerRecognizer, seq: u32, out: &mut Vec<ServerFrame>) {
        let closing = self.sanitizer.finish();
        self.note_sanitizer_faults(seq, out);
        for event in closing {
            self.dispatch(rec, seq, event, out);
        }
        // Defense in depth: the sanitizer's finish() guarantees an ending
        // event for any open interaction, but a pipeline must terminate
        // even if that contract is ever violated.
        if self.interaction_in_progress() {
            self.finish_interaction(seq, OutcomeKind::Cancelled, None, 0, out);
        }
        out.push(ServerFrame::Outcome {
            session: self.session,
            seq,
            outcome: OutcomeKind::Closed,
            class: None,
            total_points: 0,
            faults: 0,
        });
    }

    /// Drains the sanitizer's fault log: emits one `Fault` frame per
    /// repair and, while an interaction is in progress, charges them to
    /// its budget (faults with no interaction to blame are reported but
    /// not budgeted — mirroring the handler's `note_faults`).
    fn note_sanitizer_faults(&mut self, seq: u32, out: &mut Vec<ServerFrame>) -> u32 {
        let faults = self.sanitizer.take_faults();
        if faults.is_empty() {
            return 0;
        }
        for fault in &faults {
            out.push(ServerFrame::Fault {
                session: self.session,
                seq,
                code: fault_code_of(fault),
            });
        }
        let n = faults.len() as u32;
        if self.interaction_in_progress() {
            self.interaction_faults = self.interaction_faults.saturating_add(n);
            self.enforce_fault_budget();
        }
        n
    }

    /// Cancels the interaction into `Draining` when the budget is blown.
    fn enforce_fault_budget(&mut self) {
        if self.interaction_faults <= self.config.fault_budget {
            return;
        }
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Collecting { gesture, .. } => {
                self.phase = Phase::Draining {
                    outcome: OutcomeKind::Cancelled,
                    class: None,
                    total_points: gesture.len() as u32,
                };
            }
            Phase::Manipulating {
                class,
                total_points,
            } => {
                self.phase = Phase::Draining {
                    outcome: OutcomeKind::Cancelled,
                    class: Some(class),
                    total_points,
                };
            }
            draining @ Phase::Draining { .. } => self.phase = draining,
        }
    }

    /// Emits the interaction's terminal outcome and returns to idle,
    /// resetting the per-interaction fault charge. The single exit point
    /// of the state machine.
    fn finish_interaction(
        &mut self,
        seq: u32,
        outcome: OutcomeKind,
        class: Option<u16>,
        total_points: u32,
        out: &mut Vec<ServerFrame>,
    ) {
        out.push(ServerFrame::Outcome {
            session: self.session,
            seq,
            outcome,
            class,
            total_points,
            faults: self.interaction_faults,
        });
        self.interaction_faults = 0;
        self.phase = Phase::Idle;
    }

    /// The phase transition: classify the collected gesture and either
    /// enter manipulation (mid-gesture trigger) or finish (mouse-up).
    fn transition(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        gesture: Gesture,
        at_mouse_up: bool,
        out: &mut Vec<ServerFrame>,
    ) {
        let points = gesture.len() as u32;
        // Checked classification: non-finite or degenerate features are
        // rejected explicitly rather than argmaxed over NaN.
        let classification = rec.classify_full_checked(&gesture);
        let accepted = match &classification {
            None => None,
            Some(c) => {
                if self
                    .config
                    .min_probability
                    .is_some_and(|p| c.probability < p)
                {
                    None
                } else {
                    Some(c.class as u16)
                }
            }
        };
        match accepted {
            Some(class) => {
                if at_mouse_up {
                    self.finish_interaction(seq, OutcomeKind::Recognized, Some(class), points, out);
                } else {
                    out.push(ServerFrame::Recognized {
                        session: self.session,
                        seq,
                        class,
                        points,
                    });
                    self.phase = Phase::Manipulating {
                        class,
                        total_points: points,
                    };
                }
            }
            None => {
                if at_mouse_up {
                    self.finish_interaction(seq, OutcomeKind::Rejected, None, points, out);
                } else {
                    // The grab is still live: hold the rejection until the
                    // stream ends the interaction.
                    self.phase = Phase::Draining {
                        outcome: OutcomeKind::Rejected,
                        class: None,
                        total_points: points,
                    };
                }
            }
        }
    }

    /// Routes one *sanitized* event through the state machine.
    fn dispatch(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        event: InputEvent,
        out: &mut Vec<ServerFrame>,
    ) {
        // Post-sanitizer events are finite by contract; anything else is
        // dropped defensively (never classified, never panicking).
        if !event.is_finite() {
            if self.interaction_in_progress() {
                self.interaction_faults = self.interaction_faults.saturating_add(1);
                self.enforce_fault_budget();
                if event.ends_interaction() {
                    self.teardown(seq, out);
                }
            }
            return;
        }
        // A grab break tears down whatever is in progress, immediately.
        if event.is_grab_break() {
            if self.interaction_in_progress() {
                self.teardown(seq, out);
            }
            return;
        }
        if let Phase::Draining {
            outcome,
            class,
            total_points,
        } = self.phase
        {
            if event.ends_interaction() {
                self.finish_interaction(seq, outcome, class, total_points, out);
            }
            return;
        }
        match (&mut self.phase, event.kind) {
            (Phase::Idle, EventKind::MouseDown { .. }) => {
                let mut gesture = Gesture::new();
                let mut extractor = Box::new(FeatureExtractor::new());
                let mut filter = PointFilter::new(self.config.min_point_distance);
                let p = Point::new(event.x, event.y, event.t);
                filter.accept(&p);
                gesture.push(p);
                extractor.update(p);
                self.phase = Phase::Collecting {
                    gesture,
                    extractor,
                    filter,
                };
            }
            (Phase::Idle, _) => {}
            (
                Phase::Collecting {
                    gesture,
                    extractor,
                    filter,
                },
                EventKind::MouseMove,
            ) => {
                let p = Point::new(event.x, event.y, event.t);
                if !filter.accept(&p) {
                    return;
                }
                gesture.push(p);
                extractor.update(p);
                let min_points = rec.config().min_subgesture_points;
                if self.config.eager && extractor.count() >= min_points {
                    let features = extractor.masked_features(rec.full_classifier().mask());
                    if rec.auc().is_unambiguous(&features) {
                        let gesture = std::mem::take(gesture);
                        self.transition(rec, seq, gesture, false, out);
                    }
                }
            }
            (Phase::Collecting { gesture, .. }, EventKind::Timeout) => {
                let gesture = std::mem::take(gesture);
                self.transition(rec, seq, gesture, false, out);
            }
            (Phase::Collecting { gesture, .. }, EventKind::MouseUp { .. }) => {
                let gesture = std::mem::take(gesture);
                self.transition(rec, seq, gesture, true, out);
            }
            (Phase::Collecting { .. }, EventKind::MouseDown { .. }) => {
                // The sanitizer demotes duplicate downs upstream; if one
                // slips through, record it and ignore the event.
                out.push(ServerFrame::Fault {
                    session: self.session,
                    seq,
                    code: crate::wire::FaultCode::DuplicateMouseDown,
                });
                self.interaction_faults = self.interaction_faults.saturating_add(1);
                self.enforce_fault_budget();
            }
            (Phase::Collecting { .. }, _) => {}
            (
                Phase::Manipulating {
                    total_points: total,
                    ..
                },
                EventKind::MouseMove,
            ) => {
                *total += 1;
                out.push(ServerFrame::Manipulate {
                    session: self.session,
                    seq,
                    x: event.x,
                    y: event.y,
                });
            }
            (
                Phase::Manipulating {
                    class,
                    total_points,
                },
                EventKind::MouseUp { .. },
            ) => {
                let (class, total_points) = (*class, *total_points);
                self.finish_interaction(seq, OutcomeKind::Manipulated, Some(class), total_points, out);
            }
            (Phase::Manipulating { .. }, _) => {}
            // Draining is fully handled before the match; this arm keeps
            // the machine exhaustive.
            (Phase::Draining { .. }, _) => {}
        }
    }

    /// Immediate teardown (grab break or corrupted ending event): the
    /// terminal outcome is emitted now and the pipeline returns to idle.
    fn teardown(&mut self, seq: u32, out: &mut Vec<ServerFrame>) {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Collecting { gesture, .. } => {
                self.finish_interaction(
                    seq,
                    OutcomeKind::Cancelled,
                    None,
                    gesture.len() as u32,
                    out,
                );
            }
            Phase::Manipulating {
                class,
                total_points,
            } => {
                self.finish_interaction(seq, OutcomeKind::Cancelled, Some(class), total_points, out);
            }
            Phase::Draining {
                outcome,
                class,
                total_points,
            } => {
                self.finish_interaction(seq, outcome, class, total_points, out);
            }
        }
    }
}

/// Runs a whole `(seq, event)` stream through a fresh [`SessionPipeline`]
/// without any transport or thread: the deterministic in-process
/// reference the loopback integration test compares the TCP service
/// against, and the reference implementation of "the same scripts run
/// through the in-process pipeline".
pub fn run_events_inproc(
    rec: &EagerRecognizer,
    session: u64,
    config: &PipelineConfig,
    events: &[(u32, InputEvent)],
    close_seq: u32,
) -> Vec<ServerFrame> {
    let mut pipeline = SessionPipeline::new(session, config.clone());
    let mut out = Vec::new();
    for &(seq, raw) in events {
        pipeline.feed(rec, seq, raw, &mut out);
    }
    pipeline.close(rec, close_seq, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grandma_core::{EagerConfig, FeatureMask};
    use grandma_events::{Button, EventScript};
    use grandma_synth::datasets;

    fn recognizer() -> EagerRecognizer {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        rec
    }

    fn seq_events(events: Vec<InputEvent>) -> Vec<(u32, InputEvent)> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect()
    }

    fn clean_stream(n: usize) -> Vec<(u32, InputEvent)> {
        let data = datasets::eight_way(0x7e57, 0, 4);
        let mut script = EventScript::new();
        for i in 0..n {
            script = script.then_gesture(&data.testing[i % data.testing.len()].gesture, Button::Left);
        }
        seq_events(script.into_events())
    }

    #[test]
    fn clean_interactions_recognize_and_close() {
        let rec = recognizer();
        let events = clean_stream(3);
        let close_seq = events.len() as u32;
        let frames = run_events_inproc(&rec, 11, &PipelineConfig::default(), &events, close_seq);
        let outcomes: Vec<OutcomeKind> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { outcome, .. } => Some(*outcome),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes.len(), 4, "3 interactions + 1 Closed: {outcomes:?}");
        assert!(outcomes[..3]
            .iter()
            .all(|o| matches!(o, OutcomeKind::Recognized | OutcomeKind::Manipulated)));
        assert_eq!(outcomes[3], OutcomeKind::Closed);
        // Eager recognition fired: Recognized frames precede Manipulate
        // streams.
        assert!(frames
            .iter()
            .any(|f| matches!(f, ServerFrame::Recognized { .. })));
        assert!(frames
            .iter()
            .any(|f| matches!(f, ServerFrame::Manipulate { .. })));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let rec = recognizer();
        let events = clean_stream(2);
        let a = run_events_inproc(&rec, 1, &PipelineConfig::default(), &events, 999);
        let b = run_events_inproc(&rec, 1, &PipelineConfig::default(), &events, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_stream_reports_faults_and_terminates() {
        use grandma_synth::FaultInjector;
        let rec = recognizer();
        let clean: Vec<InputEvent> = clean_stream(4).into_iter().map(|(_, e)| e).collect();
        let corrupted = seq_events(FaultInjector::new(0xBAD).corrupt(&clean));
        let close_seq = corrupted.len() as u32;
        let frames =
            run_events_inproc(&rec, 2, &PipelineConfig::default(), &corrupted, close_seq);
        // Terminal marker present, pipeline survived.
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        let rerun =
            run_events_inproc(&rec, 2, &PipelineConfig::default(), &corrupted, close_seq);
        assert_eq!(frames, rerun, "corruption replays deterministically");
    }

    #[test]
    fn dangling_interaction_is_cancelled_at_close() {
        let rec = recognizer();
        let mut events = clean_stream(1);
        events.pop(); // lose the MouseUp
        let frames = run_events_inproc(&rec, 3, &PipelineConfig::default(), &events, 100);
        let outcomes: Vec<OutcomeKind> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { outcome, .. } => Some(*outcome),
                _ => None,
            })
            .collect();
        // The sanitizer's finish() synthesizes the grab break: the
        // interaction cancels, then the session closes.
        assert_eq!(outcomes.last(), Some(&OutcomeKind::Closed));
        assert!(outcomes.contains(&OutcomeKind::Cancelled));
    }

    #[test]
    fn fault_budget_cancels_interaction() {
        let rec = recognizer();
        let config = PipelineConfig {
            fault_budget: 1,
            ..PipelineConfig::default()
        };
        let mut pipeline = SessionPipeline::new(4, config);
        let mut out = Vec::new();
        let events = clean_stream(1);
        // Open the interaction, then hammer it with NaN moves.
        pipeline.feed(&rec, 0, events[0].1, &mut out);
        for i in 0..4 {
            pipeline.feed(
                &rec,
                i + 1,
                InputEvent::new(EventKind::MouseMove, f64::NAN, 0.0, 5.0 + i as f64),
                &mut out,
            );
        }
        pipeline.close(&rec, 99, &mut out);
        let cancelled = out.iter().any(|f| {
            matches!(
                f,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Cancelled,
                    ..
                }
            )
        });
        assert!(cancelled, "budget exhaustion must cancel: {out:?}");
    }
}
