//! The per-session recognition pipeline: sanitize → eager classify →
//! outcome.
//!
//! [`SessionPipeline`] is the serving-layer counterpart of the toolkit's
//! `GestureHandler` state machine (ISSUE 2), with the interaction
//! semantics stripped out and replaced by wire frames: where the handler
//! evaluates `recog`/`manip`/`done` expressions, the pipeline emits
//! [`ServerFrame::Recognized`] / [`ServerFrame::Manipulate`] /
//! [`ServerFrame::Outcome`] for the consuming application to act on at
//! the far end of the transport.
//!
//! The pipeline is pure with respect to its inputs: the same
//! `(recognizer, config, event sequence)` always produces the same frame
//! sequence, which is what lets the loopback integration test demand
//! byte-identical outcomes between the TCP service and
//! [`run_events_inproc`]. It holds no clock, no thread, and no
//! allocation beyond its collection buffers; the classification hot path
//! is the same allocation-free eager machinery as ISSUE 1.
//!
//! State machine (mirroring the handler's, §3.2 two-phase technique):
//!
//! ```text
//! Idle ──down──▶ Collecting ──eager/timeout──▶ Manipulating ──up──▶ Idle
//!   ▲                │  │                          │    │
//!   │                │  └──up (classify at up)─────────────────────▶ Idle
//!   │                └────reject / budget──▶ Draining ──end────────┘
//!   └────grab-break (from anywhere, immediate Cancelled outcome)────┘
//! ```

use grandma_core::{EagerRecognizer, FeatureExtractor, PointFilter, FEATURE_COUNT};
use grandma_events::{EventKind, EventSanitizer, InputEvent, SanitizerConfig, SanitizerState};
use grandma_geom::{Gesture, Point};

use crate::wire::{
    fault_code_of, put_f64, put_u16, put_u32, put_u64, Cur, OutcomeKind, ServerFrame, WireError,
    NO_CLASS,
};

/// Per-session pipeline tuning. Defaults mirror the toolkit's
/// `GestureHandlerConfig` so a served session behaves like a local one.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Whether eager recognition (the mid-gesture phase transition) is
    /// enabled.
    pub eager: bool,
    /// Jitter filter threshold: collected points closer than this to the
    /// previous kept point are discarded (Rubine used 3 px).
    pub min_point_distance: f64,
    /// Optional rejection: minimum estimated probability for a
    /// classification to be acted on.
    pub min_probability: Option<f64>,
    /// Maximum sanitizer repairs tolerated within one interaction before
    /// it is cancelled — a corrupted-beyond-repair stream must not be
    /// classified.
    pub fault_budget: u32,
    /// Sanitizer tuning for this session's stream.
    pub sanitizer: SanitizerConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            eager: true,
            min_point_distance: 3.0,
            min_probability: None,
            fault_budget: 8,
            sanitizer: SanitizerConfig::default(),
        }
    }
}

/// Number of [`OutcomeKind`] variants, for the per-session outcome
/// counters carried by [`SessionSnapshot`].
pub const OUTCOME_KIND_COUNT: usize = 5;

fn outcome_index(kind: OutcomeKind) -> usize {
    match kind {
        OutcomeKind::Recognized => 0,
        OutcomeKind::Manipulated => 1,
        OutcomeKind::Cancelled => 2,
        OutcomeKind::Rejected => 3,
        OutcomeKind::Closed => 4,
    }
}

#[derive(Clone, Copy)]
enum Phase {
    Idle,
    /// Collecting points into the pipeline's reusable gesture buffer,
    /// extractor, and jitter filter (fields on [`SessionPipeline`], not
    /// here, so one interaction's allocations serve every later one).
    Collecting,
    Manipulating {
        class: u16,
        total_points: u32,
    },
    /// Terminal outcome decided but the grab is still live: swallow
    /// events until one ends the interaction, then emit the held outcome.
    Draining {
        outcome: OutcomeKind,
        class: Option<u16>,
        total_points: u32,
    },
}

/// One session's full recognition pipeline. Owned by exactly one shard
/// worker; never shared across threads.
///
/// The collection state (`gesture`, `extractor`, `filter`) and the
/// sanitizer's scratch buffer live on the pipeline and are *cleared*, not
/// dropped, between interactions: after the first gesture has warmed the
/// buffers up, feeding an event performs no heap allocation — the
/// serving-layer counterpart of `EagerSession`'s zero-allocation claim.
pub struct SessionPipeline {
    session: u64,
    config: PipelineConfig,
    sanitizer: EventSanitizer,
    phase: Phase,
    /// Faults charged to the interaction in progress.
    interaction_faults: u32,
    /// Reusable collection buffer; cleared at each interaction start.
    gesture: Gesture,
    /// Boxed once at session open, reset in place per interaction.
    extractor: Box<FeatureExtractor>,
    filter: PointFilter,
    /// Sanitizer output scratch, reused across `feed` calls.
    cleaned: Vec<InputEvent>,
    /// Stack buffer for the per-point eager ambiguity check.
    features: [f64; FEATURE_COUNT],
    /// Per-class evaluation scratch for the commit-time classification;
    /// sized lazily to the recognizer's class count, then reused.
    evaluations: Vec<f64>,
    /// Highest event `seq` fed through the pipeline; the authoritative
    /// resume point a `Resumed` reply carries (0 before any event —
    /// resuming clients number events from 1).
    last_seq: u32,
    /// Interaction outcomes emitted over the session's lifetime, indexed
    /// like [`crate::metrics::ServiceMetrics::outcomes`].
    outcome_counts: [u32; OUTCOME_KIND_COUNT],
}

impl SessionPipeline {
    /// Creates the pipeline for `session`.
    pub fn new(session: u64, config: PipelineConfig) -> Self {
        let sanitizer = EventSanitizer::with_config(config.sanitizer.clone());
        let filter = PointFilter::new(config.min_point_distance);
        Self {
            session,
            config,
            sanitizer,
            phase: Phase::Idle,
            interaction_faults: 0,
            gesture: Gesture::new(),
            extractor: Box::new(FeatureExtractor::new()),
            filter,
            cleaned: Vec::new(),
            features: [0.0; FEATURE_COUNT],
            evaluations: Vec::new(),
            last_seq: 0,
            outcome_counts: [0; OUTCOME_KIND_COUNT],
        }
    }

    /// The session id frames are stamped with.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Highest event `seq` fed so far (0 before any event).
    pub fn last_seq(&self) -> u32 {
        self.last_seq
    }

    /// Outcomes emitted so far, indexed Recognized, Manipulated,
    /// Cancelled, Rejected, Closed.
    pub fn outcome_counts(&self) -> [u32; OUTCOME_KIND_COUNT] {
        self.outcome_counts
    }

    /// Re-arms a finished pipeline for a new session, keeping every
    /// warmed buffer (gesture, extractor, sanitizer fault log, sanitizer
    /// scratch). Observationally identical to
    /// `SessionPipeline::new(session, config)` with the same config —
    /// shard workers recycle closed pipelines through this instead of
    /// reallocating.
    pub fn recycle(&mut self, session: u64) {
        self.session = session;
        self.sanitizer.reset();
        self.phase = Phase::Idle;
        self.interaction_faults = 0;
        self.gesture.clear();
        self.extractor.reset();
        self.filter = PointFilter::new(self.config.min_point_distance);
        self.cleaned.clear();
        self.last_seq = 0;
        self.outcome_counts = [0; OUTCOME_KIND_COUNT];
    }

    /// `true` while an interaction is in progress (any non-idle phase).
    pub fn interaction_in_progress(&self) -> bool {
        !matches!(self.phase, Phase::Idle)
    }

    // lint:hot-path start — per-event steady state: no panics, no allocation
    /// Feeds one raw (possibly corrupted) event through sanitization and
    /// the state machine, appending every provoked frame to `out`.
    /// Returns the number of sanitizer repairs this event cost.
    pub fn feed(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        raw: InputEvent,
        out: &mut Vec<ServerFrame>,
    ) -> u32 {
        self.last_seq = self.last_seq.max(seq);
        // The scratch buffer is moved out for the duration of the call so
        // dispatch can borrow `self` mutably; moving a Vec never allocates.
        let mut cleaned = std::mem::take(&mut self.cleaned);
        cleaned.clear();
        self.sanitizer.process_into(raw, &mut cleaned);
        let repairs = self.note_sanitizer_faults(seq, out);
        for &event in &cleaned {
            self.dispatch(rec, seq, event, out);
        }
        self.cleaned = cleaned;
        repairs
    }

    /// Ends the session: flushes the sanitizer (closing any dangling
    /// interaction), finalizes the state machine, and emits the terminal
    /// [`OutcomeKind::Closed`] marker. Exactly one `Closed` outcome is
    /// emitted per pipeline lifetime.
    pub fn close(&mut self, rec: &EagerRecognizer, seq: u32, out: &mut Vec<ServerFrame>) {
        let mut closing = std::mem::take(&mut self.cleaned);
        closing.clear();
        self.sanitizer.finish_into(&mut closing);
        self.note_sanitizer_faults(seq, out);
        for &event in &closing {
            self.dispatch(rec, seq, event, out);
        }
        self.cleaned = closing;
        // Defense in depth: the sanitizer's finish() guarantees an ending
        // event for any open interaction, but a pipeline must terminate
        // even if that contract is ever violated.
        if self.interaction_in_progress() {
            self.finish_interaction(seq, OutcomeKind::Cancelled, None, 0, out);
        }
        if let Some(counter) = self.outcome_counts.get_mut(outcome_index(OutcomeKind::Closed)) {
            *counter = counter.saturating_add(1);
        }
        out.push(ServerFrame::Outcome {
            session: self.session,
            seq,
            outcome: OutcomeKind::Closed,
            class: None,
            total_points: 0,
            faults: 0,
        });
    }

    /// Drains the sanitizer's fault log: emits one `Fault` frame per
    /// repair and, while an interaction is in progress, charges them to
    /// its budget (faults with no interaction to blame are reported but
    /// not budgeted — mirroring the handler's `note_faults`).
    fn note_sanitizer_faults(&mut self, seq: u32, out: &mut Vec<ServerFrame>) -> u32 {
        if self.sanitizer.faults().is_empty() {
            return 0;
        }
        for fault in self.sanitizer.faults() {
            out.push(ServerFrame::Fault {
                session: self.session,
                seq,
                code: fault_code_of(fault),
            });
        }
        let n = self.sanitizer.faults().len() as u32;
        self.sanitizer.clear_faults();
        if self.interaction_in_progress() {
            self.interaction_faults = self.interaction_faults.saturating_add(n);
            self.enforce_fault_budget();
        }
        n
    }

    /// Cancels the interaction into `Draining` when the budget is blown.
    fn enforce_fault_budget(&mut self) {
        if self.interaction_faults <= self.config.fault_budget {
            return;
        }
        match self.phase {
            Phase::Idle | Phase::Draining { .. } => {}
            Phase::Collecting => {
                self.phase = Phase::Draining {
                    outcome: OutcomeKind::Cancelled,
                    class: None,
                    total_points: self.gesture.len() as u32,
                };
            }
            Phase::Manipulating {
                class,
                total_points,
            } => {
                self.phase = Phase::Draining {
                    outcome: OutcomeKind::Cancelled,
                    class: Some(class),
                    total_points,
                };
            }
        }
    }

    /// Emits the interaction's terminal outcome and returns to idle,
    /// resetting the per-interaction fault charge. The single exit point
    /// of the state machine.
    fn finish_interaction(
        &mut self,
        seq: u32,
        outcome: OutcomeKind,
        class: Option<u16>,
        total_points: u32,
        out: &mut Vec<ServerFrame>,
    ) {
        if let Some(counter) = self.outcome_counts.get_mut(outcome_index(outcome)) {
            *counter = counter.saturating_add(1);
        }
        out.push(ServerFrame::Outcome {
            session: self.session,
            seq,
            outcome,
            class,
            total_points,
            faults: self.interaction_faults,
        });
        self.interaction_faults = 0;
        self.phase = Phase::Idle;
    }

    /// The phase transition: classify the collected gesture (still in the
    /// pipeline's reusable buffer) and either enter manipulation
    /// (mid-gesture trigger) or finish (mouse-up).
    fn transition(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        at_mouse_up: bool,
        out: &mut Vec<ServerFrame>,
    ) {
        let points = self.gesture.len() as u32;
        // Checked classification: non-finite or degenerate features are
        // rejected explicitly rather than argmaxed over NaN. The warm
        // extractor has accumulated exactly the collected points, so its
        // features equal a fresh re-extraction of `self.gesture` without
        // re-walking the points.
        let classifier = rec.full_classifier();
        let mask = classifier.mask();
        // lint:allow(hot-path-index): mask.count() <= FEATURE_COUNT by construction
        let slots = &mut self.features[..mask.count()];
        self.extractor.masked_features_into(mask, slots);
        self.evaluations.resize(classifier.num_classes(), 0.0);
        let classification = classifier.classify_slice_checked(slots, &mut self.evaluations);
        let accepted = match classification {
            None => None,
            Some((class, probability)) => {
                if self
                    .config
                    .min_probability
                    .is_some_and(|p| probability < p)
                {
                    None
                } else {
                    Some(class as u16)
                }
            }
        };
        match accepted {
            Some(class) => {
                if at_mouse_up {
                    self.finish_interaction(seq, OutcomeKind::Recognized, Some(class), points, out);
                } else {
                    out.push(ServerFrame::Recognized {
                        session: self.session,
                        seq,
                        class,
                        points,
                    });
                    self.phase = Phase::Manipulating {
                        class,
                        total_points: points,
                    };
                }
            }
            None => {
                if at_mouse_up {
                    self.finish_interaction(seq, OutcomeKind::Rejected, None, points, out);
                } else {
                    // The grab is still live: hold the rejection until the
                    // stream ends the interaction.
                    self.phase = Phase::Draining {
                        outcome: OutcomeKind::Rejected,
                        class: None,
                        total_points: points,
                    };
                }
            }
        }
    }

    /// Routes one *sanitized* event through the state machine.
    fn dispatch(
        &mut self,
        rec: &EagerRecognizer,
        seq: u32,
        event: InputEvent,
        out: &mut Vec<ServerFrame>,
    ) {
        // Post-sanitizer events are finite by contract; anything else is
        // dropped defensively (never classified, never panicking).
        if !event.is_finite() {
            if self.interaction_in_progress() {
                self.interaction_faults = self.interaction_faults.saturating_add(1);
                self.enforce_fault_budget();
                if event.ends_interaction() {
                    self.teardown(seq, out);
                }
            }
            return;
        }
        // A grab break tears down whatever is in progress, immediately.
        if event.is_grab_break() {
            if self.interaction_in_progress() {
                self.teardown(seq, out);
            }
            return;
        }
        if let Phase::Draining {
            outcome,
            class,
            total_points,
        } = self.phase
        {
            if event.ends_interaction() {
                self.finish_interaction(seq, outcome, class, total_points, out);
            }
            return;
        }
        match (self.phase, event.kind) {
            (Phase::Idle, EventKind::MouseDown { .. }) => {
                // Reuse the collection buffers from the previous
                // interaction: clear, don't reallocate.
                self.gesture.clear();
                self.extractor.reset();
                self.filter = PointFilter::new(self.config.min_point_distance);
                let p = Point::new(event.x, event.y, event.t);
                self.filter.accept(&p);
                self.gesture.push(p);
                self.extractor.update(p);
                self.phase = Phase::Collecting;
            }
            (Phase::Idle, _) => {}
            (Phase::Collecting, EventKind::MouseMove) => {
                let p = Point::new(event.x, event.y, event.t);
                if !self.filter.accept(&p) {
                    return;
                }
                self.gesture.push(p);
                self.extractor.update(p);
                let min_points = rec.config().min_subgesture_points;
                if self.config.eager && self.extractor.count() >= min_points {
                    // Stack-buffered feature read: no per-point heap
                    // traffic on the ambiguity check.
                    let mask = rec.full_classifier().mask();
                    // lint:allow(hot-path-index): mask.count() <= FEATURE_COUNT by construction
                    let slots = &mut self.features[..mask.count()];
                    self.extractor.masked_features_into(mask, slots);
                    if rec.auc().is_unambiguous_slice(slots) {
                        self.transition(rec, seq, false, out);
                    }
                }
            }
            (Phase::Collecting, EventKind::Timeout) => {
                self.transition(rec, seq, false, out);
            }
            (Phase::Collecting, EventKind::MouseUp { .. }) => {
                self.transition(rec, seq, true, out);
            }
            (Phase::Collecting, EventKind::MouseDown { .. }) => {
                // The sanitizer demotes duplicate downs upstream; if one
                // slips through, record it and ignore the event.
                out.push(ServerFrame::Fault {
                    session: self.session,
                    seq,
                    code: crate::wire::FaultCode::DuplicateMouseDown,
                });
                self.interaction_faults = self.interaction_faults.saturating_add(1);
                self.enforce_fault_budget();
            }
            (Phase::Collecting, _) => {}
            (
                Phase::Manipulating {
                    class,
                    total_points,
                },
                EventKind::MouseMove,
            ) => {
                self.phase = Phase::Manipulating {
                    class,
                    total_points: total_points + 1,
                };
                out.push(ServerFrame::Manipulate {
                    session: self.session,
                    seq,
                    x: event.x,
                    y: event.y,
                });
            }
            (
                Phase::Manipulating {
                    class,
                    total_points,
                },
                EventKind::MouseUp { .. },
            ) => {
                self.finish_interaction(seq, OutcomeKind::Manipulated, Some(class), total_points, out);
            }
            (Phase::Manipulating { .. }, _) => {}
            // Draining is fully handled before the match; this arm keeps
            // the machine exhaustive.
            (Phase::Draining { .. }, _) => {}
        }
    }
    // lint:hot-path end

    /// Captures the pipeline's complete recoverable state. The sanitizer
    /// fault log is expected to be empty (it is drained into `Fault`
    /// frames on every `feed`); pending faults are *not* carried by the
    /// snapshot.
    pub fn snapshot(&self) -> SessionSnapshot {
        let phase = match self.phase {
            Phase::Idle => SnapshotPhase::Idle,
            Phase::Collecting => SnapshotPhase::Collecting,
            Phase::Manipulating {
                class,
                total_points,
            } => SnapshotPhase::Manipulating {
                class,
                total_points,
            },
            Phase::Draining {
                outcome,
                class,
                total_points,
            } => SnapshotPhase::Draining {
                outcome,
                class,
                total_points,
            },
        };
        // The collection buffers only matter mid-interaction: idle
        // pipelines restore with empty (freshly-cleared) buffers, which
        // is observationally identical because the next MouseDown clears
        // them anyway.
        let points = if matches!(self.phase, Phase::Idle) {
            Vec::new()
        } else {
            self.gesture.points().to_vec()
        };
        SessionSnapshot {
            session: self.session,
            config: self.config.clone(),
            sanitizer: self.sanitizer.state(),
            interaction_faults: self.interaction_faults,
            last_seq: self.last_seq,
            outcome_counts: self.outcome_counts,
            phase,
            points,
        }
    }

    /// Rebuilds a pipeline from a snapshot. The collection state
    /// (extractor, jitter filter, gesture buffer) is reconstructed by
    /// replaying the snapshot's points in order — the same deterministic
    /// float accumulation the live pipeline performed — so a restored
    /// pipeline's future output is byte-identical to one that never
    /// stopped.
    pub fn restore(snapshot: &SessionSnapshot) -> Self {
        let mut p = Self::new(snapshot.session, snapshot.config.clone());
        p.sanitizer.restore_state(snapshot.sanitizer);
        p.interaction_faults = snapshot.interaction_faults;
        p.last_seq = snapshot.last_seq;
        p.outcome_counts = snapshot.outcome_counts;
        p.phase = match snapshot.phase {
            SnapshotPhase::Idle => Phase::Idle,
            SnapshotPhase::Collecting => Phase::Collecting,
            SnapshotPhase::Manipulating {
                class,
                total_points,
            } => Phase::Manipulating {
                class,
                total_points,
            },
            SnapshotPhase::Draining {
                outcome,
                class,
                total_points,
            } => Phase::Draining {
                outcome,
                class,
                total_points,
            },
        };
        for point in &snapshot.points {
            p.filter.accept(point);
            p.gesture.push(*point);
            p.extractor.update(*point);
        }
        p
    }

    /// Immediate teardown (grab break or corrupted ending event): the
    /// terminal outcome is emitted now and the pipeline returns to idle.
    fn teardown(&mut self, seq: u32, out: &mut Vec<ServerFrame>) {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Collecting => {
                self.finish_interaction(
                    seq,
                    OutcomeKind::Cancelled,
                    None,
                    self.gesture.len() as u32,
                    out,
                );
            }
            Phase::Manipulating {
                class,
                total_points,
            } => {
                self.finish_interaction(seq, OutcomeKind::Cancelled, Some(class), total_points, out);
            }
            Phase::Draining {
                outcome,
                class,
                total_points,
            } => {
                self.finish_interaction(seq, outcome, class, total_points, out);
            }
        }
    }
}

/// The interaction phase as carried by a [`SessionSnapshot`] — the
/// public mirror of the pipeline's private state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotPhase {
    /// No interaction in progress.
    Idle,
    /// Collecting gesture points (the snapshot's points are the
    /// collection so far).
    Collecting,
    /// Mid-manipulation after an eager classification.
    Manipulating {
        /// The committed class.
        class: u16,
        /// Points seen when the phase was entered, plus manipulation
        /// moves since.
        total_points: u32,
    },
    /// Terminal outcome decided, waiting for the interaction to end.
    Draining {
        /// The held outcome.
        outcome: OutcomeKind,
        /// The class it carries, if any.
        class: Option<u16>,
        /// Points the outcome reports.
        total_points: u32,
    },
}

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by an incompatible
    /// [`SessionSnapshot::VERSION`].
    UnsupportedVersion {
        /// The version found in the bytes.
        found: u16,
    },
    /// The snapshot bytes are truncated or malformed.
    Wire(WireError),
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Wire(e) => write!(f, "malformed snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A versioned, byte-stable capture of one [`SessionPipeline`]'s
/// recoverable state: config, sanitizer state, phase, fault charge,
/// resume cursor, outcome counters, and the in-flight gesture points.
///
/// The binary layout ([`SessionSnapshot::encode`] /
/// [`SessionSnapshot::decode`]) is the on-disk format the WAL's
/// compaction snapshots use (DESIGN.md §14); [`SessionSnapshot::VERSION`]
/// is bumped on any layout change and decoding rejects other versions —
/// recovery across a layout change goes through the WAL tail instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The session id.
    pub session: u64,
    /// The pipeline config the session was opened with.
    pub config: PipelineConfig,
    /// The sanitizer's mid-stream state.
    pub sanitizer: SanitizerState,
    /// Faults charged to the interaction in progress.
    pub interaction_faults: u32,
    /// Highest event `seq` processed (the resume cursor).
    pub last_seq: u32,
    /// Outcomes emitted so far, indexed Recognized, Manipulated,
    /// Cancelled, Rejected, Closed.
    pub outcome_counts: [u32; OUTCOME_KIND_COUNT],
    /// The interaction phase.
    pub phase: SnapshotPhase,
    /// The in-flight gesture's collected points (empty when idle).
    pub points: Vec<Point>,
}

// Flag bits of the snapshot header byte.
const SNAP_EAGER: u8 = 1 << 0;
const SNAP_HAS_MIN_PROB: u8 = 1 << 1;
const SNAP_HAS_LAST_T: u8 = 1 << 2;
const SNAP_HAS_LAST_POS: u8 = 1 << 3;
const SNAP_INTERACTION_OPEN: u8 = 1 << 4;

// Phase tags.
const SNAP_PHASE_IDLE: u8 = 0;
const SNAP_PHASE_COLLECTING: u8 = 1;
const SNAP_PHASE_MANIPULATING: u8 = 2;
const SNAP_PHASE_DRAINING: u8 = 3;

impl SessionSnapshot {
    /// Snapshot layout version; encoded first so mismatched readers fail
    /// fast with [`SnapshotError::UnsupportedVersion`]. Bump on ANY
    /// layout change, in lockstep with the encode/decode pair below and
    /// the DESIGN.md §14 format table (grandma-lint's
    /// `snapshot-version-lockstep` rule holds this together).
    pub const VERSION: u16 = 1;

    /// Appends the snapshot's byte-stable encoding to `out`: all
    /// integers little-endian, floats as raw IEEE-754 bits, `Option`s as
    /// header flag bits. Encoding the same snapshot twice yields
    /// identical bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, Self::VERSION);
        put_u64(out, self.session);
        let mut flags = 0u8;
        if self.config.eager {
            flags |= SNAP_EAGER;
        }
        if self.config.min_probability.is_some() {
            flags |= SNAP_HAS_MIN_PROB;
        }
        if self.sanitizer.last_t.is_some() {
            flags |= SNAP_HAS_LAST_T;
        }
        if self.sanitizer.last_pos.is_some() {
            flags |= SNAP_HAS_LAST_POS;
        }
        if self.sanitizer.interaction_open {
            flags |= SNAP_INTERACTION_OPEN;
        }
        out.push(flags);
        put_f64(out, self.config.min_point_distance);
        if let Some(p) = self.config.min_probability {
            put_f64(out, p);
        }
        put_u32(out, self.config.fault_budget);
        put_f64(out, self.config.sanitizer.reorder_window_ms);
        put_f64(out, self.config.sanitizer.grab_timeout_ms);
        if let Some(t) = self.sanitizer.last_t {
            put_f64(out, t);
        }
        if let Some((x, y)) = self.sanitizer.last_pos {
            put_f64(out, x);
            put_f64(out, y);
        }
        put_u32(out, self.interaction_faults);
        put_u32(out, self.last_seq);
        for count in self.outcome_counts {
            put_u32(out, count);
        }
        match self.phase {
            SnapshotPhase::Idle => out.push(SNAP_PHASE_IDLE),
            SnapshotPhase::Collecting => out.push(SNAP_PHASE_COLLECTING),
            SnapshotPhase::Manipulating {
                class,
                total_points,
            } => {
                out.push(SNAP_PHASE_MANIPULATING);
                put_u16(out, class);
                put_u32(out, total_points);
            }
            SnapshotPhase::Draining {
                outcome,
                class,
                total_points,
            } => {
                out.push(SNAP_PHASE_DRAINING);
                out.push(outcome_index(outcome) as u8);
                put_u16(out, class.unwrap_or(NO_CLASS));
                put_u32(out, total_points);
            }
        }
        put_u32(out, self.points.len() as u32);
        for p in &self.points {
            put_f64(out, p.x);
            put_f64(out, p.y);
            put_f64(out, p.t);
        }
    }

    /// Decodes one snapshot from the front of `buf`, returning it and
    /// the bytes consumed. Never panics on hostile input.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), SnapshotError> {
        let mut cur = Cur::new(buf);
        let version = cur.u16("snapshot version")?;
        if version != Self::VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let session = cur.u64("session")?;
        let flags = cur.u8("snapshot flags")?;
        let min_point_distance = cur.f64("min point distance")?;
        let min_probability = if flags & SNAP_HAS_MIN_PROB != 0 {
            Some(cur.f64("min probability")?)
        } else {
            None
        };
        let fault_budget = cur.u32("fault budget")?;
        let reorder_window_ms = cur.f64("reorder window")?;
        let grab_timeout_ms = cur.f64("grab timeout")?;
        let last_t = if flags & SNAP_HAS_LAST_T != 0 {
            Some(cur.f64("sanitizer last t")?)
        } else {
            None
        };
        let last_pos = if flags & SNAP_HAS_LAST_POS != 0 {
            Some((cur.f64("sanitizer last x")?, cur.f64("sanitizer last y")?))
        } else {
            None
        };
        let interaction_faults = cur.u32("interaction faults")?;
        let last_seq = cur.u32("last seq")?;
        let mut outcome_counts = [0u32; OUTCOME_KIND_COUNT];
        for count in outcome_counts.iter_mut() {
            *count = cur.u32("outcome count")?;
        }
        let phase = match cur.u8("phase tag")? {
            SNAP_PHASE_IDLE => SnapshotPhase::Idle,
            SNAP_PHASE_COLLECTING => SnapshotPhase::Collecting,
            SNAP_PHASE_MANIPULATING => SnapshotPhase::Manipulating {
                class: cur.u16("phase class")?,
                total_points: cur.u32("phase points")?,
            },
            SNAP_PHASE_DRAINING => {
                let outcome = match cur.u8("phase outcome")? {
                    0 => OutcomeKind::Recognized,
                    1 => OutcomeKind::Manipulated,
                    2 => OutcomeKind::Cancelled,
                    3 => OutcomeKind::Rejected,
                    4 => OutcomeKind::Closed,
                    value => {
                        return Err(WireError::BadEnum {
                            what: "phase outcome",
                            value,
                        }
                        .into())
                    }
                };
                let class = match cur.u16("phase class")? {
                    NO_CLASS => None,
                    c => Some(c),
                };
                SnapshotPhase::Draining {
                    outcome,
                    class,
                    total_points: cur.u32("phase points")?,
                }
            }
            value => {
                return Err(WireError::BadEnum {
                    what: "phase tag",
                    value,
                }
                .into())
            }
        };
        let count = usize::try_from(cur.u32("point count")?).map_err(|_| {
            WireError::IntOutOfRange {
                what: "point count",
            }
        })?;
        // A point is 24 bytes; refuse counts the remaining bytes cannot
        // hold before reserving anything.
        if count.saturating_mul(24) > cur.remaining() {
            return Err(WireError::Malformed {
                what: "point count",
            }
            .into());
        }
        let mut points = Vec::with_capacity(count);
        for _ in 0..count {
            let x = cur.f64("point x")?;
            let y = cur.f64("point y")?;
            let t = cur.f64("point t")?;
            points.push(Point::new(x, y, t));
        }
        let snapshot = Self {
            session,
            config: PipelineConfig {
                eager: flags & SNAP_EAGER != 0,
                min_point_distance,
                min_probability,
                fault_budget,
                sanitizer: SanitizerConfig {
                    reorder_window_ms,
                    grab_timeout_ms,
                },
            },
            sanitizer: SanitizerState {
                last_t,
                last_pos,
                interaction_open: flags & SNAP_INTERACTION_OPEN != 0,
            },
            interaction_faults,
            last_seq,
            outcome_counts,
            phase,
            points,
        };
        Ok((snapshot, cur.consumed()))
    }
}

/// Runs a whole `(seq, event)` stream through a fresh [`SessionPipeline`]
/// without any transport or thread: the deterministic in-process
/// reference the loopback integration test compares the TCP service
/// against, and the reference implementation of "the same scripts run
/// through the in-process pipeline".
pub fn run_events_inproc(
    rec: &EagerRecognizer,
    session: u64,
    config: &PipelineConfig,
    events: &[(u32, InputEvent)],
    close_seq: u32,
) -> Vec<ServerFrame> {
    let mut pipeline = SessionPipeline::new(session, config.clone());
    let mut out = Vec::new();
    for &(seq, raw) in events {
        pipeline.feed(rec, seq, raw, &mut out);
    }
    pipeline.close(rec, close_seq, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grandma_core::{EagerConfig, FeatureMask};
    use grandma_events::{Button, EventScript};
    use grandma_synth::datasets;

    fn recognizer() -> EagerRecognizer {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        rec
    }

    fn seq_events(events: Vec<InputEvent>) -> Vec<(u32, InputEvent)> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect()
    }

    fn clean_stream(n: usize) -> Vec<(u32, InputEvent)> {
        let data = datasets::eight_way(0x7e57, 0, 4);
        let mut script = EventScript::new();
        for i in 0..n {
            script = script.then_gesture(&data.testing[i % data.testing.len()].gesture, Button::Left);
        }
        seq_events(script.into_events())
    }

    #[test]
    fn clean_interactions_recognize_and_close() {
        let rec = recognizer();
        let events = clean_stream(3);
        let close_seq = events.len() as u32;
        let frames = run_events_inproc(&rec, 11, &PipelineConfig::default(), &events, close_seq);
        let outcomes: Vec<OutcomeKind> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { outcome, .. } => Some(*outcome),
                _ => None,
            })
            .collect();
        assert_eq!(outcomes.len(), 4, "3 interactions + 1 Closed: {outcomes:?}");
        assert!(outcomes[..3]
            .iter()
            .all(|o| matches!(o, OutcomeKind::Recognized | OutcomeKind::Manipulated)));
        assert_eq!(outcomes[3], OutcomeKind::Closed);
        // Eager recognition fired: Recognized frames precede Manipulate
        // streams.
        assert!(frames
            .iter()
            .any(|f| matches!(f, ServerFrame::Recognized { .. })));
        assert!(frames
            .iter()
            .any(|f| matches!(f, ServerFrame::Manipulate { .. })));
    }

    #[test]
    fn pipeline_is_deterministic() {
        let rec = recognizer();
        let events = clean_stream(2);
        let a = run_events_inproc(&rec, 1, &PipelineConfig::default(), &events, 999);
        let b = run_events_inproc(&rec, 1, &PipelineConfig::default(), &events, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_stream_reports_faults_and_terminates() {
        use grandma_synth::FaultInjector;
        let rec = recognizer();
        let clean: Vec<InputEvent> = clean_stream(4).into_iter().map(|(_, e)| e).collect();
        let corrupted = seq_events(FaultInjector::new(0xBAD).corrupt(&clean));
        let close_seq = corrupted.len() as u32;
        let frames =
            run_events_inproc(&rec, 2, &PipelineConfig::default(), &corrupted, close_seq);
        // Terminal marker present, pipeline survived.
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        let rerun =
            run_events_inproc(&rec, 2, &PipelineConfig::default(), &corrupted, close_seq);
        assert_eq!(frames, rerun, "corruption replays deterministically");
    }

    #[test]
    fn dangling_interaction_is_cancelled_at_close() {
        let rec = recognizer();
        let mut events = clean_stream(1);
        events.pop(); // lose the MouseUp
        let frames = run_events_inproc(&rec, 3, &PipelineConfig::default(), &events, 100);
        let outcomes: Vec<OutcomeKind> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { outcome, .. } => Some(*outcome),
                _ => None,
            })
            .collect();
        // The sanitizer's finish() synthesizes the grab break: the
        // interaction cancels, then the session closes.
        assert_eq!(outcomes.last(), Some(&OutcomeKind::Closed));
        assert!(outcomes.contains(&OutcomeKind::Cancelled));
    }

    #[test]
    fn snapshot_restore_matches_never_crashed_at_every_cut() {
        let rec = recognizer();
        let events = clean_stream(2);
        let close_seq = events.len() as u32;
        let reference =
            run_events_inproc(&rec, 21, &PipelineConfig::default(), &events, close_seq);
        // Cut the stream at every boundary — idle, mid-collection,
        // mid-manipulation — snapshot, restore, and finish on the
        // restored pipeline. The combined output must be byte-identical
        // to the uninterrupted run.
        for cut in 0..=events.len() {
            let mut first = SessionPipeline::new(21, PipelineConfig::default());
            let mut out = Vec::new();
            for &(seq, raw) in &events[..cut] {
                first.feed(&rec, seq, raw, &mut out);
            }
            let snap = first.snapshot();
            // Byte-stable: encode twice, decode, re-encode — all equal.
            let mut bytes = Vec::new();
            snap.encode(&mut bytes);
            let mut again = Vec::new();
            snap.encode(&mut again);
            assert_eq!(bytes, again, "cut {cut}: encode is deterministic");
            let (decoded, consumed) = SessionSnapshot::decode(&bytes).expect("decodes");
            assert_eq!(consumed, bytes.len(), "cut {cut}: whole buffer consumed");
            assert_eq!(decoded, snap, "cut {cut}: decode inverts encode");
            let mut restored = SessionPipeline::restore(&decoded);
            assert_eq!(restored.last_seq(), first.last_seq());
            for &(seq, raw) in &events[cut..] {
                restored.feed(&rec, seq, raw, &mut out);
            }
            restored.close(&rec, close_seq, &mut out);
            let mut encoded = Vec::new();
            let mut ref_encoded = Vec::new();
            for f in &out {
                crate::wire::encode_server(f, &mut encoded);
            }
            for f in &reference {
                crate::wire::encode_server(f, &mut ref_encoded);
            }
            assert_eq!(
                encoded, ref_encoded,
                "cut {cut}: restored output must be byte-identical"
            );
        }
    }

    #[test]
    fn snapshot_restore_preserves_outcome_counts_and_faulted_state() {
        let rec = recognizer();
        let config = PipelineConfig {
            min_probability: Some(0.25),
            ..PipelineConfig::default()
        };
        let clean: Vec<InputEvent> = clean_stream(3).into_iter().map(|(_, e)| e).collect();
        let corrupted = seq_events(grandma_synth::FaultInjector::new(0x5EED).corrupt(&clean));
        let close_seq = corrupted.len() as u32;
        let reference = run_events_inproc(&rec, 8, &config, &corrupted, close_seq);
        let cut = corrupted.len() / 2;
        let mut first = SessionPipeline::new(8, config.clone());
        let mut out = Vec::new();
        for &(seq, raw) in &corrupted[..cut] {
            first.feed(&rec, seq, raw, &mut out);
        }
        let snap = first.snapshot();
        let counts = first.outcome_counts();
        let mut restored = SessionPipeline::restore(&snap);
        assert_eq!(restored.outcome_counts(), counts);
        for &(seq, raw) in &corrupted[cut..] {
            restored.feed(&rec, seq, raw, &mut out);
        }
        restored.close(&rec, close_seq, &mut out);
        assert_eq!(out, reference, "faulted stream restores identically");
    }

    #[test]
    fn snapshot_decode_rejects_bad_bytes_without_panicking() {
        let pipeline = SessionPipeline::new(5, PipelineConfig::default());
        let mut bytes = Vec::new();
        pipeline.snapshot().encode(&mut bytes);
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[0] = 0xFF;
        wrong[1] = 0xFF;
        assert_eq!(
            SessionSnapshot::decode(&wrong),
            Err(SnapshotError::UnsupportedVersion { found: 0xFFFF })
        );
        // Every truncation is a typed error, not a panic.
        for cut in 0..bytes.len() {
            assert!(SessionSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A forged point count must not allocate or loop.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(SessionSnapshot::decode(&bytes).is_err());
    }

    #[test]
    fn fault_budget_cancels_interaction() {
        let rec = recognizer();
        let config = PipelineConfig {
            fault_budget: 1,
            ..PipelineConfig::default()
        };
        let mut pipeline = SessionPipeline::new(4, config);
        let mut out = Vec::new();
        let events = clean_stream(1);
        // Open the interaction, then hammer it with NaN moves.
        pipeline.feed(&rec, 0, events[0].1, &mut out);
        for i in 0..4 {
            pipeline.feed(
                &rec,
                i + 1,
                InputEvent::new(EventKind::MouseMove, f64::NAN, 0.0, 5.0 + i as f64),
                &mut out,
            );
        }
        pipeline.close(&rec, 99, &mut out);
        let cancelled = out.iter().any(|f| {
            matches!(
                f,
                ServerFrame::Outcome {
                    outcome: OutcomeKind::Cancelled,
                    ..
                }
            )
        });
        assert!(cancelled, "budget exhaustion must cancel: {out:?}");
    }
}
