//! Write-ahead wire log: per-shard durability for accepted client frames.
//!
//! Each shard worker owns one [`WalShard`]: an append-only log file
//! (`shard-<i>.wal`) of every *accepted* `Open`/`Event`/`EventBatch`/
//! `Close` frame, in processing order, plus a compaction snapshot file
//! (`shard-<i>.snap`) of [`SessionSnapshot`]s. Because the worker is the
//! exclusive owner of its sessions, the log needs no locking and is
//! trivially consistent with the pipelines it protects: a frame is
//! appended *before* it is fed (write-ahead), so a crash at any
//! instant loses at most frames that were never acknowledged.
//!
//! On-disk record format, identical for both files:
//!
//! ```text
//! ┌────────────┬───────────────────┬────────────────────┐
//! │ u32 LE len │ u32 LE crc32(payload) │ payload (len bytes) │
//! └────────────┴───────────────────┴────────────────────┘
//! ```
//!
//! A WAL payload is one wire-encoded client frame (the same bytes the
//! transport received, re-encoded by [`crate::wire::encode_client`]); a
//! snapshot payload is one [`SessionSnapshot::encode`]. Reading stops at
//! the first truncated or CRC-mismatched record — a torn tail from a
//! mid-write crash is silently dropped, never a panic, and everything
//! before it is intact by checksum.
//!
//! Compaction: once [`WalConfig::compact_bytes`] of log have accumulated,
//! the worker snapshots every live session into `shard-<i>.snap.tmp`,
//! fsyncs, renames over `shard-<i>.snap`, and truncates the log. The
//! rename is atomic; a crash between rename and truncate merely leaves
//! pre-snapshot frames in the log, which replay skips via the snapshot's
//! `last_seq` watermark.
//!
//! Fsync policy ([`FsyncPolicy`]): `Sync` fsyncs after every append
//! (durable to the platter, slow); `Async` writes without fsync (durable
//! to the page cache — survives process crashes, not power loss). "Off"
//! is represented by not configuring a WAL at all
//! (`ServeConfig::wal: None`).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::session::SessionSnapshot;
use crate::wire::{decode_client, ClientFrame};

/// Upper bound on one record's payload length. Wire frames are capped
/// far below this; snapshots grow with in-flight gesture size but a
/// megabyte of points is already pathological. A larger prefix is
/// treated as a torn/corrupt tail, never an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 20;

// A handed-off session is journaled as one WAL record holding the whole
// wire frame (4-byte length prefix + tag + snapshot); the wire cap must
// leave room for the prefix or a legal handoff would be unjournalable.
const _: () = assert!(crate::wire::MAX_HANDOFF_FRAME_LEN + 4 <= MAX_RECORD_LEN);

/// Bytes of a record header (`len` + `crc`).
const RECORD_HEADER_LEN: usize = 8;

/// When to force appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Write without fsync: records survive a process crash (the page
    /// cache persists) but not a host crash.
    Async,
    /// fsync after every append: records survive power loss at the cost
    /// of one disk flush per accepted frame.
    Sync,
}

/// Write-ahead log configuration carried by `ServeConfig::wal`.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the per-shard log and snapshot files; created
    /// on first use.
    pub dir: PathBuf,
    /// Durability of each append.
    pub fsync: FsyncPolicy,
    /// Log bytes accumulated since the last snapshot that trigger
    /// compaction.
    pub compact_bytes: u64,
}

impl WalConfig {
    /// A config rooted at `dir` with the given fsync policy and the
    /// default 4 MiB compaction threshold.
    pub fn new(dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        Self {
            dir: dir.into(),
            fsync,
            compact_bytes: 4 << 20,
        }
    }

    /// The log path for `shard`.
    pub fn wal_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.wal"))
    }

    /// The snapshot path for `shard`.
    pub fn snap_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.snap"))
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — hand-rolled
/// because the workspace is dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn append_record(out: &mut Vec<u8>, payload: &[u8]) {
    crate::wire::put_u32(out, payload.len() as u32);
    crate::wire::put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

/// Splits `bytes` into verified record payloads. Stops (without error)
/// at the first truncated, oversized, or CRC-mismatched record; returns
/// the payload slices and whether a torn tail was dropped.
fn split_records(bytes: &[u8]) -> (Vec<&[u8]>, bool) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN) else {
            return (out, true);
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let Ok(len) = usize::try_from(len) else {
            return (out, true);
        };
        if len > MAX_RECORD_LEN {
            return (out, true);
        }
        let start = pos + RECORD_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len) else {
            return (out, true);
        };
        if crc32(payload) != crc {
            return (out, true);
        }
        out.push(payload);
        pos = start + len;
    }
    (out, false)
}

/// One shard's write-ahead log, owned exclusively by its shard worker.
pub struct WalShard {
    config: WalConfig,
    shard: usize,
    file: File,
    /// Log bytes appended since the last compaction (or open).
    bytes_since_snapshot: u64,
    /// Reusable record-assembly buffer.
    scratch: Vec<u8>,
}

impl WalShard {
    /// Opens (creating if needed) the log for `shard` under
    /// `config.dir`, appending to whatever tail already exists.
    pub fn open(config: WalConfig, shard: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let path = config.wal_path(shard);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let existing = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(Self {
            config,
            shard,
            file,
            bytes_since_snapshot: existing,
            scratch: Vec::new(),
        })
    }

    /// Appends one wire-encoded client frame (write-ahead: call before
    /// feeding the frame to the pipeline). Returns the record bytes
    /// written.
    pub fn append_frame(&mut self, frame_bytes: &[u8]) -> std::io::Result<u64> {
        // lint:reactor-loop start(wal-append) — runs inline on the shard
        // worker for every frame; the two I/O calls below are the write-ahead
        // contract itself and are individually attested.
        self.scratch.clear();
        append_record(&mut self.scratch, frame_bytes);
        // lint:allow(reactor-blocking-call): the write-ahead durability
        // contract — one buffered O_APPEND write per frame, bounded by the
        // record size; `--wal` is an explicit durability opt-in.
        self.file.write_all(&self.scratch)?;
        if self.config.fsync == FsyncPolicy::Sync {
            // lint:allow(reactor-blocking-call): fsync happens only under
            // `--wal sync`, the caller's explicit durability-over-latency
            // choice (DESIGN.md §10).
            self.file.sync_data()?;
        }
        let written = self.scratch.len() as u64;
        self.bytes_since_snapshot = self.bytes_since_snapshot.saturating_add(written);
        Ok(written)
        // lint:reactor-loop end
    }

    /// `true` once enough log has accumulated that the owner should
    /// [`WalShard::compact`].
    pub fn should_compact(&self) -> bool {
        self.bytes_since_snapshot >= self.config.compact_bytes
    }

    /// Replaces the snapshot file with `snapshots` (atomic tmp + rename)
    /// and truncates the log. A crash between rename and truncate leaves
    /// stale pre-snapshot frames in the log; replay skips them via each
    /// snapshot's `last_seq` watermark.
    pub fn compact(&mut self, snapshots: &[SessionSnapshot]) -> std::io::Result<()> {
        let snap_path = self.config.snap_path(self.shard);
        let tmp_path = self.config.dir.join(format!("shard-{}.snap.tmp", self.shard));
        let mut bytes = Vec::new();
        let mut payload = Vec::new();
        for snapshot in snapshots {
            payload.clear();
            snapshot.encode(&mut payload);
            append_record(&mut bytes, &payload);
        }
        {
            let mut tmp = File::create(&tmp_path)?;
            // lint:allow(reactor-blocking-call): compaction runs inline on
            // the shard worker by design (DESIGN.md §10) — one snapshot
            // write per compact interval, amortized across thousands of
            // appends; moving it off-thread would race the O_APPEND tail.
            tmp.write_all(&bytes)?;
            // lint:allow(reactor-blocking-call): the snapshot must be
            // durable before the rename publishes it; same amortization
            // argument as the write above.
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &snap_path)?;
        // Truncate the log in place: with O_APPEND the next write lands
        // at the (new) end regardless of the handle's cursor.
        self.file.set_len(0)?;
        if self.config.fsync == FsyncPolicy::Sync {
            // lint:allow(reactor-blocking-call): only under `--wal sync`,
            // the caller's explicit durability-over-latency choice.
            self.file.sync_data()?;
        }
        self.bytes_since_snapshot = 0;
        Ok(())
    }
}

/// Pid-stamped exclusivity lock on a WAL directory.
///
/// Two serve processes appending to the same shard logs would interleave
/// records and corrupt both histories, so `serve run --wal` takes this
/// lock before touching the directory. The lock is a `wal.lock` file
/// created with `O_EXCL` holding the owner's pid: a second process finds
/// it, checks whether that pid is still alive (via `/proc`, this being a
/// dependency-free Linux-first build), and either refuses
/// ([`std::io::ErrorKind::WouldBlock`]) or reclaims the stale file a
/// dead owner left behind. Dropping the guard removes the file. Where
/// liveness cannot be probed (`/proc` absent) the holder is presumed
/// alive — never reclaim on doubt.
#[derive(Debug)]
pub struct WalDirLock {
    path: PathBuf,
}

/// Lock-file name inside the WAL directory.
pub const WAL_LOCK_FILE: &str = "wal.lock";

fn pid_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

impl WalDirLock {
    /// Takes the exclusive lock on `dir` (creating the directory if
    /// needed). Fails with [`std::io::ErrorKind::WouldBlock`] when a
    /// live process holds it; a stale lock from a dead pid (or with
    /// unreadable contents) is reclaimed.
    pub fn acquire(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_LOCK_FILE);
        let mut reclaimed = false;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    write!(file, "{}", std::process::id())?;
                    file.sync_data()?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WouldBlock,
                                format!(
                                    "wal dir {} is locked by live pid {pid}",
                                    dir.display()
                                ),
                            ));
                        }
                        _ => {
                            // Dead owner or garbage: reclaim once, then
                            // retry the exclusive create. A second
                            // AlreadyExists means we lost a race to
                            // another reclaimer — give up to it.
                            if reclaimed {
                                return Err(e);
                            }
                            let _ = std::fs::remove_file(&path);
                            reclaimed = true;
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The lock file's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalDirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What one shard's files replayed to.
#[derive(Debug, Default)]
pub struct ShardRecovery {
    /// The compaction snapshots, in file order.
    pub snapshots: Vec<SessionSnapshot>,
    /// The log tail's frames, in append (= processing) order.
    pub frames: Vec<ClientFrame>,
    /// Total verified payload bytes read from both files.
    pub bytes: u64,
    /// `true` when either file ended in a torn record that was dropped.
    pub torn: bool,
}

/// Reads and verifies `shard`'s snapshot + log tail from `dir`. Missing
/// files are empty recoveries, torn tails are dropped, CRC-verified
/// prefixes are kept — the only `Err` is a real I/O failure on an
/// existing file. Records that fail to decode as snapshots/frames end
/// the respective replay (treated like a torn tail).
pub fn read_shard(config: &WalConfig, shard: usize) -> std::io::Result<ShardRecovery> {
    let mut recovery = ShardRecovery::default();
    if let Some(bytes) = read_optional(&config.snap_path(shard))? {
        let (records, torn) = split_records(&bytes);
        recovery.torn |= torn;
        for payload in records {
            match SessionSnapshot::decode(payload) {
                Ok((snapshot, _)) => {
                    recovery.bytes += payload.len() as u64;
                    recovery.snapshots.push(snapshot);
                }
                Err(_) => {
                    recovery.torn = true;
                    break;
                }
            }
        }
    }
    if let Some(bytes) = read_optional(&config.wal_path(shard))? {
        let (records, torn) = split_records(&bytes);
        recovery.torn |= torn;
        'records: for payload in records {
            // One record holds one append, but one append may carry
            // several wire frames (a large batch splits into chunks) —
            // decode until the payload is exhausted.
            let mut pos = 0usize;
            while let Some(rest) = payload.get(pos..) {
                if rest.is_empty() {
                    break;
                }
                match decode_client(rest) {
                    Ok(Some((frame, consumed))) if consumed > 0 => {
                        pos += consumed;
                        recovery.frames.push(frame);
                    }
                    _ => {
                        recovery.torn = true;
                        break 'records;
                    }
                }
            }
            recovery.bytes += payload.len() as u64;
        }
    }
    Ok(recovery)
}

fn read_optional(path: &Path) -> std::io::Result<Option<Vec<u8>>> {
    match File::open(path) {
        Ok(mut file) => {
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{PipelineConfig, SessionPipeline};
    use crate::wire::encode_client;
    use grandma_events::{EventKind, InputEvent};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grandma-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn event_frame(seq: u32) -> ClientFrame {
        ClientFrame::Event {
            session: 7,
            seq,
            event: InputEvent::new(EventKind::MouseMove, seq as f64, 0.0, seq as f64),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_and_replay_round_trip() {
        let config = WalConfig::new(tmp_dir("roundtrip"), FsyncPolicy::Sync);
        let mut wal = WalShard::open(config.clone(), 0).expect("open");
        let frames: Vec<ClientFrame> = (1..=5).map(event_frame).collect();
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.clear();
            encode_client(frame, &mut bytes);
            wal.append_frame(&bytes).expect("append");
        }
        let recovery = read_shard(&config, 0).expect("read");
        assert_eq!(recovery.frames, frames);
        assert!(recovery.snapshots.is_empty());
        assert!(!recovery.torn);
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let config = WalConfig::new(tmp_dir("torn"), FsyncPolicy::Async);
        let mut wal = WalShard::open(config.clone(), 0).expect("open");
        let mut bytes = Vec::new();
        for seq in 1..=3 {
            bytes.clear();
            encode_client(&event_frame(seq), &mut bytes);
            wal.append_frame(&bytes).expect("append");
        }
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the tail record.
        let path = config.wal_path(0);
        let full = std::fs::read(&path).expect("read back");
        for cut in 1..12 {
            std::fs::write(&path, &full[..full.len() - cut]).expect("truncate");
            let recovery = read_shard(&config, 0).expect("read");
            assert_eq!(recovery.frames.len(), 2, "cut {cut}: tail dropped");
            assert!(recovery.torn, "cut {cut}: torn tail reported");
        }
        // A corrupted byte mid-record fails its CRC and ends the replay.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        std::fs::write(&path, &flipped).expect("write corrupt");
        let recovery = read_shard(&config, 0).expect("read");
        assert!(recovery.frames.len() < 3);
        assert!(recovery.torn);
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    #[test]
    fn compaction_snapshots_and_truncates() {
        let mut config = WalConfig::new(tmp_dir("compact"), FsyncPolicy::Async);
        config.compact_bytes = 64;
        let mut wal = WalShard::open(config.clone(), 2).expect("open");
        let mut bytes = Vec::new();
        for seq in 1..=4 {
            bytes.clear();
            encode_client(&event_frame(seq), &mut bytes);
            wal.append_frame(&bytes).expect("append");
        }
        assert!(wal.should_compact());
        let mut pipeline = SessionPipeline::new(7, PipelineConfig::default());
        pipeline.feed(
            &recognizer(),
            4,
            InputEvent::new(
                EventKind::MouseDown {
                    button: grandma_events::Button::Left,
                },
                0.0,
                0.0,
                0.0,
            ),
            &mut Vec::new(),
        );
        let snapshots = vec![pipeline.snapshot()];
        wal.compact(&snapshots).expect("compact");
        assert!(!wal.should_compact());
        let recovery = read_shard(&config, 2).expect("read");
        assert_eq!(recovery.snapshots, snapshots);
        assert!(recovery.frames.is_empty(), "log truncated after compact");
        // New appends land in the truncated log.
        bytes.clear();
        encode_client(&event_frame(9), &mut bytes);
        wal.append_frame(&bytes).expect("append");
        let recovery = read_shard(&config, 2).expect("read");
        assert_eq!(recovery.frames, vec![event_frame(9)]);
        let _ = std::fs::remove_dir_all(&config.dir);
    }

    fn recognizer() -> grandma_core::EagerRecognizer {
        let data = grandma_synth::datasets::eight_way(0x2b2b, 6, 0);
        let (rec, _) = grandma_core::EagerRecognizer::train(
            &data.training,
            &grandma_core::FeatureMask::all(),
            &grandma_core::EagerConfig::default(),
        )
        .expect("training succeeds");
        rec
    }

    #[test]
    fn wal_dir_lock_is_exclusive_while_held() {
        let dir = tmp_dir("lock-exclusive");
        let lock = WalDirLock::acquire(&dir).expect("first acquire");
        let again = WalDirLock::acquire(&dir);
        let err = again.expect_err("second acquire must fail while held");
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        drop(lock);
        // Released on drop: a fresh acquire succeeds and the file is
        // re-stamped with our pid.
        let relock = WalDirLock::acquire(&dir).expect("acquire after drop");
        let stamped = std::fs::read_to_string(relock.path()).expect("read lock");
        assert_eq!(stamped.trim(), std::process::id().to_string());
        drop(relock);
        assert!(!dir.join(WAL_LOCK_FILE).exists(), "drop removes the file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_wal_dir_lock_from_dead_pid_is_reclaimed() {
        let dir = tmp_dir("lock-stale");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // No live process has pid u32::MAX (kernel pid_max is far
        // lower), so this lock is stale by construction; garbage
        // contents must be treated the same way.
        for stale in ["4294967295", "not-a-pid"] {
            std::fs::write(dir.join(WAL_LOCK_FILE), stale).expect("plant stale lock");
            let lock = WalDirLock::acquire(&dir).expect("reclaims stale lock");
            let stamped = std::fs::read_to_string(lock.path()).expect("read lock");
            assert_eq!(stamped.trim(), std::process::id().to_string());
            drop(lock);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_recover_empty() {
        let config = WalConfig::new(tmp_dir("missing"), FsyncPolicy::Async);
        let recovery = read_shard(&config, 0).expect("read");
        assert!(recovery.snapshots.is_empty());
        assert!(recovery.frames.is_empty());
        assert!(!recovery.torn);
    }
}
