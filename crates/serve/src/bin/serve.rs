//! The `serve` binary: train-and-persist a recognizer, then serve it
//! over TCP.
//!
//! ```text
//! serve train --out model.txt [--seed N] [--per-class N]
//! serve run --model model.txt [--addr 127.0.0.1:0] [--shards N]
//!           [--queue-capacity N] [--flush-bytes N] [--io-threads N]
//!           [--max-connections N] [--idle-timeout-ms N]
//!           [--poll-backend auto|poll|epoll]
//!           [--wal off|async|sync] [--wal-dir DIR] [--recover DIR]
//!           [--cluster-file PATH] [--node-id ID]
//! ```
//!
//! `--queue-capacity` bounds each shard's inbound queue (full queues
//! reject with `Busy`); `--flush-bytes` sets the per-connection encode
//! buffer's initial size — the retained-capacity ceiling is 16× that.
//! `--io-threads` sizes the reactor's poll-loop pool (0 = `min(4,
//! cores)`); `--max-connections` sheds connections beyond the cap at
//! accept time; `--idle-timeout-ms` reaps connections that send nothing
//! for the window (0 = never). `--poll-backend` picks the reactor's
//! readiness backend: `epoll` is O(ready) per wakeup, `poll` rebuilds
//! and scans the whole descriptor set (O(open)); `auto` (the default)
//! uses epoll on Linux and poll elsewhere. At startup the process
//! raises its soft `RLIMIT_NOFILE` to the hard limit (logged on
//! stderr) so high `--max-connections` settings don't hit EMFILE at
//! the distro-default 1024.
//!
//! `--wal` enables the per-shard write-ahead log (DESIGN.md §14):
//! `async` appends without fsync (survives process crashes), `sync`
//! fsyncs every append (survives power loss), `off` (the default) logs
//! nothing. `--wal-dir` picks the log directory (default `grandma-wal`);
//! starting with a WAL but *without* `--recover` clears any stale log
//! there first. `--recover DIR` replays DIR's snapshots + log tail into
//! the fresh router before accepting connections — run it after a crash
//! to resume every session that was live, then keep logging to the same
//! directory.
//!
//! `--cluster-file` joins a multi-node cluster (DESIGN.md §15): the
//! process registers `--node-id` (default `node-<pid>`) and its bound
//! address in the shared discovery file, installs the ownership fence
//! (foreign `Open`/`Resume` answered with `NotOwner { owner }`), and on
//! graceful shutdown deregisters, drains its live sessions, and hands
//! each one to its ring successor over wire-v4 `Handoff` frames. A WAL
//! directory is additionally guarded by a pid-stamped `wal.lock`: two
//! servers appending to the same shard logs would corrupt both.
//!
//! `run` loads a *persisted* recognizer (`grandma_core::persist`) rather
//! than retraining — a server restart serves the exact same classifier,
//! bit for bit. It prints `listening on <addr>` on stdout, serves until
//! stdin reaches EOF (or a line is entered) or `SIGINT`/`SIGTERM`
//! arrives, then shuts down gracefully — stops accepting, drains the
//! shards, seals live sessions into the WAL snapshot when one is
//! configured — and prints the service metrics snapshot as JSON.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use grandma_cluster::{read_cluster, register_node, remove_node};
use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
use grandma_serve::sys::{poll_fds, raise_nofile_limit, PollFd, SignalPipe, POLLIN, SIGINT, SIGTERM};
use grandma_serve::{
    encode_client, ClientFrame, FrameBuffer, FsyncPolicy, PollBackend, ServeConfig, ServerFrame,
    SessionRouter, TcpOptions, TcpService, WalConfig, WalDirLock, WIRE_VERSION,
};
use grandma_synth::datasets;

fn fail(msg: &str) -> ExitCode {
    let _ = writeln!(std::io::stderr(), "serve: {msg}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    fail(
        "usage:\n  serve train --out PATH [--seed N] [--per-class N]\n  \
         serve run --model PATH [--addr ADDR] [--shards N] \
         [--queue-capacity N] [--flush-bytes N] [--io-threads N] \
         [--max-connections N] [--idle-timeout-ms N] \
         [--poll-backend auto|poll|epoll] \
         [--wal off|async|sync] [--wal-dir DIR] [--recover DIR] \
         [--cluster-file PATH] [--node-id ID]",
    )
}

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Option<Self> {
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let name = flag.strip_prefix("--")?;
            let value = it.next()?;
            flags.push((name.to_string(), value.clone()));
        }
        Some(Self { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn cmd_train(args: &Args) -> ExitCode {
    let Some(out_path) = args.get("out") else {
        return fail("train requires --out PATH");
    };
    let seed = match args.get("seed").map(str::parse::<u64>) {
        None => 0x5EED,
        Some(Ok(s)) => s,
        Some(Err(_)) => return fail("--seed must be an integer"),
    };
    let per_class = match args.get("per-class").map(str::parse::<usize>) {
        None => 15,
        Some(Ok(n)) => n,
        Some(Err(_)) => return fail("--per-class must be an integer"),
    };
    let data = datasets::eight_way(seed, per_class, 0);
    let trained = EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default());
    let (rec, report) = match trained {
        Ok(pair) => pair,
        Err(e) => return fail(&format!("training failed: {e:?}")),
    };
    if let Err(e) = std::fs::write(out_path, rec.to_text()) {
        return fail(&format!("writing {out_path}: {e}"));
    }
    println!(
        "trained {} classes ({} examples/class, seed {seed:#x}); {} subgesture records; wrote {out_path}",
        data.class_names.len(),
        per_class,
        report.records.len()
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &Args) -> ExitCode {
    let Some(model_path) = args.get("model") else {
        return fail("run requires --model PATH");
    };
    let addr = args.get("addr").unwrap_or("127.0.0.1:0");
    let shards = match args.get("shards").map(str::parse::<usize>) {
        None => ServeConfig::default().shards,
        Some(Ok(n)) if n > 0 => n,
        _ => return fail("--shards must be a positive integer"),
    };
    let queue_capacity = match args.get("queue-capacity").map(str::parse::<usize>) {
        None => ServeConfig::default().queue_capacity,
        Some(Ok(n)) if n > 0 => n,
        _ => return fail("--queue-capacity must be a positive integer"),
    };
    let mut options = match args.get("flush-bytes").map(str::parse::<usize>) {
        None => TcpOptions::default(),
        Some(Ok(n)) if n > 0 => TcpOptions {
            flush_start: n,
            flush_max: n.saturating_mul(16),
            ..TcpOptions::default()
        },
        _ => return fail("--flush-bytes must be a positive integer"),
    };
    match args.get("io-threads").map(str::parse::<usize>) {
        None => {}
        Some(Ok(n)) => options.io_threads = n,
        Some(Err(_)) => return fail("--io-threads must be an integer (0 = auto)"),
    }
    match args.get("max-connections").map(str::parse::<usize>) {
        None => {}
        Some(Ok(n)) if n > 0 => options.max_connections = n,
        _ => return fail("--max-connections must be a positive integer"),
    }
    match args.get("idle-timeout-ms").map(str::parse::<u64>) {
        None => {}
        Some(Ok(n)) => options.idle_timeout_ms = n,
        Some(Err(_)) => return fail("--idle-timeout-ms must be an integer (0 = off)"),
    }
    match args.get("poll-backend").map(PollBackend::parse) {
        None => {}
        Some(Some(backend)) => options.poll_backend = backend,
        Some(None) => return fail("--poll-backend must be auto|poll|epoll"),
    }
    // Raise the open-file limit before binding: the reactor is sized
    // for tens of thousands of connections, far past the distro-default
    // soft limit of 1024. Soft→hard needs no privilege; a refusal
    // degrades to accept-time shedding.
    match raise_nofile_limit() {
        Ok((before, after)) if before != after => {
            eprintln!("serve: raised RLIMIT_NOFILE {before} -> {after}")
        }
        Ok((_, after)) => eprintln!("serve: RLIMIT_NOFILE already at {after}"),
        Err(e) => eprintln!("serve: could not read RLIMIT_NOFILE ({e}); keeping default"),
    }
    let text = match std::fs::read_to_string(model_path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("reading {model_path}: {e}")),
    };
    let rec = match EagerRecognizer::from_text(&text) {
        Ok(rec) => rec,
        Err(e) => return fail(&format!("loading {model_path}: {e:?}")),
    };
    let fsync = match args.get("wal") {
        None | Some("off") => None,
        Some("async") => Some(FsyncPolicy::Async),
        Some("sync") => Some(FsyncPolicy::Sync),
        Some(_) => return fail("--wal wants off|async|sync"),
    };
    let recover_dir = args.get("recover").map(std::path::PathBuf::from);
    // Recovery keeps logging to the same place unless told otherwise,
    // and implies a WAL (async) even when --wal wasn't given.
    let wal_dir = args
        .get("wal-dir")
        .map(std::path::PathBuf::from)
        .or_else(|| recover_dir.clone())
        .unwrap_or_else(|| std::path::PathBuf::from("grandma-wal"));
    let fsync = match (fsync, &recover_dir) {
        (None, Some(_)) => Some(FsyncPolicy::Async),
        (f, _) => f,
    };
    let wal = fsync.map(|policy| WalConfig::new(wal_dir.clone(), policy));
    // Exclusivity first: refuse to touch (let alone clear) a WAL
    // directory another live server is appending to.
    let _wal_lock = if wal.is_some() {
        match WalDirLock::acquire(&wal_dir) {
            Ok(lock) => Some(lock),
            Err(e) => return fail(&format!("locking wal dir {}: {e}", wal_dir.display())),
        }
    } else {
        None
    };
    // A WAL without recovery starts a fresh log: stale shard files from
    // an earlier run must not replay into this one later.
    if wal.is_some() && recover_dir.is_none() {
        if let Ok(entries) = std::fs::read_dir(&wal_dir) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().starts_with("shard-") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
    let config = ServeConfig {
        shards,
        queue_capacity,
        wal,
        ..ServeConfig::default()
    };
    // Install before serving so an early signal still shuts down
    // cleanly; without handlers (exotic platforms) fall back to the
    // stdin-only wait.
    let signals = match SignalPipe::install() {
        Ok(pipe) => Some(pipe),
        Err(e) => {
            eprintln!("serve: signal handling unavailable ({e}); use stdin EOF to stop");
            None
        }
    };
    let cluster_file = args.get("cluster-file").map(std::path::PathBuf::from);
    let node_id = match args.get("node-id") {
        Some(id) => id.to_string(),
        None => format!("node-{}", std::process::id()),
    };
    let router = SessionRouter::new(Arc::new(rec), config);
    if let Some(dir) = recover_dir {
        let source = WalConfig::new(dir, fsync.unwrap_or(FsyncPolicy::Async));
        match router.recover(&source) {
            Ok(report) => eprintln!(
                "serve: recovered {} sessions ({} frames, {} bytes) in {:.1} ms{}",
                report.sessions,
                report.frames,
                report.bytes,
                report.replay_ms,
                if report.torn {
                    " — torn tail dropped"
                } else {
                    ""
                }
            ),
            Err(e) => return fail(&format!("recovering WAL: {e}")),
        }
    }
    let mut service = match TcpService::start_with(router.clone(), addr, options) {
        Ok(service) => service,
        Err(e) => return fail(&format!("binding {addr}: {e}")),
    };
    let me = service.local_addr();
    if let Some(path) = &cluster_file {
        // Register only once the real bound address is known, then
        // fence: a session the ring maps elsewhere is answered with
        // NotOwner instead of being opened here. The fence re-reads the
        // registry per check and fails open — a torn or missing file
        // must degrade to single-node behavior, not refuse sessions.
        match register_node(path, &node_id, me) {
            Ok(view) => eprintln!(
                "serve: joined cluster as {node_id} at {me} ({} nodes, generation {})",
                view.nodes.len(),
                view.generation
            ),
            Err(e) => return fail(&format!("registering in {}: {e}", path.display())),
        }
        let fence_path = path.clone();
        router.set_fence(Arc::new(move |session| {
            let view = read_cluster(&fence_path).ok()?;
            match view.owner_addr(session) {
                Some(owner) if owner != me => Some(owner),
                _ => None,
            }
        }));
    }
    // Ignore stdout write failures throughout: a parent that closed the
    // pipe early must not turn a clean shutdown into a SIGPIPE panic.
    let _ = writeln!(std::io::stdout(), "listening on {}", service.local_addr());
    let _ = std::io::stdout().flush();
    wait_for_exit(signals.as_ref());
    if let Some(path) = &cluster_file {
        // Leave the ring first — peers' fences and refreshing clients
        // start routing to the successors — then move the live sessions
        // there over wire-v4 Handoff frames.
        let _ = remove_node(path, &node_id);
        match drain_and_handoff(&router, path) {
            Ok((moved, 0)) => eprintln!("serve: handed off {moved} sessions"),
            Ok((moved, failed)) => eprintln!(
                "serve: handed off {moved} sessions, {failed} left for WAL recovery"
            ),
            Err(e) => eprintln!("serve: handoff skipped: {e}"),
        }
    }
    // Graceful: stop accepting, drain the shards; with a WAL this also
    // seals live sessions into the snapshot for a later --recover.
    service.shutdown();
    let _ = writeln!(
        std::io::stdout(),
        "{}",
        service.metrics().snapshot().to_json()
    );
    ExitCode::SUCCESS
}

/// One outbound handoff connection to a peer node: a plain wire-v4
/// client that only ever sends `Handoff` frames.
struct HandoffPeer {
    stream: std::net::TcpStream,
    frames: FrameBuffer,
    scratch: Vec<u8>,
    chunk: Vec<u8>,
}

impl HandoffPeer {
    fn dial(addr: SocketAddr) -> Option<Self> {
        let stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5)).ok()?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
        let mut peer = Self {
            stream,
            frames: FrameBuffer::new(),
            scratch: Vec::new(),
            chunk: vec![0u8; 16 * 1024],
        };
        peer.write(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .ok()?;
        Some(peer)
    }

    fn write(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        self.scratch.clear();
        encode_client(frame, &mut self.scratch);
        self.stream.write_all(&self.scratch)
    }

    /// Sends one snapshot and waits for its `HandoffAck`; a fault, an
    /// undecodable reply, or any I/O failure counts as a refusal.
    fn handoff(&mut self, snapshot: &grandma_serve::SessionSnapshot) -> bool {
        let mut payload = Vec::new();
        snapshot.encode(&mut payload);
        if self
            .write(&ClientFrame::Handoff { snapshot: payload })
            .is_err()
        {
            return false;
        }
        loop {
            match self.frames.next_server() {
                Ok(Some(ServerFrame::HandoffAck { session, .. }))
                    if session == snapshot.session =>
                {
                    return true;
                }
                Ok(Some(ServerFrame::Fault { session, .. }))
                    if session == snapshot.session || session == 0 =>
                {
                    return false;
                }
                Ok(Some(_)) => {}
                Ok(None) => match self.stream.read(&mut self.chunk) {
                    Ok(0) | Err(_) => return false,
                    Ok(n) => self.frames.extend(self.chunk.get(..n).unwrap_or(&[])),
                },
                Err(_) => return false,
            }
        }
    }
}

/// Drains every live session off this node and hands each to the node
/// the (post-deregistration) ring maps it to, one cached connection per
/// peer. Returns `(moved, failed)`. A session whose handoff is refused
/// is restored into the local router so the final shutdown seals it
/// into the WAL snapshot instead of dropping it.
fn drain_and_handoff(
    router: &SessionRouter,
    cluster_file: &std::path::Path,
) -> Result<(usize, usize), String> {
    let snapshots = router.drain_sessions();
    if snapshots.is_empty() {
        return Ok((0, 0));
    }
    let view = read_cluster(cluster_file).map_err(|e| e.to_string())?;
    let mut peers: Vec<(SocketAddr, Option<HandoffPeer>)> = Vec::new();
    let mut moved = 0usize;
    let mut failed = 0usize;
    for snapshot in snapshots {
        let owner = view.owner_addr(snapshot.session);
        let sent = match owner {
            Some(addr) => {
                if !peers.iter().any(|(a, _)| *a == addr) {
                    peers.push((addr, HandoffPeer::dial(addr)));
                }
                peers
                    .iter_mut()
                    .find(|(a, _)| *a == addr)
                    .and_then(|(_, p)| p.as_mut())
                    .is_some_and(|p| p.handoff(&snapshot))
            }
            None => false,
        };
        if sent {
            moved += 1;
        } else {
            let _ = router.submit(grandma_serve::ShardMsg::Restore {
                snapshot: Box::new(snapshot),
            });
            failed += 1;
        }
    }
    Ok((moved, failed))
}

/// Blocks until stdin closes (or delivers a line) or a termination
/// signal arrives — whichever lets the parent or the operator stop the
/// server first.
fn wait_for_exit(signals: Option<&SignalPipe>) {
    let Some(pipe) = signals else {
        let mut line = String::new();
        let _ = std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut line);
        return;
    };
    loop {
        let mut fds = [PollFd::new(0, POLLIN), PollFd::new(pipe.fd(), POLLIN)];
        if poll_fds(&mut fds, -1).is_err() {
            return;
        }
        if let Some(signo) = pipe.triggered() {
            let name = match signo {
                SIGINT => "SIGINT",
                SIGTERM => "SIGTERM",
                _ => "signal",
            };
            eprintln!("serve: caught {name}, shutting down");
            return;
        }
        if fds[0].readable() {
            // Data or EOF on stdin: either way the parent is done with
            // us.
            return;
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = Args::parse(rest) else {
        return usage();
    };
    match cmd.as_str() {
        "train" => cmd_train(&args),
        "run" => cmd_run(&args),
        _ => usage(),
    }
}
