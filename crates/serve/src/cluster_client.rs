//! Cluster-aware client: route a session to its ring owner and follow
//! the service's redirects.
//!
//! [`ClusterClient`] wraps one [`ReconnectingClient`] with the routing
//! brain a multi-node deployment needs. At connect time it reads the
//! discovery file (DESIGN.md §15), builds the consistent-hash ring, and
//! dials the node that owns the session. From then on two signals can
//! move it:
//!
//! - **`NotOwner { owner }`** — the authoritative answer from a node
//!   whose ownership fence says the session hashes elsewhere. The
//!   client re-dials `owner` and `Resume`s the session there; the
//!   reconnecting layer re-sends the unacked window, so no event is
//!   lost or duplicated across the move.
//! - **Connection failure** — the owner may simply be dead. After the
//!   inner client gives up, the cluster client re-reads the discovery
//!   file; if the membership `generation` moved or the ring now maps
//!   the session to a different node, it redirects and resumes there
//!   (the handoff/recovery path is expected to have installed the
//!   session on its new owner).
//!
//! Both loops are bounded by [`MAX_ROUTE_HOPS`]: a cluster whose nodes
//! disagree about ownership surfaces as a typed
//! [`ClusterError::RoutingLoop`] instead of a livelock.
//!
//! Known limitation: `Open` is fire-and-forget on the wire, so a
//! session opened against a *stale* view is bounced asynchronously —
//! the `NotOwner` shows up in the frame stream, the client follows it,
//! and the subsequent `Resume` on the true owner is rejected with
//! `UnknownSession` (nothing ever opened there). Callers should open
//! sessions with a current discovery file; the redirect machinery is
//! for ownership changes *after* open, which is the case that matters
//! (drain, crash, membership change).

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use grandma_cluster::{read_cluster, ClusterView, DiscoveryError};
use grandma_events::InputEvent;

use crate::client::{ClientError, ReconnectingClient, RetryPolicy};
use crate::wire::ServerFrame;

/// Redirect/refresh cycles one operation may burn before the client
/// declares the cluster inconsistent. Each hop is a full dial + resume,
/// so this is generous: a healthy cluster resolves in one.
pub const MAX_ROUTE_HOPS: u32 = 4;

/// Why a cluster-routed operation failed for good.
#[derive(Debug)]
pub enum ClusterError {
    /// The discovery file could not be read or parsed.
    Discovery(DiscoveryError),
    /// The wire client failed and re-routing could not fix it.
    Client(ClientError),
    /// The discovery file lists no nodes: nothing can own the session.
    NoOwner,
    /// Redirects/refreshes exceeded [`MAX_ROUTE_HOPS`] without landing:
    /// nodes disagree about ownership (split registry, thrashing ring).
    RoutingLoop {
        /// Hops burned before giving up.
        hops: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Discovery(e) => write!(f, "cluster discovery: {e}"),
            ClusterError::Client(e) => write!(f, "cluster client: {e}"),
            ClusterError::NoOwner => write!(f, "cluster has no registered nodes"),
            ClusterError::RoutingLoop { hops } => {
                write!(f, "no node accepted ownership after {hops} redirects")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<DiscoveryError> for ClusterError {
    fn from(e: DiscoveryError) -> Self {
        ClusterError::Discovery(e)
    }
}

impl From<ClientError> for ClusterError {
    fn from(e: ClientError) -> Self {
        ClusterError::Client(e)
    }
}

/// A client for one session on a multi-node cluster. See the module
/// docs for the routing rules.
pub struct ClusterClient {
    path: PathBuf,
    view: ClusterView,
    inner: ReconnectingClient,
    /// A `NotOwner` spotted in the frame stream (rather than surfaced
    /// as an error): followed lazily at the next operation.
    pending_redirect: Option<SocketAddr>,
    /// Frames drained from the inner client, routing chatter removed.
    inbox: Vec<ServerFrame>,
    redirects: u64,
}

impl ClusterClient {
    /// Reads the discovery file at `cluster_file`, dials the node the
    /// ring maps `session` to, and opens the session there.
    pub fn connect(
        cluster_file: &Path,
        session: u64,
        policy: RetryPolicy,
    ) -> Result<Self, ClusterError> {
        let view = read_cluster(cluster_file)?;
        let owner = view.owner_addr(session).ok_or(ClusterError::NoOwner)?;
        let inner = ReconnectingClient::connect(owner, session, policy)?;
        Ok(Self {
            path: cluster_file.to_path_buf(),
            view,
            inner,
            pending_redirect: None,
            inbox: Vec::new(),
            redirects: 0,
        })
    }

    /// The session this client drives.
    pub fn session(&self) -> u64 {
        self.inner.session()
    }

    /// The node address currently believed to own the session.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Times the client moved to a different node (redirect or
    /// membership refresh).
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Times the inner connection was re-established after loss.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects()
    }

    /// Window events re-sent across all resumes.
    pub fn resent_events(&self) -> u64 {
        self.inner.resent_events()
    }

    /// The membership view the client last read.
    pub fn view(&self) -> &ClusterView {
        &self.view
    }

    /// Sends one event, following redirects as needed; returns the seq
    /// it was assigned.
    pub fn send_event(&mut self, event: InputEvent) -> Result<u32, ClusterError> {
        self.follow_pending();
        match self.inner.send_event(event) {
            Ok(seq) => {
                self.drain_inner();
                Ok(seq)
            }
            Err(e) => {
                // The event already sits in the unacked window with its
                // seq assigned; re-routing resumes the session on the
                // right node and re-sends the window, so feeding it
                // again would duplicate it.
                self.reroute(e)?;
                Ok(self.inner.last_assigned_seq())
            }
        }
    }

    /// Closes the session (following redirects) and returns every frame
    /// received over the client's lifetime.
    pub fn close(&mut self) -> Result<Vec<ServerFrame>, ClusterError> {
        self.follow_pending();
        let mut hops = 0u32;
        loop {
            match self.inner.close() {
                Ok(frames) => {
                    self.absorb(frames);
                    return Ok(std::mem::take(&mut self.inbox));
                }
                Err(e) => self.step_route(e, &mut hops)?,
            }
        }
    }

    /// Frames received so far, in order, with routing chatter
    /// (`NotOwner` for this session) filtered out and acted on.
    pub fn take_frames(&mut self) -> Vec<ServerFrame> {
        self.drain_inner();
        std::mem::take(&mut self.inbox)
    }

    /// Test/chaos hook: kill the connection abruptly.
    pub fn force_disconnect(&mut self) {
        self.inner.force_disconnect();
    }

    /// Sent-but-unacked events still in the resume window.
    pub fn unacked_events(&self) -> usize {
        self.inner.unacked_events()
    }

    /// Reads pending server frames (waiting up to `wait`) into the
    /// inbox without sending anything, re-routing if the read surfaces
    /// an ownership change.
    pub fn pump(&mut self, wait: std::time::Duration) -> Result<(), ClusterError> {
        self.follow_pending();
        if let Err(e) = self.inner.pump(wait) {
            self.reroute(e)?;
        }
        self.drain_inner();
        Ok(())
    }

    /// Follows a `NotOwner` previously spotted in the frame stream.
    fn follow_pending(&mut self) {
        if let Some(owner) = self.pending_redirect.take() {
            self.hop(owner);
        }
    }

    /// Files `frames` into the client's inbox, peeling off `NotOwner`
    /// chatter for this session and remembering the most recent owner
    /// hint for the next operation.
    fn absorb(&mut self, frames: Vec<ServerFrame>) {
        let session = self.inner.session();
        for frame in frames {
            match frame {
                ServerFrame::NotOwner { session: s, owner } if s == session => {
                    self.pending_redirect = Some(owner);
                }
                other => self.inbox.push(other),
            }
        }
    }

    /// Moves whatever the inner client has received into the inbox.
    fn drain_inner(&mut self) {
        let frames = self.inner.take_frames();
        self.absorb(frames);
    }

    fn hop(&mut self, owner: SocketAddr) {
        if owner != self.inner.addr() {
            self.redirects += 1;
        }
        self.inner.redirect(owner);
    }

    /// One routing step for a failed operation: follow an explicit
    /// redirect, or refresh membership and see whether the session
    /// moved. `Ok(())` means "retry the operation"; `Err` is final.
    fn step_route(&mut self, err: ClientError, hops: &mut u32) -> Result<(), ClusterError> {
        *hops += 1;
        if *hops > MAX_ROUTE_HOPS {
            return Err(ClusterError::RoutingLoop { hops: *hops });
        }
        match err {
            ClientError::Redirected { owner } => {
                self.hop(owner);
                Ok(())
            }
            other => {
                // The node may be dead or restarted: consult the
                // registry before giving up.
                let view = read_cluster(&self.path)?;
                let owner = view
                    .owner_addr(self.inner.session())
                    .ok_or(ClusterError::NoOwner)?;
                let generation_moved = view.generation != self.view.generation;
                self.view = view;
                if owner != self.inner.addr() {
                    self.hop(owner);
                    Ok(())
                } else if generation_moved {
                    // Same owner but the membership changed under us
                    // (e.g. the node re-registered after a restart):
                    // worth one more try.
                    Ok(())
                } else {
                    Err(ClusterError::Client(other))
                }
            }
        }
    }

    /// Re-routes until a node accepts the session or the hop budget is
    /// gone; used when an operation already failed.
    fn reroute(&mut self, first: ClientError) -> Result<(), ClusterError> {
        let mut hops = 0u32;
        let mut err = first;
        loop {
            self.step_route(err, &mut hops)?;
            match self.inner.reconnect() {
                Ok(()) => return Ok(()),
                Err(e) => err = e,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ServeConfig, SessionRouter, ShardMsg};
    use crate::tcp::TcpService;
    use grandma_cluster::{register_node, remove_node};
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_events::{Button, EventKind, EventScript};
    use grandma_synth::datasets;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x5eed, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    fn tmp_registry(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "grandma-cluster-client-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("cluster.json")
    }

    /// Starts one serve node, registers it in `file`, and installs an
    /// ownership fence that re-reads the registry on every check.
    fn start_node(
        id: &str,
        file: &Path,
        rec: Arc<EagerRecognizer>,
    ) -> (TcpService, Arc<SessionRouter>) {
        let router = SessionRouter::new(rec, ServeConfig::default());
        let service = TcpService::start(router.clone(), "127.0.0.1:0").expect("bind");
        let me = service.local_addr();
        register_node(file, id, me).expect("register");
        let path = file.to_path_buf();
        router.set_fence(Arc::new(move |session| {
            let view = read_cluster(&path).ok()?;
            match view.owner_addr(session) {
                Some(owner) if owner != me => Some(owner),
                _ => None,
            }
        }));
        (service, router)
    }

    fn two_gestures() -> Vec<grandma_events::InputEvent> {
        let data = datasets::eight_way(0x717e, 0, 2);
        EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .then_gesture(&data.testing[1].gesture, Button::Left)
            .into_events()
    }

    /// Index one past the first gesture's `MouseUp`: a cut point whose
    /// final event always produces an acking `Outcome` frame.
    fn first_gesture_len(events: &[grandma_events::InputEvent]) -> usize {
        events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MouseUp { .. }))
            .expect("script contains an up event")
            + 1
    }

    fn pump_until_quiesced(client: &mut ClusterClient) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.unacked_events() > 0 {
            assert!(Instant::now() < deadline, "client never quiesced");
            client.pump(Duration::from_millis(10)).expect("pump");
        }
    }

    fn substantive(frames: Vec<ServerFrame>) -> Vec<ServerFrame> {
        frames
            .into_iter()
            .filter(|f| {
                matches!(
                    f,
                    ServerFrame::Recognized { .. }
                        | ServerFrame::Manipulate { .. }
                        | ServerFrame::Outcome { .. }
                )
            })
            .collect()
    }

    /// The same session driven start-to-finish on a single unmolested
    /// node: the byte-level truth a migrated run must match.
    fn control_run(
        rec: Arc<EagerRecognizer>,
        session: u64,
        events: &[grandma_events::InputEvent],
        tag: &str,
    ) -> Vec<ServerFrame> {
        let file = tmp_registry(tag);
        let (mut service, router) = start_node("solo", &file, rec);
        let mut client =
            ClusterClient::connect(&file, session, RetryPolicy::default()).expect("connect");
        for &event in events {
            client.send_event(event).expect("send");
        }
        let frames = substantive(client.close().expect("close"));
        service.shutdown();
        router.shutdown();
        let _ = std::fs::remove_dir_all(file.parent().expect("parent"));
        frames
    }

    /// Moves every session off `from` onto `to` via drain + Handoff,
    /// acking each snapshot, and drops `from` from the registry.
    fn migrate_all(
        file: &Path,
        from_id: &str,
        from: &SessionRouter,
        to: &SessionRouter,
    ) -> usize {
        let snapshots = from.drain_sessions();
        let moved = snapshots.len();
        for snapshot in snapshots {
            let session = snapshot.session;
            let last_seq = snapshot.last_seq;
            let (tx, rx) = std::sync::mpsc::channel();
            to.submit(ShardMsg::Handoff {
                conn: 0,
                snapshot: Box::new(snapshot),
                reply: tx.into(),
            })
            .expect("submit handoff");
            match rx.recv_timeout(Duration::from_secs(5)) {
                Ok(ServerFrame::HandoffAck {
                    session: s,
                    last_seq: l,
                }) => {
                    assert_eq!((s, l), (session, last_seq));
                }
                other => panic!("expected HandoffAck, got {other:?}"),
            }
        }
        remove_node(file, from_id).expect("deregister");
        moved
    }

    #[test]
    fn routes_to_the_ring_owner_and_survives_node_death() {
        let rec = recognizer();
        let file = tmp_registry("death");
        let (mut svc_a, router_a) = start_node("a", &file, rec.clone());
        let (mut svc_b, router_b) = start_node("b", &file, rec.clone());
        let view = read_cluster(&file).expect("read");
        let session = (1..500u64)
            .find(|&s| view.owner_addr(s) == Some(svc_a.local_addr()))
            .expect("some session maps to node a");
        let events = two_gestures();
        let cut = first_gesture_len(&events);
        let control = control_run(rec, session, &events, "death-control");

        let policy = RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            ..RetryPolicy::default()
        };
        let mut client = ClusterClient::connect(&file, session, policy).expect("connect");
        assert_eq!(client.addr(), svc_a.local_addr(), "must dial the ring owner");
        let mut moved_frames = Vec::new();
        for &event in &events[..cut] {
            client.send_event(event).expect("send");
        }
        pump_until_quiesced(&mut client);
        moved_frames.extend(client.take_frames());

        // Node a dies after its sessions were handed to node b.
        assert_eq!(migrate_all(&file, "a", &router_a, &router_b), 1);
        svc_a.shutdown();
        router_a.shutdown();

        for &event in &events[cut..] {
            client.send_event(event).expect("send survives the dead node");
        }
        moved_frames.extend(client.close().expect("close"));
        assert_eq!(client.addr(), svc_b.local_addr(), "ends on the successor");
        assert!(client.redirects() >= 1, "membership refresh must redirect");
        assert_eq!(
            substantive(moved_frames),
            control,
            "migrated session must match the unmoved control byte for byte"
        );
        let metrics = router_b.metrics().snapshot();
        assert_eq!(metrics.sessions_handed_off, 1);
        assert_eq!(metrics.sessions_resumed, 1);
        svc_b.shutdown();
        router_b.shutdown();
        let _ = std::fs::remove_dir_all(file.parent().expect("parent"));
    }

    #[test]
    fn follows_a_not_owner_bounce_from_a_live_node() {
        let rec = recognizer();
        let file = tmp_registry("bounce");
        let (mut svc_a, router_a) = start_node("a", &file, rec.clone());
        let (mut svc_b, router_b) = start_node("b", &file, rec.clone());
        let view = read_cluster(&file).expect("read");
        let session = (1..500u64)
            .find(|&s| view.owner_addr(s) == Some(svc_a.local_addr()))
            .expect("some session maps to node a");
        let events = two_gestures();
        let cut = first_gesture_len(&events);
        let control = control_run(rec, session, &events, "bounce-control");

        let mut client =
            ClusterClient::connect(&file, session, RetryPolicy::default()).expect("connect");
        let mut moved_frames = Vec::new();
        for &event in &events[..cut] {
            client.send_event(event).expect("send");
        }
        pump_until_quiesced(&mut client);
        moved_frames.extend(client.take_frames());

        // The session moves to node b but node a stays up: the next
        // resume lands on a, whose fence answers NotOwner, and the
        // client must follow the bounce instead of erroring.
        assert_eq!(migrate_all(&file, "a", &router_a, &router_b), 1);
        client.force_disconnect();

        for &event in &events[cut..] {
            client.send_event(event).expect("send follows the redirect");
        }
        moved_frames.extend(client.close().expect("close"));
        assert_eq!(client.addr(), svc_b.local_addr(), "ends on the new owner");
        assert!(client.redirects() >= 1, "NotOwner must count as a redirect");
        assert_eq!(
            substantive(moved_frames),
            control,
            "bounced session must match the unmoved control byte for byte"
        );
        assert!(
            router_a.metrics().snapshot().not_owner_redirects >= 1,
            "node a must have fenced the resume"
        );
        assert_eq!(router_b.metrics().snapshot().sessions_handed_off, 1);
        svc_a.shutdown();
        router_a.shutdown();
        svc_b.shutdown();
        router_b.shutdown();
        let _ = std::fs::remove_dir_all(file.parent().expect("parent"));
    }
}
