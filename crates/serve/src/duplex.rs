//! The in-process duplex transport: a client handle wired straight into
//! a [`SessionRouter`] with no socket in between.
//!
//! `Duplex` exists for deterministic tests and for embedding the service
//! in-process, but it is not a shortcut past the protocol: every client
//! frame is *encoded to bytes and decoded back* before it reaches the
//! router, and every server frame is encoded and decoded again on
//! receipt. A frame that would not survive the TCP transport does not
//! survive `Duplex` either, which is what makes "byte-identical to the
//! in-process pipeline" a meaningful claim in the loopback test.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::router::{SessionRouter, ShardMsg, SubmitError};
use crate::wire::{
    decode_client, decode_server, encode_client, encode_server, ClientFrame, FaultCode,
    OutcomeKind, ServerFrame, WireError, MIN_WIRE_VERSION, WIRE_VERSION,
};

/// Why a duplex operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DuplexError {
    /// The router has shut down.
    Closed,
    /// A frame failed to survive its own encode→decode round trip —
    /// always a bug in the codec, surfaced rather than masked.
    Codec(WireError),
}

impl std::fmt::Display for DuplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DuplexError::Closed => write!(f, "router is shut down"),
            DuplexError::Codec(e) => write!(f, "codec round-trip failed: {e}"),
        }
    }
}

impl std::error::Error for DuplexError {}

/// An in-process client connection. Each `Duplex` owns one reply channel,
/// mirroring one TCP connection; sessions opened through it deliver their
/// frames here.
pub struct Duplex {
    router: Arc<SessionRouter>,
    conn: u64,
    reply_tx: Sender<ServerFrame>,
    reply_rx: Receiver<ServerFrame>,
    hello_ok: bool,
}

impl Duplex {
    /// Connects to the router. Like a TCP client, the connection must
    /// send [`ClientFrame::Hello`] before anything else, and holds its
    /// own connection identity: sessions it opens belong to it alone.
    pub fn connect(router: Arc<SessionRouter>) -> Self {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let conn = router.new_conn_id();
        Self {
            router,
            conn,
            reply_tx,
            reply_rx,
            hello_ok: false,
        }
    }

    /// Sends one client frame through the full codec and into the
    /// router. Backpressure (`Busy`) and protocol rejections surface as
    /// [`ServerFrame::Fault`]s on the receive side, exactly as they do
    /// over TCP; only codec bugs and a dead router are `Err`.
    pub fn send(&mut self, frame: &ClientFrame) -> Result<(), DuplexError> {
        // The wire round trip: what the TCP transport would do.
        let mut bytes = Vec::with_capacity(48);
        encode_client(frame, &mut bytes);
        let decoded = match decode_client(&bytes) {
            Ok(Some((decoded, _))) => decoded,
            Ok(None) => return Err(DuplexError::Codec(WireError::EmptyFrame)),
            Err(e) => return Err(DuplexError::Codec(e)),
        };
        match decoded {
            ClientFrame::Hello { version } => {
                if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    self.hello_ok = true;
                } else {
                    let _ = self.reply_tx.send(ServerFrame::Fault {
                        session: 0,
                        seq: 0,
                        code: FaultCode::VersionMismatch,
                    });
                }
                Ok(())
            }
            ClientFrame::Open { session } => self.submit(
                session,
                0,
                ShardMsg::Open {
                    conn: self.conn,
                    session,
                    seq: 0,
                    reply: self.reply_tx.clone().into(),
                },
            ),
            ClientFrame::Event {
                session,
                seq,
                event,
            } => self.submit(
                session,
                seq,
                ShardMsg::Event {
                    conn: self.conn,
                    session,
                    seq,
                    event,
                    reply: self.reply_tx.clone().into(),
                },
            ),
            ClientFrame::EventBatch { session, events } => {
                // Mirror the TCP reader: the decoded records land in a
                // pooled buffer that crosses the shard queue as one
                // message. A Busy rejection echoes the first record's
                // seq, and `submit` recycles the rejected buffer.
                let first_seq = events.first().map(|&(s, _)| s).unwrap_or(0);
                let mut batch = self.router.batch_pool().take();
                batch.extend_from_slice(&events);
                self.submit(
                    session,
                    first_seq,
                    ShardMsg::EventBatch {
                        conn: self.conn,
                        session,
                        events: batch,
                        reply: self.reply_tx.clone().into(),
                    },
                )
            }
            ClientFrame::Close { session, seq } => self.submit(
                session,
                seq,
                ShardMsg::Close {
                    conn: self.conn,
                    session,
                    seq,
                    reply: self.reply_tx.clone().into(),
                },
            ),
            ClientFrame::Resume { session, last_seq } => self.submit(
                session,
                last_seq,
                ShardMsg::Resume {
                    conn: self.conn,
                    session,
                    reply: self.reply_tx.clone().into(),
                },
            ),
            ClientFrame::Handoff { snapshot } => {
                // Mirror the TCP reader: an undecodable snapshot is a
                // protocol violation, answered with `BadFrame`; a good
                // one crosses the shard queue like a peer-driven Restore.
                match crate::session::SessionSnapshot::decode(&snapshot) {
                    Ok((snap, _)) => {
                        let session = snap.session;
                        self.submit(
                            session,
                            0,
                            ShardMsg::Handoff {
                                conn: self.conn,
                                snapshot: Box::new(snap),
                                reply: self.reply_tx.clone().into(),
                            },
                        )
                    }
                    Err(_) => {
                        let _ = self.reply_tx.send(ServerFrame::Fault {
                            session: 0,
                            seq: 0,
                            code: FaultCode::BadFrame,
                        });
                        Ok(())
                    }
                }
            }
        }
    }

    fn submit(&mut self, session: u64, seq: u32, msg: ShardMsg) -> Result<(), DuplexError> {
        if !self.hello_ok {
            let _ = self.reply_tx.send(ServerFrame::Fault {
                session,
                seq,
                code: FaultCode::BadFrame,
            });
            return Ok(());
        }
        match self.router.submit(msg) {
            Ok(()) => Ok(()),
            Err(SubmitError::Busy) => {
                let _ = self.reply_tx.send(ServerFrame::Fault {
                    session,
                    seq,
                    code: FaultCode::Busy,
                });
                Ok(())
            }
            Err(SubmitError::Closed) => Err(DuplexError::Closed),
        }
    }

    /// Receives the next server frame, waiting up to `timeout`. The frame
    /// is pushed through its own encode→decode round trip before being
    /// returned. `Ok(None)` on timeout or when every sender is gone.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<ServerFrame>, DuplexError> {
        let frame = match self.reply_rx.recv_timeout(timeout) {
            Ok(frame) => frame,
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => return Ok(None),
        };
        let mut bytes = Vec::with_capacity(48);
        encode_server(&frame, &mut bytes);
        match decode_server(&bytes) {
            Ok(Some((decoded, _))) => Ok(Some(decoded)),
            Ok(None) => Err(DuplexError::Codec(WireError::EmptyFrame)),
            Err(e) => Err(DuplexError::Codec(e)),
        }
    }

    /// Receives frames until an [`OutcomeKind::Closed`] marker for
    /// `session` arrives (inclusive) or `timeout` elapses with nothing
    /// new.
    pub fn recv_session_until_closed(
        &mut self,
        session: u64,
        timeout: Duration,
    ) -> Result<Vec<ServerFrame>, DuplexError> {
        let mut out = Vec::new();
        while let Some(frame) = self.recv_timeout(timeout)? {
            let done = matches!(
                frame,
                ServerFrame::Outcome {
                    session: s,
                    outcome: OutcomeKind::Closed,
                    ..
                } if s == session
            );
            out.push(frame);
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// The router this connection talks to.
    pub fn router(&self) -> &Arc<SessionRouter> {
        &self.router
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServeConfig;
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_events::{Button, EventScript};
    use grandma_synth::datasets;

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    #[test]
    fn duplex_matches_the_inproc_reference() {
        use crate::session::{run_events_inproc, PipelineConfig};
        let rec = recognizer();
        let router = SessionRouter::new(rec.clone(), ServeConfig::default());
        let data = datasets::eight_way(0x7e57, 0, 2);
        let events: Vec<_> = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .then_gesture(&data.testing[1].gesture, Button::Left)
            .into_events()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect();
        let close_seq = events.len() as u32;
        let expected = run_events_inproc(&rec, 77, &PipelineConfig::default(), &events, close_seq);

        let mut client = Duplex::connect(router.clone());
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION,
            })
            .expect("hello");
        client.send(&ClientFrame::Open { session: 77 }).expect("open");
        for &(seq, event) in &events {
            client
                .send(&ClientFrame::Event {
                    session: 77,
                    seq,
                    event,
                })
                .expect("event");
        }
        client
            .send(&ClientFrame::Close {
                session: 77,
                seq: close_seq,
            })
            .expect("close");
        let got = client
            .recv_session_until_closed(77, Duration::from_secs(10))
            .expect("frames");
        assert_eq!(got, expected);
        router.shutdown();
    }

    #[test]
    fn frames_before_hello_are_rejected() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let mut client = Duplex::connect(router.clone());
        client.send(&ClientFrame::Open { session: 1 }).expect("send");
        let frame = client
            .recv_timeout(Duration::from_secs(5))
            .expect("recv")
            .expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                code: FaultCode::BadFrame,
                ..
            }
        ));
        router.shutdown();
    }

    #[test]
    fn unknown_session_event_is_faulted_back() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let mut client = Duplex::connect(router.clone());
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION,
            })
            .expect("hello");
        client
            .send(&ClientFrame::Event {
                session: 404,
                seq: 9,
                event: grandma_events::InputEvent::new(
                    grandma_events::EventKind::MouseMove,
                    0.0,
                    0.0,
                    0.0,
                ),
            })
            .expect("send");
        let frame = client
            .recv_timeout(Duration::from_secs(5))
            .expect("recv")
            .expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                session: 404,
                seq: 9,
                code: FaultCode::UnknownSession,
            }
        ));
        router.shutdown();
    }

    #[test]
    fn sessions_are_isolated_between_duplex_connections() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let mut owner = Duplex::connect(router.clone());
        let mut intruder = Duplex::connect(router.clone());
        for client in [&mut owner, &mut intruder] {
            client
                .send(&ClientFrame::Hello {
                    version: WIRE_VERSION,
                })
                .expect("hello");
        }
        owner.send(&ClientFrame::Open { session: 1 }).expect("open");
        // A different connection cannot close the owner's session.
        intruder
            .send(&ClientFrame::Close { session: 1, seq: 0 })
            .expect("send");
        let frame = intruder
            .recv_timeout(Duration::from_secs(5))
            .expect("recv")
            .expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                code: FaultCode::UnknownSession,
                ..
            }
        ));
        // The owner's session is still live and closes normally.
        owner
            .send(&ClientFrame::Close { session: 1, seq: 1 })
            .expect("close");
        let frames = owner
            .recv_session_until_closed(1, Duration::from_secs(10))
            .expect("frames");
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        router.shutdown();
        assert_eq!(router.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn version_mismatch_is_reported() {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let mut client = Duplex::connect(router.clone());
        client
            .send(&ClientFrame::Hello {
                version: WIRE_VERSION + 1,
            })
            .expect("send");
        let frame = client
            .recv_timeout(Duration::from_secs(5))
            .expect("recv")
            .expect("fault frame");
        assert!(matches!(
            frame,
            ServerFrame::Fault {
                code: FaultCode::VersionMismatch,
                ..
            }
        ));
        router.shutdown();
    }
}
