//! The TCP front-end: a `std::net::TcpListener` accept loop feeding the
//! [`SessionRouter`], one reader thread and one writer thread per
//! connection.
//!
//! Connection protocol:
//!
//! 1. The first frame must be [`ClientFrame::Hello`] with a matching
//!    [`WIRE_VERSION`]; anything else earns a `Fault` and the connection
//!    is dropped.
//! 2. `Open`/`Event`/`Close` frames route to the session's shard. A full
//!    shard queue bounces the frame back as `Fault(Busy)` — the bytes
//!    are never buffered beyond the bounded shard queue.
//! 3. Undecodable bytes produce `Fault(BadFrame)` and close the
//!    connection; the decoder returns typed errors and never panics, so
//!    hostile input costs one connection, not the process.
//! 4. On EOF (or error) the reader submits `Close` for every session the
//!    connection still has open, so abandoned connections cannot leak
//!    sessions.
//!
//! Shutdown is graceful and idempotent: stop the accept loop (a self-
//! connection unblocks `accept`), shut down every live connection's
//! socket to unblock its reader, join all connection threads, then shut
//! down the router (which finalizes any remaining sessions).

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::metrics::ServiceMetrics;
use crate::router::{SessionRouter, ShardMsg, SubmitError};
use crate::wire::{
    encode_server, ClientFrame, FaultCode, FrameBuffer, ServerFrame, WIRE_VERSION,
};

/// Live-connection registry shared between the accept loop and shutdown.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The running TCP service. Dropping it shuts everything down.
pub struct TcpService {
    router: Arc<SessionRouter>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<ConnRegistry>,
}

impl TcpService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections for `router`.
    pub fn start(router: Arc<SessionRouter>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnRegistry::default());
        let accept_thread = {
            let router = router.clone();
            let stop = stop.clone();
            let registry = registry.clone();
            std::thread::Builder::new()
                .name("grandma-accept".into())
                .spawn(move || accept_loop(listener, router, stop, registry))?
        };
        Ok(Self {
            router,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            registry,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this front-end.
    pub fn router(&self) -> &Arc<SessionRouter> {
        &self.router
    }

    /// The shared service metrics.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.router.metrics()
    }

    /// Gracefully stops accepting, drains and joins every connection,
    /// and shuts the router down. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Unblock each connection's blocking read.
        for stream in lock_or_recover(&self.registry.streams).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads = {
            let mut guard = lock_or_recover(&self.registry.threads);
            std::mem::take(&mut *guard)
        };
        for handle in threads {
            let _ = handle.join();
        }
        self.router.shutdown();
    }
}

impl Drop for TcpService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<SessionRouter>,
    stop: Arc<AtomicBool>,
    registry: Arc<ConnRegistry>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            // The shutdown self-connection (or a late client): drop it.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            lock_or_recover(&registry.streams).push(clone);
        }
        let conn_router = router.clone();
        let spawned = std::thread::Builder::new()
            .name("grandma-conn".into())
            .spawn(move || handle_connection(stream, conn_router));
        if let Ok(handle) = spawned {
            lock_or_recover(&registry.threads).push(handle);
        }
    }
}

/// Sends `frame` to the connection's writer; a dead writer just means the
/// client is gone.
fn reply(tx: &Sender<ServerFrame>, frame: ServerFrame) {
    let _ = tx.send(frame);
}

/// One connection: reads frames, routes them, and on exit closes every
/// session the connection left open.
fn handle_connection(mut stream: TcpStream, router: Arc<SessionRouter>) {
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<ServerFrame>();
    let writer = stream.try_clone().ok().and_then(|mut out| {
        std::thread::Builder::new()
            .name("grandma-conn-writer".into())
            .spawn(move || {
                let mut bytes = Vec::with_capacity(4096);
                while let Ok(frame) = reply_rx.recv() {
                    bytes.clear();
                    encode_server(&frame, &mut bytes);
                    // Opportunistically coalesce whatever else is queued.
                    while bytes.len() < 16 * 1024 {
                        match reply_rx.try_recv() {
                            Ok(next) => encode_server(&next, &mut bytes),
                            Err(_) => break,
                        }
                    }
                    if out.write_all(&bytes).is_err() {
                        return;
                    }
                    let _ = out.flush();
                }
            })
            .ok()
    });

    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut hello_ok = false;
    let mut open_sessions: HashSet<u64> = HashSet::new();
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        frames.extend(chunk.get(..n).unwrap_or(&[]));
        loop {
            let frame = match frames.next_client() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    router
                        .metrics()
                        .decode_errors
                        .fetch_add(1, Ordering::Relaxed);
                    reply(
                        &reply_tx,
                        ServerFrame::Fault {
                            session: 0,
                            seq: 0,
                            code: FaultCode::BadFrame,
                        },
                    );
                    break 'conn;
                }
            };
            if !hello_ok {
                match frame {
                    ClientFrame::Hello { version } if version == WIRE_VERSION => {
                        hello_ok = true;
                        continue;
                    }
                    ClientFrame::Hello { .. } => {
                        reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session: 0,
                                seq: 0,
                                code: FaultCode::VersionMismatch,
                            },
                        );
                    }
                    _ => {
                        reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session: 0,
                                seq: 0,
                                code: FaultCode::BadFrame,
                            },
                        );
                    }
                }
                break 'conn;
            }
            match frame {
                ClientFrame::Hello { .. } => {
                    // A second Hello is harmless; ignore it.
                }
                ClientFrame::Open { session } => {
                    let msg = ShardMsg::Open {
                        session,
                        seq: 0,
                        reply: reply_tx.clone(),
                    };
                    match router.submit(msg) {
                        Ok(()) => {
                            open_sessions.insert(session);
                        }
                        Err(SubmitError::Busy) => reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session,
                                seq: 0,
                                code: FaultCode::Busy,
                            },
                        ),
                        Err(SubmitError::Closed) => break 'conn,
                    }
                }
                ClientFrame::Event {
                    session,
                    seq,
                    event,
                } => match router.submit(ShardMsg::Event {
                    session,
                    seq,
                    event,
                }) {
                    Ok(()) => {}
                    Err(SubmitError::Busy) => reply(
                        &reply_tx,
                        ServerFrame::Fault {
                            session,
                            seq,
                            code: FaultCode::Busy,
                        },
                    ),
                    Err(SubmitError::Closed) => break 'conn,
                },
                ClientFrame::Close { session, seq } => {
                    open_sessions.remove(&session);
                    match submit_close(&router, session, seq) {
                        Ok(()) => {}
                        Err(SubmitError::Busy) => reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session,
                                seq,
                                code: FaultCode::Busy,
                            },
                        ),
                        Err(SubmitError::Closed) => break 'conn,
                    }
                }
            }
        }
    }
    // Reap sessions the connection abandoned so their pipelines finalize.
    for session in open_sessions {
        let _ = submit_close(&router, session, u32::MAX);
    }
    drop(reply_tx);
    if let Some(handle) = writer {
        let _ = handle.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Close is the one message worth briefly retrying under backpressure:
/// losing it leaks the session until connection teardown.
fn submit_close(router: &Arc<SessionRouter>, session: u64, seq: u32) -> Result<(), SubmitError> {
    for _ in 0..64 {
        match router.submit(ShardMsg::Close { session, seq }) {
            Err(SubmitError::Busy) => std::thread::sleep(std::time::Duration::from_micros(250)),
            other => return other,
        }
    }
    Err(SubmitError::Busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServeConfig;
    use crate::wire::{encode_client, OutcomeKind};
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_synth::datasets;
    use std::time::Duration;

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    fn read_server_frames(stream: &mut TcpStream, until_closed_for: u64) -> Vec<ServerFrame> {
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        let mut out = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return out,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("valid server bytes") {
                let done = matches!(
                    frame,
                    ServerFrame::Outcome {
                        session,
                        outcome: OutcomeKind::Closed,
                        ..
                    } if session == until_closed_for
                );
                out.push(frame);
                if done {
                    return out;
                }
            }
        }
    }

    #[test]
    fn tcp_session_round_trips_and_shuts_down() {
        use grandma_events::{Button, EventScript};
        let service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut service = service;
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 1 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session: 1,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 1,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 1);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        assert_eq!(service.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn garbage_bytes_fault_and_close_the_connection() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        stream
            .write_all(&[0xFF; 64])
            .expect("write garbage");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 256];
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut got_fault = false;
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("server bytes") {
                if matches!(
                    frame,
                    ServerFrame::Fault {
                        code: FaultCode::BadFrame,
                        ..
                    }
                ) {
                    got_fault = true;
                }
            }
            if got_fault {
                break;
            }
        }
        assert!(got_fault, "hostile bytes must earn a BadFrame fault");
        service.shutdown();
        assert!(service.metrics().snapshot().decode_errors >= 1);
    }

    #[test]
    fn dropped_connection_reaps_its_sessions() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        {
            let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
            let mut bytes = Vec::new();
            encode_client(
                &ClientFrame::Hello {
                    version: WIRE_VERSION,
                },
                &mut bytes,
            );
            encode_client(&ClientFrame::Open { session: 9 }, &mut bytes);
            stream.write_all(&bytes).expect("write");
            stream.flush().expect("flush");
            // Give the server a moment to register the session, then
            // vanish without a Close.
            std::thread::sleep(Duration::from_millis(100));
        }
        // Shutdown joins the reader, which must have closed session 9.
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1, "{snap:?}");
    }
}
