//! The TCP front-end: a readiness-driven reactor. One blocking accept
//! thread hands nonblocking sockets to a small pool of I/O threads
//! (default `min(4, cores)`), each running a [`crate::sys::Poller`]
//! loop — epoll(7) on Linux by default, poll(2) elsewhere or on request
//! ([`PollBackend`]) — that multiplexes hundreds of thousands of
//! connections through a per-connection frame state machine: read
//! buffer → [`FrameBuffer`] decode → dispatch to the [`SessionRouter`];
//! reply frames are encoded into a per-connection pending-write buffer
//! drained when the socket is writable. The I/O layer only decodes,
//! encodes, and forwards — all session state stays on shard threads
//! (DESIGN.md §13).
//!
//! Readiness dispatch is O(ready), not O(open): each connection
//! registers with the poller once at accept (token = conn id, waker
//! pipe = token 0), the reactor tracks the interest mask it last
//! installed ([`Conn::interest`]) and issues a modify only on actual
//! transitions (pending output appears/drains, half-close flips the
//! connection write-only), and each wakeup walks only the returned
//! ready set instead of rebuilding and re-scanning a `pollfd` array.
//! Maintenance work is driven by the same principle — only connections
//! touched by shard replies or readiness get flushed/checked; the sole
//! remaining O(open) scan is idle reaping, gated to at most one sweep
//! per reap tick.
//!
//! Connection protocol (unchanged from the thread-per-connection
//! transport it replaces — the loopback and batch-equivalence suites
//! hold the reactor byte-identical):
//!
//! 1. The first frame must be a `Hello` whose version falls in
//!    [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]; anything else earns a
//!    `Fault` and the connection is dropped. v1 clients speak
//!    single-`Event` frames; v2 clients may also send `EventBatch`.
//! 2. `Open`/`Event`/`EventBatch`/`Close` frames route to the session's
//!    shard. A full shard queue bounces `Open`/`Event`/`EventBatch`
//!    back as `Fault(Busy)`; a busy `Close` is queued transport-side
//!    and retried each reactor iteration (losing it would leak the
//!    session until teardown). The bytes are never buffered beyond the
//!    bounded shard queue. When a cluster fence is installed
//!    ([`SessionRouter::set_fence`]), `Open`/`Resume` for sessions the
//!    ring maps to another node answer `NotOwner { owner }` instead of
//!    being admitted; v4 `Handoff` frames bypass the fence (the sending
//!    peer routed them here on purpose).
//! 3. Undecodable bytes produce `Fault(BadFrame)`; the fault is flushed
//!    and the connection closed. The decoder returns typed errors and
//!    never panics, so hostile input costs one connection, not the
//!    process.
//! 4. On EOF, error, or idle timeout the reactor submits `Close` for
//!    every session the connection still has open, so abandoned
//!    connections cannot leak sessions.
//! 5. Each connection holds a [`SessionRouter::new_conn_id`] identity
//!    stamped on every message it routes; the shard rejects `Event`/
//!    `Close` from any connection other than the session's opener with
//!    `Fault(UnknownSession)`, so one connection can neither feed nor
//!    tear down another's sessions.
//!
//! Reply path: shard workers deliver frames through a
//! [`ReplyBridge`] keyed by conn id — `deliver` enqueues `(conn,
//! frame)` on the owning I/O thread's queue and pokes its
//! [`crate::sys::Waker`]; wakes while the loop is busy coalesce into
//! nothing (counted by `reactor_wakeups` only when a pipe write was
//! actually consumed). Connections are assigned to I/O threads
//! round-robin by conn id, so delivery needs no shared routing table.
//!
//! The accept loop degrades under pressure instead of failing: accept
//! errors back off exponentially (1 ms doubling to 1 s), fd exhaustion
//! (EMFILE/ENFILE) releases a reserve descriptor to accept-and-shed the
//! newest connection (counted by `connections_shed`), and connections
//! beyond `max_connections` are shed the same way. An optional idle
//! timeout reaps connections that have sent no frames for the window.
//!
//! Shutdown is graceful and idempotent: stop the accept loop (a self-
//! connection unblocks `accept`), wake and join every I/O thread (each
//! tears down its connections, closing their abandoned sessions), then
//! shut down the router — the teardown `Close`s are queued ahead of the
//! router's `Shutdown`, so they are processed first.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::ServiceMetrics;
use crate::router::{ReplyBridge, ReplyTx, SessionRouter, ShardMsg, SubmitError};
use crate::session::SessionSnapshot;
use crate::sys::{Backend, Poller, Ready, Waker, POLLIN, POLLOUT};
use crate::wire::{
    encode_server, ClientFrameView, FaultCode, FrameBuffer, OutcomeKind, ServerFrame,
    MIN_WIRE_VERSION, WIRE_VERSION,
};

/// First retry delay after `accept()` fails; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`], resetting on success.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);

/// Ceiling for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Size of each I/O thread's read buffer: one `read` call drains
/// everything the kernel has buffered (up to this much) per readable
/// connection per reactor round.
const READ_CHUNK: usize = 64 * 1024;

/// A connection whose pending-write buffer outgrows this is a slow (or
/// stalled) consumer and is dropped rather than buffered without bound.
const MAX_PENDING_WRITE: usize = 16 * 1024 * 1024;

/// Rounds the shutdown drain retries busy `Close`s (with a short sleep
/// between rounds) before giving up and counting the remainder in
/// `closes_abandoned`. During normal operation busy `Close`s are
/// retried without limit — the retry list is bounded by open sessions.
const CLOSE_RETRY_ROUNDS: usize = 64;

/// How long a half-closed connection (peer sent EOF, e.g. via
/// `shutdown(Write)`) is kept alive write-only to deliver in-flight
/// replies before teardown gives up on the drain.
const DRAIN_WINDOW: Duration = Duration::from_secs(5);

/// Poller token for the self-pipe waker. Connection ids start at 1
/// ([`SessionRouter::new_conn_id`]), so 0 is free.
const WAKER_TOKEN: u64 = 0;

/// Which readiness backend the reactor's I/O threads run on.
///
/// `Auto` resolves to epoll(7) on Linux and poll(2) elsewhere; if the
/// auto-selected backend cannot be constructed the service falls back
/// to poll(2), while an explicit `Epoll` that cannot be constructed
/// fails startup loudly. (A per-thread construction failure *after* a
/// successful startup probe — racing fd exhaustion — degrades that
/// thread to poll(2), logging the fallback and downgrading the
/// `reactor_backend` metric rather than dropping the thread's
/// connections.) The `GRANDMA_POLL_BACKEND` environment
/// variable (values `auto`/`poll`/`epoll`) overrides the default so
/// test suites can be re-run against the portable backend without
/// code changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollBackend {
    /// epoll(7) where available (Linux), poll(2) elsewhere.
    #[default]
    Auto,
    /// Force the portable poll(2) rebuild-and-scan backend.
    Poll,
    /// Require epoll(7); startup fails where it is unsupported.
    Epoll,
}

impl PollBackend {
    /// Parses a CLI/env value (`auto` | `poll` | `epoll`).
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "auto" => Some(Self::Auto),
            "poll" => Some(Self::Poll),
            "epoll" => Some(Self::Epoll),
            _ => None,
        }
    }

    /// Stable lowercase name, for logs and usage text.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Poll => "poll",
            Self::Epoll => "epoll",
        }
    }

    /// The `GRANDMA_POLL_BACKEND` override, or `Auto`.
    fn from_env() -> Self {
        std::env::var("GRANDMA_POLL_BACKEND")
            .ok()
            .and_then(|v| Self::parse(v.trim()))
            .unwrap_or(Self::Auto)
    }

    /// The concrete backend this selection asks for on this platform.
    fn resolve(self) -> Backend {
        match self {
            Self::Poll => Backend::Poll,
            Self::Epoll => Backend::Epoll,
            Self::Auto => {
                if cfg!(target_os = "linux") {
                    Backend::Epoll
                } else {
                    Backend::Poll
                }
            }
        }
    }
}

/// Transport tuning for the reactor front-end.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Initial capacity hint for a connection's encode buffer; replies
    /// coalesce here between flushes, so this is the natural write size
    /// under load.
    pub flush_start: usize,
    /// Retained-capacity ceiling for per-connection buffers: after a
    /// burst drains, encode buffers shrink back to at most this many
    /// bytes so thousands of mostly idle connections stay cheap.
    pub flush_max: usize,
    /// Reactor I/O threads; `0` picks `min(4, available cores)`.
    pub io_threads: usize,
    /// Connections beyond this are shed at accept time.
    pub max_connections: usize,
    /// Close connections that send no frames for this many
    /// milliseconds; `0` disables idle reaping.
    pub idle_timeout_ms: u64,
    /// Readiness backend for the I/O threads.
    pub poll_backend: PollBackend,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            flush_start: 4 * 1024,
            flush_max: 64 * 1024,
            io_threads: 0,
            max_connections: 65_536,
            idle_timeout_ms: 0,
            poll_backend: PollBackend::from_env(),
        }
    }
}

impl TcpOptions {
    /// `flush_start` clamped to something sane.
    fn start_bytes(&self) -> usize {
        self.flush_start.clamp(64, 1 << 20)
    }

    /// `flush_max` clamped to at least the start threshold.
    fn max_bytes(&self) -> usize {
        self.flush_max.max(self.start_bytes())
    }

    /// The I/O thread count after applying the `min(4, cores)` default.
    fn resolved_io_threads(&self) -> usize {
        if self.io_threads > 0 {
            self.io_threads.min(256)
        } else {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            cores.clamp(1, 4)
        }
    }

    /// Idle window as a `Duration`, `None` when disabled.
    fn idle_timeout(&self) -> Option<Duration> {
        (self.idle_timeout_ms > 0).then(|| Duration::from_millis(self.idle_timeout_ms))
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Next accept-error backoff: exponential with a cap.
fn next_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_MAX)
}

/// The accept thread's half of one I/O thread: a registration queue
/// plus the waker and reply sender that reach its poll loop.
struct IoShared {
    waker: Waker,
    replies: Sender<(u64, ServerFrame)>,
    registrations: Mutex<Vec<(u64, TcpStream)>>,
    stop: AtomicBool,
}

/// Routes shard replies back to the I/O thread that owns the
/// connection: conn ids are assigned round-robin, so the owning thread
/// is a modulo away and delivery is lock-free queue + waker poke.
struct ReactorBridge {
    io: Vec<Arc<IoShared>>,
}

impl ReactorBridge {
    fn io_of(&self, conn: u64) -> Option<&Arc<IoShared>> {
        let n = self.io.len();
        if n == 0 {
            return None;
        }
        self.io.get((conn.wrapping_sub(1) as usize) % n)
    }
}

impl ReplyBridge for ReactorBridge {
    fn deliver(&self, conn: u64, frame: ServerFrame) {
        if let Some(io) = self.io_of(conn) {
            let _ = io.replies.send((conn, frame));
            io.waker.wake();
        }
    }
}

/// Per-connection reactor state: the frame decode buffer, the pending
/// encode/write buffer, and the session-ownership bookkeeping that
/// backs teardown.
struct Conn {
    stream: TcpStream,
    reply: ReplyTx,
    frames: FrameBuffer,
    hello_ok: bool,
    open_sessions: HashSet<u64>,
    /// Encoded-but-unwritten reply bytes; `out_at` marks how much of
    /// the front has already reached the kernel.
    out: Vec<u8>,
    out_at: usize,
    /// Wait for a writable notification before trying to write again.
    want_write: bool,
    /// Protocol fault sent: stop reading, flush `out`, then close.
    closing: bool,
    /// Marked for teardown this round.
    dead: bool,
    /// Reap sessions via `Close(seq=u32::MAX)` on teardown.
    last_activity: Instant,
    /// `Some(when)` after the peer sent EOF (half-close): the connection
    /// stays alive write-only until its pending replies drain (or
    /// [`DRAIN_WINDOW`] expires), so `shutdown(Write)` clients receive
    /// everything they are owed.
    read_closed: Option<Instant>,
    /// Sessions owed a terminal reply (`Closed` outcome or a fault):
    /// populated when a `Close` is dispatched, cleared when the terminal
    /// frame is queued. The half-close drain waits on this set.
    draining: HashSet<u64>,
    /// The interest mask currently installed in the poller for this
    /// connection. [`sync_interest`] issues a modify only when the
    /// desired mask differs, so on epoll the `epoll_ctl` count tracks
    /// actual transitions, not reactor iterations.
    interest: i16,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len().saturating_sub(self.out_at)
    }

    /// Reclaims the already-flushed prefix of `out` once it outgrows the
    /// unwritten tail (or the retention cap). Without this a connection
    /// that keeps pace with production but never fully drains — a
    /// network-limited or read-pacing client — accumulates every byte
    /// ever sent; with it `out.len()` stays within a small factor of
    /// `pending_out()`, which [`MAX_PENDING_WRITE`] bounds. The
    /// prefix-outweighs-tail threshold keeps the memmove amortized O(1)
    /// per flushed byte.
    fn compact_out(&mut self, retain_cap: usize) {
        if self.out_at > 0 && (self.out_at >= self.pending_out() || self.out_at >= retain_cap) {
            self.out.drain(..self.out_at);
            self.out_at = 0;
        }
    }
}

/// A `Close` that bounced off a full shard queue; retried every
/// reactor round so backpressure cannot leak a session.
struct PendingClose {
    conn: u64,
    session: u64,
    seq: u32,
    reply: ReplyTx,
}

/// The running TCP service. Dropping it shuts everything down.
pub struct TcpService {
    router: Arc<SessionRouter>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    io: Vec<Arc<IoShared>>,
    io_threads: Vec<JoinHandle<()>>,
}

impl TcpService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections for `router`, with default
    /// [`TcpOptions`].
    pub fn start(router: Arc<SessionRouter>, addr: &str) -> std::io::Result<Self> {
        Self::start_with(router, addr, TcpOptions::default())
    }

    /// [`TcpService::start`] with explicit transport tuning.
    pub fn start_with(
        router: Arc<SessionRouter>,
        addr: &str,
        options: TcpOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Resolve and probe the readiness backend once, up front: an
        // explicit `--poll-backend epoll` that cannot be constructed
        // fails startup loudly, while Auto degrades to poll(2). The I/O
        // threads then build their own pollers on the settled backend.
        let requested = options.poll_backend.resolve();
        let backend = match Poller::new(requested) {
            Ok(_) => requested,
            Err(err) => {
                if options.poll_backend == PollBackend::Epoll {
                    return Err(err);
                }
                Backend::Poll
            }
        };
        router.metrics().set_reactor_backend(backend);
        let io_count = options.resolved_io_threads();
        let mut io = Vec::with_capacity(io_count);
        let mut receivers = Vec::with_capacity(io_count);
        for _ in 0..io_count {
            let (tx, rx) = std::sync::mpsc::channel();
            io.push(Arc::new(IoShared {
                waker: Waker::new()?,
                replies: tx,
                registrations: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }));
            receivers.push(rx);
        }
        let bridge = Arc::new(ReactorBridge { io: io.clone() });
        let mut io_threads = Vec::with_capacity(io_count);
        for (index, replies) in receivers.into_iter().enumerate() {
            let shared = match io.get(index) {
                Some(shared) => shared.clone(),
                None => continue,
            };
            let thread_router = router.clone();
            let thread_bridge = bridge.clone();
            let handle = std::thread::Builder::new()
                .name(format!("grandma-io-{index}"))
                .spawn(move || {
                    io_loop(shared, replies, thread_router, thread_bridge, options, backend)
                })?;
            io_threads.push(handle);
        }
        let accept_thread = {
            let router = router.clone();
            let stop = stop.clone();
            let io = io.clone();
            std::thread::Builder::new()
                .name("grandma-accept".into())
                .spawn(move || accept_loop(listener, router, stop, io, options))?
        };
        Ok(Self {
            router,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            io,
            io_threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this front-end.
    pub fn router(&self) -> &Arc<SessionRouter> {
        &self.router
    }

    /// The shared service metrics.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.router.metrics()
    }

    /// Gracefully stops accepting, tears down every connection (closing
    /// its sessions), joins the I/O threads, and shuts the router down.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Each I/O thread drains its connections on the way out: the
        // teardown Closes reach the shard queues before the router's
        // Shutdown below, so abandoned sessions are finalized and
        // counted.
        for shared in &self.io {
            shared.stop.store(true, Ordering::SeqCst);
            shared.waker.arm();
            shared.waker.wake();
        }
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
        self.router.shutdown();
    }
}

impl Drop for TcpService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sheds a connection that cannot be served (over the connection cap or
/// out of descriptors): closed immediately, counted, never registered.
fn shed(stream: TcpStream, metrics: &ServiceMetrics) {
    metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.shutdown(Shutdown::Both);
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<SessionRouter>,
    stop: Arc<AtomicBool>,
    io: Vec<Arc<IoShared>>,
    options: TcpOptions,
) {
    let metrics = router.metrics().clone();
    let mut backoff = ACCEPT_BACKOFF_START;
    // One descriptor held in reserve: when accept() hits EMFILE/ENFILE
    // the pending connection has no fd to land in, so we release the
    // reserve, accept-and-shed the newest connection (telling the
    // client immediately instead of letting it hang in the backlog),
    // then re-arm the reserve.
    let mut reserve = std::fs::File::open("/dev/null").ok();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                if stop.load(Ordering::SeqCst) {
                    // The shutdown self-connection (or a late client).
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                if metrics.open_connections.load(Ordering::Relaxed) as usize
                    >= options.max_connections
                {
                    shed(stream, &metrics);
                    continue;
                }
                register(stream, &router, &io, &metrics);
            }
            Err(err) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                metrics.accept_errors.fetch_add(1, Ordering::Relaxed);
                let raw = err.raw_os_error();
                if raw == Some(24) || raw == Some(23) {
                    // EMFILE/ENFILE: free the reserve fd, take the
                    // newest *already pending* connection, and shed it.
                    // The recovery accept must be nonblocking: with the
                    // reserve released and the backlog empty, a blocking
                    // accept would park here until the next client
                    // arrives — possibly long after descriptors freed up
                    // — and then shed that serviceable connection.
                    drop(reserve.take());
                    let mut shed_one = false;
                    if listener.set_nonblocking(true).is_ok() {
                        if let Ok((stream, peer)) = listener.accept() {
                            eprintln!(
                                "grandma-serve: fd exhausted; shedding connection from {peer}"
                            );
                            shed(stream, &metrics);
                            shed_one = true;
                        }
                        let _ = listener.set_nonblocking(false);
                    }
                    reserve = std::fs::File::open("/dev/null").ok();
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if !shed_one {
                        // Nothing pending to shed (or still no fd to
                        // land it in): back off instead of re-running
                        // accept straight into the same EMFILE.
                        std::thread::sleep(backoff);
                        backoff = next_backoff(backoff);
                    }
                    continue;
                }
                // Transient failure (ECONNABORTED and friends): retry
                // with exponential backoff instead of spinning a core.
                std::thread::sleep(backoff);
                backoff = next_backoff(backoff);
            }
        }
    }
}

/// Hands an accepted socket to its round-robin I/O thread. The gauge is
/// bumped here so the accept loop's `max_connections` check sees
/// connections that are registered but not yet polled.
fn register(
    stream: TcpStream,
    router: &Arc<SessionRouter>,
    io: &[Arc<IoShared>],
    metrics: &ServiceMetrics,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(true).is_err() || io.is_empty() {
        shed(stream, metrics);
        return;
    }
    let conn = router.new_conn_id();
    let idx = (conn.wrapping_sub(1) as usize) % io.len();
    let Some(shared) = io.get(idx) else {
        shed(stream, metrics);
        return;
    };
    metrics.open_connections.fetch_add(1, Ordering::Relaxed);
    lock_or_recover(&shared.registrations).push((conn, stream));
    shared.waker.wake();
}

/// Encodes `frame` into the connection's pending-write buffer.
fn queue_frame(c: &mut Conn, metrics: &ServiceMetrics, frame: &ServerFrame) {
    encode_server(frame, &mut c.out);
    metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
}

/// Writes as much pending output as the socket will take. Returns
/// `false` when the connection died. Sets `want_write` (and leaves the
/// remainder queued) on a full socket buffer.
fn flush_conn(c: &mut Conn, metrics: &ServiceMetrics, retain_cap: usize) -> bool {
    while c.out_at < c.out.len() {
        let pending = c.out.get(c.out_at..).unwrap_or(&[]);
        if pending.is_empty() {
            break;
        }
        match c.stream.write(pending) {
            Ok(0) => return false,
            Ok(n) => {
                metrics.writer_flushes.fetch_add(1, Ordering::Relaxed);
                c.out_at += n;
                if n < pending.len() {
                    // Partial write: the socket buffer is full; wait
                    // for POLLOUT rather than burning a sure EAGAIN.
                    metrics.writes_short.fetch_add(1, Ordering::Relaxed);
                    c.want_write = true;
                    c.compact_out(retain_cap);
                    return true;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                c.want_write = true;
                c.compact_out(retain_cap);
                return true;
            }
            Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    // Fully drained: recycle the buffer, shrinking bursts back down so
    // thousands of idle connections do not pin burst-sized buffers.
    c.out.clear();
    c.out_at = 0;
    c.want_write = false;
    if c.out.capacity() > retain_cap {
        c.out.shrink_to(retain_cap);
    }
    true
}

/// Submits one `Close`, treating a shut-down router as done. Returns
/// `false` when the shard queue was full and the close must be retried.
fn try_close(router: &SessionRouter, conn: u64, session: u64, seq: u32, reply: &ReplyTx) -> bool {
    let msg = ShardMsg::Close {
        conn,
        session,
        seq,
        reply: reply.clone(),
    };
    !matches!(router.submit(msg), Err(SubmitError::Busy))
}

/// Tears a connection down. Default: submits `Close` for every session
/// it still has open (busy shards park the close on the retry list).
/// With [`crate::ServeConfig::detach_on_disconnect`] the sessions are
/// instead orphaned via [`SessionRouter::detach_conn`] so a
/// reconnecting client can `Resume` them. Either way the socket is shut
/// and the state dropped.
fn teardown(
    conn_id: u64,
    mut c: Conn,
    poller: &mut Poller,
    router: &SessionRouter,
    metrics: &ServiceMetrics,
    pending_closes: &mut Vec<PendingClose>,
) {
    // Deregister before the fd closes: a closed fd is auto-removed from
    // an epoll set, but doing it explicitly keeps both backends on one
    // discipline and cannot leave a stale entry if the fd number is
    // recycled by a racing accept.
    let _ = poller.deregister(conn_id, c.stream.as_raw_fd());
    if router.detach_on_disconnect() {
        c.open_sessions.clear();
        router.detach_conn(conn_id);
    } else {
        for session in c.open_sessions.drain() {
            if !try_close(router, conn_id, session, u32::MAX, &c.reply) {
                pending_closes.push(PendingClose {
                    conn: conn_id,
                    session,
                    seq: u32::MAX,
                    reply: c.reply.clone(),
                });
            }
        }
    }
    let _ = c.stream.shutdown(Shutdown::Both);
    metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Handles the peer's EOF (it finished sending — e.g. `shutdown(Write)`
/// or a dropped socket). Returns `true` when the connection should stay
/// alive write-only to drain what it is owed; `false` when it can be
/// torn down right now. In close-on-disconnect mode the still-open
/// sessions are closed here (the read side can never feed them again)
/// and their terminal replies joined to the drain set; in detach mode
/// they are left for teardown to orphan.
fn half_close(
    conn_id: u64,
    c: &mut Conn,
    router: &SessionRouter,
    pending_closes: &mut Vec<PendingClose>,
) -> bool {
    if c.read_closed.is_some() || c.closing {
        return false;
    }
    c.read_closed = Some(Instant::now());
    if !router.detach_on_disconnect() {
        for session in std::mem::take(&mut c.open_sessions) {
            c.draining.insert(session);
            if !try_close(router, conn_id, session, u32::MAX, &c.reply) {
                pending_closes.push(PendingClose {
                    conn: conn_id,
                    session,
                    seq: u32::MAX,
                    reply: c.reply.clone(),
                });
            }
        }
    }
    true
}

/// Decodes and dispatches every complete frame in the connection's read
/// buffer. Returns `false` when the connection must die immediately
/// (router gone); protocol faults instead set `closing` so the fault
/// frame is flushed before the socket closes.
fn dispatch_frames(
    conn_id: u64,
    c: &mut Conn,
    router: &SessionRouter,
    metrics: &ServiceMetrics,
    pending_closes: &mut Vec<PendingClose>,
) -> bool {
    loop {
        if c.closing {
            return true;
        }
        // Zero-copy decode: batch payloads are iterated straight out of
        // the frame buffer; only the pooled `Vec` that crosses the
        // shard channel is written to.
        let frame = match c.frames.next_client_view() {
            Ok(Some(frame)) => frame,
            Ok(None) => return true,
            Err(_) => {
                metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                queue_frame(
                    c,
                    metrics,
                    &ServerFrame::Fault {
                        session: 0,
                        seq: 0,
                        code: FaultCode::BadFrame,
                    },
                );
                c.closing = true;
                return true;
            }
        };
        if !c.hello_ok {
            match frame {
                ClientFrameView::Hello { version }
                    if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) =>
                {
                    c.hello_ok = true;
                    continue;
                }
                ClientFrameView::Hello { .. } => {
                    queue_frame(
                        c,
                        metrics,
                        &ServerFrame::Fault {
                            session: 0,
                            seq: 0,
                            code: FaultCode::VersionMismatch,
                        },
                    );
                }
                _ => {
                    queue_frame(
                        c,
                        metrics,
                        &ServerFrame::Fault {
                            session: 0,
                            seq: 0,
                            code: FaultCode::BadFrame,
                        },
                    );
                }
            }
            c.closing = true;
            return true;
        }
        match frame {
            ClientFrameView::Hello { .. } => {
                // A second Hello is harmless; ignore it.
            }
            ClientFrameView::Open { session } => {
                // Cluster fence: a session the ring maps elsewhere is
                // redirected, never admitted here.
                if let Some(owner) = router.owner_redirect(session) {
                    metrics.not_owner_redirects.fetch_add(1, Ordering::Relaxed);
                    queue_frame(c, metrics, &ServerFrame::NotOwner { session, owner });
                    continue;
                }
                let msg = ShardMsg::Open {
                    conn: conn_id,
                    session,
                    seq: 0,
                    reply: c.reply.clone(),
                };
                match router.submit(msg) {
                    Ok(()) => {
                        // Optimistic: the shard may still reject the
                        // Open (AlreadyOpen/SessionLimit). That is
                        // harmless — the teardown Close carries our
                        // conn id, so it cannot touch a session some
                        // other connection owns.
                        c.open_sessions.insert(session);
                    }
                    Err(SubmitError::Busy) => queue_frame(
                        c,
                        metrics,
                        &ServerFrame::Fault {
                            session,
                            seq: 0,
                            code: FaultCode::Busy,
                        },
                    ),
                    Err(SubmitError::Closed) => return false,
                }
            }
            ClientFrameView::Event {
                session,
                seq,
                event,
            } => match router.submit(ShardMsg::Event {
                conn: conn_id,
                session,
                seq,
                event,
                reply: c.reply.clone(),
            }) {
                Ok(()) => {}
                Err(SubmitError::Busy) => queue_frame(
                    c,
                    metrics,
                    &ServerFrame::Fault {
                        session,
                        seq,
                        code: FaultCode::Busy,
                    },
                ),
                Err(SubmitError::Closed) => return false,
            },
            ClientFrameView::EventBatch(view) => {
                let session = view.session();
                let mut events = router.batch_pool().take();
                events.extend(view.iter());
                let first_seq = events.first().map(|&(s, _)| s).unwrap_or(0);
                match router.submit(ShardMsg::EventBatch {
                    conn: conn_id,
                    session,
                    events,
                    reply: c.reply.clone(),
                }) {
                    Ok(()) => {}
                    // The whole batch is rejected as a unit; submit
                    // already recycled its buffer.
                    Err(SubmitError::Busy) => queue_frame(
                        c,
                        metrics,
                        &ServerFrame::Fault {
                            session,
                            seq: first_seq,
                            code: FaultCode::Busy,
                        },
                    ),
                    Err(SubmitError::Closed) => return false,
                }
            }
            ClientFrameView::Close { session, seq } => {
                c.open_sessions.remove(&session);
                // The session is now owed a terminal reply; the
                // half-close drain waits for it.
                c.draining.insert(session);
                // A busy Close is retried transport-side instead of
                // bounced: losing it would leak the session, and the
                // client is owed its Closed outcome.
                if !try_close(router, conn_id, session, seq, &c.reply) {
                    pending_closes.push(PendingClose {
                        conn: conn_id,
                        session,
                        seq,
                        reply: c.reply.clone(),
                    });
                }
            }
            ClientFrameView::Resume { session, last_seq: _ } => {
                // Same fence as Open: after a ring change the session's
                // new owner — not us — must serve the resume.
                if let Some(owner) = router.owner_redirect(session) {
                    metrics.not_owner_redirects.fetch_add(1, Ordering::Relaxed);
                    queue_frame(c, metrics, &ServerFrame::NotOwner { session, owner });
                    continue;
                }
                // The server is authoritative about what it processed:
                // the shard replies `Resumed { last_seq }` from its own
                // pipeline state and the client re-sends everything
                // newer. The client's claimed last_seq is advisory and
                // deliberately ignored.
                match router.submit(ShardMsg::Resume {
                    conn: conn_id,
                    session,
                    reply: c.reply.clone(),
                }) {
                    Ok(()) => {
                        // Optimistic, like Open: a failed resume faults
                        // and the teardown Close for a session we never
                        // owned is rejected harmlessly.
                        c.open_sessions.insert(session);
                    }
                    Err(SubmitError::Busy) => queue_frame(
                        c,
                        metrics,
                        &ServerFrame::Fault {
                            session,
                            seq: 0,
                            code: FaultCode::Busy,
                        },
                    ),
                    Err(SubmitError::Closed) => return false,
                }
            }
            ClientFrameView::Handoff { snapshot } => {
                // Peer-to-peer session transfer. Deliberately not
                // fenced: the sender routed the session here because
                // the ring (as it sees it) maps it to this node, and a
                // transfer must not bounce between nodes holding
                // different registry generations. An undecodable
                // snapshot is a protocol fault like any other
                // undecodable frame: fault, flush, close.
                match SessionSnapshot::decode(snapshot) {
                    Ok((snap, _)) => {
                        let session = snap.session;
                        match router.submit(ShardMsg::Handoff {
                            conn: conn_id,
                            snapshot: Box::new(snap),
                            reply: c.reply.clone(),
                        }) {
                            Ok(()) => {}
                            Err(SubmitError::Busy) => queue_frame(
                                c,
                                metrics,
                                &ServerFrame::Fault {
                                    session,
                                    seq: 0,
                                    code: FaultCode::Busy,
                                },
                            ),
                            Err(SubmitError::Closed) => return false,
                        }
                    }
                    Err(_) => {
                        metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                        queue_frame(
                            c,
                            metrics,
                            &ServerFrame::Fault {
                                session: 0,
                                seq: 0,
                                code: FaultCode::BadFrame,
                            },
                        );
                        c.closing = true;
                        return true;
                    }
                }
            }
        }
    }
}

/// Reads everything the kernel has for this connection and dispatches
/// it. Returns `false` on EOF or a dead socket.
fn service_read(
    conn_id: u64,
    c: &mut Conn,
    router: &SessionRouter,
    metrics: &ServiceMetrics,
    chunk: &mut [u8],
    now: Instant,
    pending_closes: &mut Vec<PendingClose>,
) -> bool {
    loop {
        match c.stream.read(chunk) {
            // EOF: the peer finished sending. Enter the write-only
            // half-close drain instead of dropping whatever replies are
            // still in flight (a `shutdown(Write)` client is owed them).
            Ok(0) => return half_close(conn_id, c, router, pending_closes),
            Ok(n) => {
                c.last_activity = now;
                c.frames.extend(chunk.get(..n).unwrap_or(&[]));
                if !dispatch_frames(conn_id, c, router, metrics, pending_closes) {
                    return false;
                }
                if c.closing || n < chunk.len() {
                    // Short read: the kernel buffer is drained; poll is
                    // level-triggered, so anything that races in will
                    // re-report.
                    return true;
                }
            }
            Err(ref e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// The interest mask a connection should be watched with right now.
///
/// Transition table (DESIGN.md §13): a fresh connection reads
/// (`POLLIN`); queued output that hit a full socket buffer adds
/// `POLLOUT` until it drains; a protocol fault (`closing`) or peer EOF
/// (`read_closed`) drops `POLLIN` — a level-triggered EOF/fault would
/// otherwise re-report every wakeup; error conditions need no bits,
/// both backends always report them.
fn desired_interest(c: &Conn) -> i16 {
    let mut interest = 0i16;
    if !c.closing && c.read_closed.is_none() {
        interest |= POLLIN;
    }
    if c.want_write && c.pending_out() > 0 {
        interest |= POLLOUT;
    }
    interest
}

/// Installs the connection's desired interest mask if it changed. The
/// no-transition fast path is what keeps `epoll_ctl` traffic O(actual
/// state changes) instead of O(iterations × connections).
///
/// Returns `false` when a needed transition could not be installed:
/// interest is only resynced when a connection is touched, so a
/// connection left with a stale kernel mask (e.g. `POLLOUT` never
/// armed) would get no further readiness and hang until idle reap — or
/// forever with reaping disabled. The caller must tear it down.
fn sync_interest(poller: &mut Poller, conn_id: u64, c: &mut Conn) -> bool {
    let want = desired_interest(c);
    if want == c.interest {
        return true;
    }
    if poller.modify(conn_id, c.stream.as_raw_fd(), want).is_err() {
        return false;
    }
    c.interest = want;
    true
}

/// Post-activity bookkeeping for one connection: opportunistic flush,
/// slow-consumer shed, and fault-flush completion. Runs only for
/// connections actually touched this round (shard replies or readiness)
/// — never as a full sweep. Returns `false` when the connection must be
/// torn down.
fn maintain_conn(c: &mut Conn, metrics: &ServiceMetrics, retain_cap: usize) -> bool {
    if c.pending_out() > 0 && !c.want_write && !flush_conn(c, metrics, retain_cap) {
        return false;
    }
    if c.pending_out() > MAX_PENDING_WRITE {
        metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    if c.closing && c.pending_out() == 0 {
        return false;
    }
    true
}

/// One reactor I/O thread: a [`Poller`] loop multiplexing every
/// connection assigned to it. The loop is wake-accurate without being
/// wake-hungry — the waker is armed before the work queues are drained,
/// so a producer either lands its item before the drain or its wake
/// byte lands in the ready set.
///
/// Per-wakeup cost is O(touched + ready): shard replies name the
/// connections they touch, readiness names the connections with I/O,
/// and nothing else is visited. The idle reaper is the one remaining
/// O(open) scan, and it runs at most once per reap tick rather than
/// every iteration.
fn io_loop(
    shared: Arc<IoShared>,
    replies: Receiver<(u64, ServerFrame)>,
    router: Arc<SessionRouter>,
    bridge: Arc<ReactorBridge>,
    options: TcpOptions,
    backend: Backend,
) {
    let metrics = router.metrics().clone();
    let retain_cap = options.max_bytes();
    let idle_timeout = options.idle_timeout();
    // Reap ticks: a quarter of the window bounds the overshoot.
    let idle_tick_ms = (options.idle_timeout_ms / 4).clamp(5, 500);
    // The backend was probed at startup; a failure here is a racing
    // resource exhaustion, so degrade to poll(2) (which allocates
    // nothing) rather than dropping the thread — but never silently:
    // the fallback is logged and the `reactor_backend` metric is
    // downgraded so operators (and the bench's per-backend records)
    // see what this thread actually runs, even under an explicit
    // `--poll-backend epoll` whose startup-probe fail-loudly window
    // has already passed.
    let mut poller = match Poller::new(backend) {
        Ok(poller) => poller,
        Err(err) => {
            eprintln!(
                "serve: io thread: {} backend unavailable ({err}); falling back to poll(2)",
                backend.name()
            );
            metrics.set_reactor_backend(Backend::Poll);
            match Poller::new(Backend::Poll) {
                Ok(poller) => poller,
                Err(_) => return,
            }
        }
    };
    // The waker is registered exactly once; its interest never changes.
    if poller.register(WAKER_TOKEN, shared.waker.fd(), POLLIN).is_err() {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut pending_closes: Vec<PendingClose> = Vec::new();
    let mut dead: Vec<u64> = Vec::new();
    let mut ready: Vec<Ready> = Vec::new();
    // Connections touched by shard replies this round, pending a
    // flush/interest resync.
    let mut touched: Vec<u64> = Vec::new();
    // Connections in the write-only half-close drain: checked every
    // round for completion/expiry. Bounded by draining conns, not open
    // conns.
    let mut half_closed: Vec<u64> = Vec::new();
    let mut next_idle_scan = Instant::now();
    let mut chunk = vec![0u8; READ_CHUNK];
    // lint:reactor-loop start(io-loop) — the reactor's steady-state round:
    // a blocking call anywhere in here stalls every connection on this
    // poller thread (DESIGN.md §12).
    loop {
        // Arm first: any wake() from here on writes a pipe byte, so the
        // final queue drains below cannot race a producer into a lost
        // wakeup.
        shared.waker.arm();

        // Intake newly accepted connections: register with the poller
        // once, read-interest, token = conn id.
        // lint:allow(reactor-blocking-call): the registration mutex is
        // held for one mem::take here and one Vec::push on the accept
        // side — an O(1) swap, never a stall.
        let fresh = std::mem::take(&mut *lock_or_recover(&shared.registrations));
        let now = Instant::now();
        for (conn_id, stream) in fresh {
            if poller.register(conn_id, stream.as_raw_fd(), POLLIN).is_err() {
                // Unwatchable (epoll interest-set exhaustion): shed it
                // — an unregistered connection would hang silently.
                metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
                metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let reply = ReplyTx::bridged(conn_id, bridge.clone() as Arc<dyn ReplyBridge>);
            conns.insert(
                conn_id,
                Conn {
                    stream,
                    reply,
                    frames: FrameBuffer::new(),
                    hello_ok: false,
                    open_sessions: HashSet::new(),
                    out: Vec::new(),
                    out_at: 0,
                    want_write: false,
                    closing: false,
                    dead: false,
                    last_activity: now,
                    read_closed: None,
                    draining: HashSet::new(),
                    interest: POLLIN,
                },
            );
        }

        // Drain shard replies into per-connection encode buffers,
        // remembering which connections now need a flush. Frames for
        // connections that died race-free-but-late are dropped, same as
        // the old writer thread losing its socket.
        while let Ok((conn_id, frame)) = replies.try_recv() {
            if let Some(c) = conns.get_mut(&conn_id) {
                if !c.dead {
                    // A terminal reply settles the session's drain debt.
                    match frame {
                        ServerFrame::Outcome {
                            session,
                            outcome: OutcomeKind::Closed,
                            ..
                        }
                        | ServerFrame::Fault { session, .. } => {
                            c.draining.remove(&session);
                        }
                        _ => {}
                    }
                    queue_frame(c, &metrics, &frame);
                    touched.push(conn_id);
                }
            }
        }

        // Retry closes that bounced off full shard queues. Retried
        // until they land (the 1 ms pending-close poll tick is the
        // backoff): the list is bounded by open sessions, and dropping
        // an entry would leak its session for the process lifetime.
        pending_closes.retain(|pc| !try_close(&router, pc.conn, pc.session, pc.seq, &pc.reply));

        if shared.stop.load(Ordering::SeqCst) {
            break;
        }

        // Flush/maintain only the connections shard replies touched.
        touched.sort_unstable();
        touched.dedup();
        for conn_id in touched.drain(..) {
            let Some(c) = conns.get_mut(&conn_id) else {
                continue;
            };
            if c.dead {
                continue;
            }
            if !maintain_conn(c, &metrics, retain_cap) {
                c.dead = true;
                dead.push(conn_id);
                continue;
            }
            if !sync_interest(&mut poller, conn_id, c) {
                c.dead = true;
                dead.push(conn_id);
            }
        }

        // Half-close drains: complete (nothing owed, nothing queued) or
        // overdue connections finish the teardown their EOF deferred.
        if !half_closed.is_empty() {
            let now = Instant::now();
            half_closed.retain(|&conn_id| {
                let Some(c) = conns.get_mut(&conn_id) else {
                    return false;
                };
                if c.dead || c.read_closed.is_none() {
                    return false;
                }
                let at = match c.read_closed {
                    Some(at) => at,
                    None => return false,
                };
                let drained = c.draining.is_empty() && c.pending_out() == 0;
                if drained || now.duration_since(at) >= DRAIN_WINDOW {
                    c.dead = true;
                    dead.push(conn_id);
                    return false;
                }
                true
            });
        }

        // Idle reaping: no client frames for the window means the
        // connection (and its sessions) are abandoned. This is the one
        // deliberate O(open) scan left, gated to once per reap tick so
        // a busy reactor is not paying it every wakeup.
        if let Some(window) = idle_timeout {
            let now = Instant::now();
            if now >= next_idle_scan {
                next_idle_scan = now + Duration::from_millis(idle_tick_ms);
                for (&conn_id, c) in conns.iter_mut() {
                    if !c.dead && now.duration_since(c.last_activity) >= window {
                        metrics.idle_reaped.fetch_add(1, Ordering::Relaxed);
                        c.dead = true;
                        dead.push(conn_id);
                    }
                }
            }
        }

        for conn_id in dead.drain(..) {
            if let Some(c) = conns.remove(&conn_id) {
                teardown(conn_id, c, &mut poller, &router, &metrics, &mut pending_closes);
            }
        }

        let timeout_ms = if !pending_closes.is_empty() {
            1
        } else if !half_closed.is_empty() {
            // Tick so drain completion (shard replies already queued)
            // and the DRAIN_WINDOW deadline are noticed promptly.
            50
        } else if idle_timeout.is_some() {
            idle_tick_ms as i32
        } else {
            -1
        };
        // Surface interest-set churn before blocking: ctl syscalls for
        // registers/modifies/deregisters since the last iteration.
        let ctl = poller.take_ctl_calls();
        if ctl > 0 {
            metrics.epoll_ctl_calls.fetch_add(ctl, Ordering::Relaxed);
        }
        // lint:allow(reactor-blocking-call): this wait IS the reactor's
        // scheduler — the one intentional block per round, bounded by
        // `timeout_ms` so maintenance still runs on idle connections.
        let n = match poller.wait(timeout_ms, &mut ready) {
            Ok(n) => n,
            Err(_) => continue,
        };
        if n > 0 {
            metrics
                .readiness_events
                .fetch_add(n as u64, Ordering::Relaxed);
        }

        // Dispatch walks only the ready set: O(ready), regardless of
        // how many connections are open.
        let now = Instant::now();
        for ev in &ready {
            if ev.token == WAKER_TOKEN {
                if ev.readable() {
                    shared.waker.drain();
                    metrics.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            let conn_id = ev.token;
            let Some(c) = conns.get_mut(&conn_id) else {
                continue;
            };
            if c.dead {
                continue;
            }
            if ev.writable() {
                c.want_write = false;
                if !flush_conn(c, &metrics, retain_cap) {
                    c.dead = true;
                    dead.push(conn_id);
                    continue;
                }
            } else if !ev.readable() || c.closing {
                // Ready, but neither branch can make progress: the
                // kernel reported only error bits (POLLERR/POLLHUP/
                // POLLNVAL — set regardless of requested events),
                // typically on a closing connection whose peer
                // reset. Left alone, level-triggered readiness would
                // re-report it every iteration, spinning this
                // thread and leaking the connection forever.
                c.dead = true;
                dead.push(conn_id);
                continue;
            }
            if ev.readable() && !c.closing {
                let was_half_closed = c.read_closed.is_some();
                if !service_read(
                    conn_id,
                    c,
                    &router,
                    &metrics,
                    &mut chunk,
                    now,
                    &mut pending_closes,
                ) {
                    c.dead = true;
                    dead.push(conn_id);
                    continue;
                }
                if !was_half_closed && c.read_closed.is_some() {
                    // EOF just arrived: enter the write-only drain.
                    half_closed.push(conn_id);
                }
            }
            // Flush what dispatch queued and install any interest
            // transition (pending-out appeared/drained, half-close
            // flipped write-only).
            if !maintain_conn(c, &metrics, retain_cap) {
                c.dead = true;
                dead.push(conn_id);
                continue;
            }
            if !sync_interest(&mut poller, conn_id, c) {
                c.dead = true;
                dead.push(conn_id);
            }
        }
        for conn_id in dead.drain(..) {
            if let Some(c) = conns.remove(&conn_id) {
                teardown(conn_id, c, &mut poller, &router, &metrics, &mut pending_closes);
            }
        }
    }
    // lint:reactor-loop end

    // Stop: tear down every connection (their session Closes land ahead
    // of the router's Shutdown message) and drain the retry list with a
    // short bounded backoff — sleeping is fine here, off the hot path.
    let fresh = std::mem::take(&mut *lock_or_recover(&shared.registrations));
    for (_, stream) in fresh {
        let _ = stream.shutdown(Shutdown::Both);
        metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
    }
    let ids: Vec<u64> = conns.keys().copied().collect();
    for conn_id in ids {
        if let Some(c) = conns.remove(&conn_id) {
            teardown(conn_id, c, &mut poller, &router, &metrics, &mut pending_closes);
        }
    }
    for _ in 0..CLOSE_RETRY_ROUNDS {
        if pending_closes.is_empty() {
            break;
        }
        pending_closes.retain(|pc| !try_close(&router, pc.conn, pc.session, pc.seq, &pc.reply));
        if !pending_closes.is_empty() {
            std::thread::sleep(Duration::from_micros(250));
        }
    }
    // The router's Shutdown (queued after we exit) finalizes whatever
    // sessions these would have closed, but record that the orderly
    // Close path gave up on them.
    if !pending_closes.is_empty() {
        metrics
            .closes_abandoned
            .fetch_add(pending_closes.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServeConfig;
    use crate::wire::{encode_client, ClientFrame, OutcomeKind};
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_synth::datasets;
    use std::time::Duration;

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    /// Every backend the host supports: the full TCP suite runs once
    /// per entry so poll(2) and epoll(7) are held to identical
    /// observable behavior.
    fn test_backends() -> Vec<PollBackend> {
        let mut backends = vec![PollBackend::Poll];
        if cfg!(target_os = "linux") {
            backends.push(PollBackend::Epoll);
        }
        backends
    }

    /// Default options pinned to one readiness backend.
    fn options_with(backend: PollBackend) -> TcpOptions {
        TcpOptions {
            poll_backend: backend,
            ..TcpOptions::default()
        }
    }

    fn read_server_frames(stream: &mut TcpStream, until_closed_for: u64) -> Vec<ServerFrame> {
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        let mut out = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return out,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("valid server bytes") {
                let done = matches!(
                    frame,
                    ServerFrame::Outcome {
                        session,
                        outcome: OutcomeKind::Closed,
                        ..
                    } if session == until_closed_for
                );
                out.push(frame);
                if done {
                    return out;
                }
            }
        }
    }

    #[test]
    fn backoff_doubles_to_a_cap() {
        let mut d = ACCEPT_BACKOFF_START;
        let mut seen = vec![d];
        for _ in 0..12 {
            d = next_backoff(d);
            seen.push(d);
        }
        assert_eq!(seen[1], ACCEPT_BACKOFF_START * 2);
        assert_eq!(seen[2], ACCEPT_BACKOFF_START * 4);
        assert_eq!(
            *seen.last().expect("nonempty"),
            ACCEPT_BACKOFF_MAX,
            "backoff must saturate at the cap"
        );
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "monotone: {seen:?}");
    }

    /// The reviewer scenario for the slow-but-keeping-up consumer: the
    /// kernel accepts bytes at roughly the production rate, so the
    /// buffer never fully drains and `flush_conn`'s clear-on-empty
    /// never fires. The flushed prefix must be reclaimed anyway, or
    /// `out` grows by every byte ever sent for the connection lifetime
    /// and `MAX_PENDING_WRITE` (which bounds only the tail) never trips.
    #[test]
    fn compaction_bounds_a_never_drained_write_buffer() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let _client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (stream, _) = listener.accept().expect("accept");
        let retain_cap = TcpOptions::default().max_bytes();
        let mut c = Conn {
            stream,
            reply: ReplyTx::bridged(1, Arc::new(ReactorBridge { io: Vec::new() })),
            frames: FrameBuffer::new(),
            hello_ok: true,
            open_sessions: HashSet::new(),
            out: Vec::new(),
            out_at: 0,
            want_write: false,
            closing: false,
            dead: false,
            last_activity: Instant::now(),
            read_closed: None,
            draining: HashSet::new(),
            interest: POLLIN,
        };
        let (mut produced, mut consumed) = (0usize, 0usize);
        for _ in 0..512 {
            // Produce 1024 bytes, flush 1000: pending creeps up but the
            // buffer never hits empty.
            c.out
                .extend((0..1024).map(|i| ((produced + i) % 251) as u8));
            produced += 1024;
            c.out_at += 1000;
            consumed += 1000;
            c.compact_out(retain_cap);
            assert_eq!(c.pending_out(), produced - consumed);
            assert!(
                c.out.len() <= c.pending_out() + retain_cap,
                "flushed prefix must be reclaimed: len {} pending {} after {} bytes",
                c.out.len(),
                c.pending_out(),
                produced
            );
        }
        // Compaction must not disturb the unwritten tail.
        let tail = c.out.get(c.out_at..).expect("tail in bounds");
        assert!(tail
            .iter()
            .enumerate()
            .all(|(i, &b)| b == ((consumed + i) % 251) as u8));
    }

    #[test]
    fn tcp_session_round_trips_and_shuts_down() {
        for backend in test_backends() {
            tcp_session_round_trips_and_shuts_down_on(backend);
        }
    }

    fn tcp_session_round_trips_and_shuts_down_on(backend: PollBackend) {
        use grandma_events::{Button, EventScript};
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        assert_eq!(
            service.metrics().snapshot().reactor_backend,
            backend.resolve().name(),
            "resolved backend must be visible in the snapshot"
        );
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 1 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session: 1,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 1,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 1);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        assert_eq!(service.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn batched_tcp_session_round_trips() {
        for backend in test_backends() {
            batched_tcp_session_round_trips_on(backend);
        }
    }

    fn batched_tcp_session_round_trips_on(backend: PollBackend) {
        use grandma_events::{Button, EventScript};
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 2 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events: Vec<(u32, grandma_events::InputEvent)> = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect();
        crate::wire::encode_event_batch(2, &events, &mut bytes);
        encode_client(
            &ClientFrame::Close {
                session: 2,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 2);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.batches_ingested, 1);
        assert_eq!(snap.events_ingested, events.len() as u64);
        assert!(snap.frames_sent >= frames.len() as u64);
        assert!(snap.writer_flushes >= 1);
    }

    #[test]
    fn v1_client_round_trips_against_v2_server() {
        for backend in test_backends() {
            v1_client_round_trips_against_v2_server_on(backend);
        }
    }

    fn v1_client_round_trips_against_v2_server_on(backend: PollBackend) {
        use grandma_events::{Button, EventScript};
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        // A v1 client: old Hello version, single-Event frames only.
        encode_client(
            &ClientFrame::Hello {
                version: MIN_WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 3 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session: 3,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 3,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 3);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        assert_eq!(service.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn garbage_bytes_fault_and_close_the_connection() {
        for backend in test_backends() {
            garbage_bytes_fault_and_close_the_connection_on(backend);
        }
    }

    fn garbage_bytes_fault_and_close_the_connection_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        stream.write_all(&[0xFF; 64]).expect("write garbage");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 256];
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut got_fault = false;
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("server bytes") {
                if matches!(
                    frame,
                    ServerFrame::Fault {
                        code: FaultCode::BadFrame,
                        ..
                    }
                ) {
                    got_fault = true;
                }
            }
            if got_fault {
                break;
            }
        }
        assert!(got_fault, "hostile bytes must earn a BadFrame fault");
        service.shutdown();
        assert!(service.metrics().snapshot().decode_errors >= 1);
    }

    #[test]
    fn sessions_are_bound_to_their_connection() {
        for backend in test_backends() {
            sessions_are_bound_to_their_connection_on(backend);
        }
    }

    fn sessions_are_bound_to_their_connection_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let addr = service.local_addr();
        let mut hello = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut hello,
        );

        let mut owner = TcpStream::connect(addr).expect("connect owner");
        let mut bytes = hello.clone();
        encode_client(&ClientFrame::Open { session: 5 }, &mut bytes);
        owner.write_all(&bytes).expect("owner open");

        // A second connection tries to close (and feed) the owner's
        // session; it must only ever see UnknownSession.
        let mut intruder = TcpStream::connect(addr).expect("connect intruder");
        let mut bytes = hello.clone();
        encode_client(
            &ClientFrame::Event {
                session: 5,
                seq: 0,
                event: grandma_events::InputEvent::new(
                    grandma_events::EventKind::MouseMove,
                    1.0,
                    1.0,
                    1.0,
                ),
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Close { session: 5, seq: 1 }, &mut bytes);
        intruder.write_all(&bytes).expect("intruder write");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 1024];
        intruder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut faults = 0;
        while faults < 2 {
            let n = match intruder.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            fb.extend(&chunk[..n]);
            while let Some(frame) = fb.next_server().expect("server bytes") {
                assert!(
                    matches!(
                        frame,
                        ServerFrame::Fault {
                            session: 5,
                            code: FaultCode::UnknownSession,
                            ..
                        }
                    ),
                    "intruder saw {frame:?}"
                );
                faults += 1;
            }
        }
        assert_eq!(faults, 2, "both intrusions must bounce as UnknownSession");
        drop(intruder);

        // The owner's session survived the foreign Close.
        let mut bytes = Vec::new();
        encode_client(&ClientFrame::Close { session: 5, seq: 2 }, &mut bytes);
        owner.write_all(&bytes).expect("owner close");
        let frames = read_server_frames(&mut owner, 5);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert_eq!(snap.unknown_sessions, 2, "{snap:?}");
    }

    #[test]
    fn finished_connections_are_pruned_from_the_registry() {
        for backend in test_backends() {
            finished_connections_are_pruned_from_the_registry_on(backend);
        }
    }

    fn finished_connections_are_pruned_from_the_registry_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let addr = service.local_addr();
        for round in 0..4u64 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut bytes = Vec::new();
            encode_client(
                &ClientFrame::Hello {
                    version: WIRE_VERSION,
                },
                &mut bytes,
            );
            encode_client(&ClientFrame::Open { session: round }, &mut bytes);
            encode_client(
                &ClientFrame::Close {
                    session: round,
                    seq: 0,
                },
                &mut bytes,
            );
            stream.write_all(&bytes).expect("write");
            let frames = read_server_frames(&mut stream, round);
            assert!(!frames.is_empty());
        }
        // The reactor prunes a connection's state on EOF; the
        // open-connections gauge is the observable. Wait for the last
        // teardowns to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let open = service.metrics().snapshot().open_connections;
            if open == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "reactor still tracks {open} connections"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 4);
        assert_eq!(snap.sessions_closed, 4);
    }

    #[test]
    fn dropped_connection_reaps_its_sessions() {
        for backend in test_backends() {
            dropped_connection_reaps_its_sessions_on(backend);
        }
    }

    fn dropped_connection_reaps_its_sessions_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        {
            let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
            let mut bytes = Vec::new();
            encode_client(
                &ClientFrame::Hello {
                    version: WIRE_VERSION,
                },
                &mut bytes,
            );
            encode_client(&ClientFrame::Open { session: 9 }, &mut bytes);
            stream.write_all(&bytes).expect("write");
            stream.flush().expect("flush");
            // Give the server a moment to register the session, then
            // vanish without a Close.
            std::thread::sleep(Duration::from_millis(100));
        }
        // Shutdown joins the I/O threads, whose teardown must have
        // closed session 9 ahead of the router's Shutdown.
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1, "{snap:?}");
    }

    #[test]
    fn idle_connection_is_reaped_while_active_one_survives() {
        for backend in test_backends() {
            idle_connection_is_reaped_while_active_one_survives_on(backend);
        }
    }

    fn idle_connection_is_reaped_while_active_one_survives_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            TcpOptions {
                io_threads: 1, // both connections on the same poll thread
                idle_timeout_ms: 200,
                ..options_with(backend)
            },
        )
        .expect("bind");
        let addr = service.local_addr();
        let mut hello = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut hello,
        );

        // The idle victim: opens a session, then goes silent.
        let mut idle = TcpStream::connect(addr).expect("connect idle");
        let mut bytes = hello.clone();
        encode_client(&ClientFrame::Open { session: 40 }, &mut bytes);
        idle.write_all(&bytes).expect("idle open");

        // The survivor: keeps sending frames within the window.
        let mut active = TcpStream::connect(addr).expect("connect active");
        let mut bytes = hello.clone();
        encode_client(&ClientFrame::Open { session: 41 }, &mut bytes);
        active.write_all(&bytes).expect("active open");

        let started = std::time::Instant::now();
        let mut seq = 0u32;
        while started.elapsed() < Duration::from_millis(700) {
            encode_client(
                &ClientFrame::Event {
                    session: 41,
                    seq,
                    event: grandma_events::InputEvent::new(
                        grandma_events::EventKind::MouseMove,
                        seq as f64,
                        0.0,
                        seq as f64,
                    ),
                },
                &mut bytes,
            );
            bytes.clear();
            encode_client(
                &ClientFrame::Event {
                    session: 41,
                    seq,
                    event: grandma_events::InputEvent::new(
                        grandma_events::EventKind::MouseMove,
                        seq as f64,
                        0.0,
                        seq as f64,
                    ),
                },
                &mut bytes,
            );
            active.write_all(&bytes).expect("active keepalive");
            seq += 1;
            std::thread::sleep(Duration::from_millis(40));
        }

        // The idle connection must have been reaped: its socket reads
        // EOF and its session was closed through the teardown path.
        idle.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut sink = [0u8; 256];
        let mut saw_eof = false;
        loop {
            match idle.read(&mut sink) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(_) => continue, // drain any frames written pre-reap
                Err(_) => break,
            }
        }
        assert!(saw_eof, "idle connection must be closed by the reaper");

        // The active connection is untouched: it can still close its
        // session normally.
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Close {
                session: 41,
                seq: seq + 1,
            },
            &mut bytes,
        );
        active.write_all(&bytes).expect("active close");
        let frames = read_server_frames(&mut active, 41);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));

        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.idle_reaped, 1, "{snap:?}");
        assert_eq!(snap.sessions_opened, 2);
        assert_eq!(snap.sessions_closed, 2, "{snap:?}");
    }

    #[test]
    fn fenced_sessions_are_redirected_with_not_owner() {
        for backend in test_backends() {
            fenced_sessions_are_redirected_with_not_owner_on(backend);
        }
    }

    fn fenced_sessions_are_redirected_with_not_owner_on(backend: PollBackend) {
        let router = SessionRouter::new(recognizer(), ServeConfig::default());
        let peer: SocketAddr = "127.0.0.1:4242".parse().expect("addr");
        router.set_fence(Arc::new(move |session| (session == 13).then_some(peer)));
        let mut service =
            TcpService::start_with(router, "127.0.0.1:0", options_with(backend)).expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        // Session 13 belongs to the peer; session 14 is ours.
        encode_client(&ClientFrame::Open { session: 13 }, &mut bytes);
        encode_client(&ClientFrame::Open { session: 14 }, &mut bytes);
        encode_client(&ClientFrame::Close { session: 14, seq: 0 }, &mut bytes);
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 14);
        assert!(
            frames.contains(&ServerFrame::NotOwner {
                session: 13,
                owner: peer,
            }),
            "{frames:?}"
        );
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.not_owner_redirects, 1);
        assert_eq!(snap.sessions_opened, 1, "the fenced open never landed");
    }

    #[test]
    fn handoff_over_tcp_is_acked_and_resumable() {
        for backend in test_backends() {
            handoff_over_tcp_is_acked_and_resumable_on(backend);
        }
    }

    fn handoff_over_tcp_is_acked_and_resumable_on(backend: PollBackend) {
        use grandma_events::{Button, EventScript};
        // Build the mid-flight session state on a standalone pipeline.
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        let rec = recognizer();
        let mut pipeline =
            crate::session::SessionPipeline::new(21, crate::session::PipelineConfig::default());
        let mut scratch = Vec::new();
        let split = events.len() / 2;
        for (i, e) in events.iter().take(split).enumerate() {
            pipeline.feed(&rec, i as u32 + 1, *e, &mut scratch);
        }
        let snapshot = pipeline.snapshot();
        let mut payload = Vec::new();
        snapshot.encode(&mut payload);

        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            options_with(backend),
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Handoff { snapshot: payload }, &mut bytes);
        stream.write_all(&bytes).expect("write handoff");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        let ack = loop {
            let n = stream.read(&mut chunk).expect("read ack");
            assert!(n > 0, "eof before ack");
            fb.extend(&chunk[..n]);
            if let Some(frame) = fb.next_server().expect("server bytes") {
                break frame;
            }
        };
        assert_eq!(
            ack,
            ServerFrame::HandoffAck {
                session: 21,
                last_seq: snapshot.last_seq,
            }
        );
        // The transferred session resumes and plays out normally.
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Resume {
                session: 21,
                last_seq: snapshot.last_seq,
            },
            &mut bytes,
        );
        for (i, e) in events.iter().enumerate().skip(split) {
            encode_client(
                &ClientFrame::Event {
                    session: 21,
                    seq: i as u32 + 1,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 21,
                seq: events.len() as u32 + 1,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write tail");
        let frames = read_server_frames(&mut stream, 21);
        assert!(
            frames.contains(&ServerFrame::Resumed {
                session: 21,
                last_seq: snapshot.last_seq,
            }),
            "{frames:?}"
        );
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_handed_off, 1);
        assert_eq!(snap.sessions_resumed, 1);
        assert_eq!(snap.sessions_closed, 1);
    }

    #[test]
    fn connections_beyond_the_cap_are_shed() {
        for backend in test_backends() {
            connections_beyond_the_cap_are_shed_on(backend);
        }
    }

    fn connections_beyond_the_cap_are_shed_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            TcpOptions {
                io_threads: 1,
                max_connections: 2,
                ..options_with(backend)
            },
        )
        .expect("bind");
        let addr = service.local_addr();
        let _a = TcpStream::connect(addr).expect("conn a");
        let _b = TcpStream::connect(addr).expect("conn b");
        // Give the accept loop time to register both before the third.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.metrics().snapshot().open_connections < 2 {
            assert!(std::time::Instant::now() < deadline, "registration stalled");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut c = TcpStream::connect(addr).expect("conn c");
        c.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut sink = [0u8; 16];
        // The shed connection sees immediate EOF/reset, never a frame.
        let shed_observed = matches!(c.read(&mut sink), Ok(0) | Err(_));
        assert!(shed_observed, "third connection must be shed");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.metrics().snapshot().connections_shed < 1 {
            assert!(std::time::Instant::now() < deadline, "shed not counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert!(snap.connections_shed >= 1, "{snap:?}");
    }

    /// Reactor-level port of the PR 6 error-bits regression, held on
    /// both backends: a peer that resets a faulted (closing) connection
    /// leaves the fd reporting only error bits — no POLLIN interest
    /// remains, no write can progress — and the reactor must tear it
    /// down rather than spin on (or leak) it.
    #[test]
    fn reset_closing_connection_is_torn_down_on_both_backends() {
        for backend in test_backends() {
            reset_closing_connection_is_torn_down_on(backend);
        }
    }

    fn reset_closing_connection_is_torn_down_on(backend: PollBackend) {
        let mut service = TcpService::start_with(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
            TcpOptions {
                io_threads: 1,
                ..options_with(backend)
            },
        )
        .expect("bind");
        let stream = TcpStream::connect(service.local_addr()).expect("connect");
        // Garbage flips the connection into closing: the server queues a
        // BadFrame fault and drops read interest.
        (&stream).write_all(&[0xFF; 64]).expect("write garbage");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while service.metrics().snapshot().decode_errors < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "{}: garbage never faulted",
                backend.name()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // Drop without reading the fault: unread data in our receive
        // buffer makes the kernel answer with RST, so the server side
        // flips straight to an error state instead of a clean EOF.
        drop(stream);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let open = service.metrics().snapshot().open_connections;
            if open == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{}: reset connection leaked ({open} still open)",
                backend.name()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        service.shutdown();
    }
}
