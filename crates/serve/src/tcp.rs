//! The TCP front-end: a `std::net::TcpListener` accept loop feeding the
//! [`SessionRouter`], one reader thread and one writer thread per
//! connection.
//!
//! Connection protocol:
//!
//! 1. The first frame must be a `Hello` whose version falls in
//!    [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`]; anything else earns a
//!    `Fault` and the connection is dropped. v1 clients speak
//!    single-`Event` frames; v2 clients may also send `EventBatch`.
//! 2. `Open`/`Event`/`EventBatch`/`Close` frames route to the session's
//!    shard. A full shard queue bounces the frame back as `Fault(Busy)`
//!    — the bytes are never buffered beyond the bounded shard queue.
//! 3. Undecodable bytes produce `Fault(BadFrame)` and close the
//!    connection; the decoder returns typed errors and never panics, so
//!    hostile input costs one connection, not the process.
//! 4. On EOF (or error) the reader submits `Close` for every session the
//!    connection still has open, so abandoned connections cannot leak
//!    sessions.
//! 5. Each connection holds a [`SessionRouter::new_conn_id`] identity
//!    stamped on every message it routes; the shard rejects `Event`/
//!    `Close` from any connection other than the session's opener with
//!    `Fault(UnknownSession)`, so one connection can neither feed nor
//!    tear down another's sessions.
//!
//! Shutdown is graceful and idempotent: stop the accept loop (a self-
//! connection unblocks `accept`), shut down every live connection's
//! socket to unblock its reader, join all connection threads, then shut
//! down the router (which finalizes any remaining sessions). The
//! registry of live connections is keyed by connection id and pruned as
//! connections end — a long-running server does not accumulate dead
//! streams or finished thread handles.
//!
//! Fast path (wire v2): the reader decodes frames zero-copy through
//! [`FrameBuffer::next_client_view`] from a large read buffer (one
//! `read` drains everything the kernel has before blocking), batch
//! payloads land in pooled `Vec`s recycled through the router's
//! [`crate::BatchPool`], and the writer coalesces queued reply frames
//! into one `write` per flush behind an adaptive threshold
//! ([`TcpOptions`]) that grows when replies keep arriving and decays
//! when the queue naturally drains. `TCP_NODELAY` is set on every
//! accepted socket so a flush becomes a packet immediately.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::ServiceMetrics;
use crate::router::{SessionRouter, ShardMsg, SubmitError};
use crate::wire::{
    encode_server, ClientFrameView, FaultCode, FrameBuffer, ServerFrame, MIN_WIRE_VERSION,
    WIRE_VERSION,
};

/// How long the accept loop sleeps after `accept()` fails, so persistent
/// errors (e.g. fd exhaustion) degrade to slow retries instead of a
/// busy-spin.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// Size of each connection reader's buffer: one `read` call drains
/// everything the kernel has buffered (up to this much) before the
/// thread blocks again.
const READ_CHUNK: usize = 64 * 1024;

/// Per-connection transport tuning for the coalescing writer.
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Initial (and floor) writer flush threshold in bytes: the writer
    /// keeps appending queued reply frames to its buffer until it either
    /// drains the queue or crosses this size, then issues one `write`.
    pub flush_start: usize,
    /// Ceiling the adaptive threshold may grow to under sustained reply
    /// pressure. Each threshold-capped flush doubles the threshold; each
    /// natural drain halves it back toward `flush_start`.
    pub flush_max: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        Self {
            flush_start: 4 * 1024,
            flush_max: 64 * 1024,
        }
    }
}

impl TcpOptions {
    /// `flush_start` clamped to something sane.
    fn start_bytes(&self) -> usize {
        self.flush_start.clamp(64, 1 << 20)
    }

    /// `flush_max` clamped to at least the start threshold.
    fn max_bytes(&self) -> usize {
        self.flush_max.max(self.start_bytes())
    }
}

/// Live-connection registry shared between the accept loop and shutdown,
/// keyed by connection id. Entries are removed when their connection
/// ends: the connection thread prunes its own stream clone and thread
/// handle on exit, and the accept loop reaps any handle that finished
/// before it could be registered.
#[derive(Default)]
struct ConnRegistry {
    streams: Mutex<HashMap<u64, TcpStream>>,
    threads: Mutex<HashMap<u64, JoinHandle<()>>>,
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The running TCP service. Dropping it shuts everything down.
pub struct TcpService {
    router: Arc<SessionRouter>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    registry: Arc<ConnRegistry>,
}

impl TcpService {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections for `router`, with default
    /// [`TcpOptions`].
    pub fn start(router: Arc<SessionRouter>, addr: &str) -> std::io::Result<Self> {
        Self::start_with(router, addr, TcpOptions::default())
    }

    /// [`TcpService::start`] with explicit transport tuning.
    pub fn start_with(
        router: Arc<SessionRouter>,
        addr: &str,
        options: TcpOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnRegistry::default());
        let accept_thread = {
            let router = router.clone();
            let stop = stop.clone();
            let registry = registry.clone();
            std::thread::Builder::new()
                .name("grandma-accept".into())
                .spawn(move || accept_loop(listener, router, stop, registry, options))?
        };
        Ok(Self {
            router,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            registry,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this front-end.
    pub fn router(&self) -> &Arc<SessionRouter> {
        &self.router
    }

    /// The shared service metrics.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.router.metrics()
    }

    /// Gracefully stops accepting, drains and joins every connection,
    /// and shuts the router down. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Unblock each connection's blocking read. Take the maps out of
        // their mutexes first: joining while holding a registry lock
        // would deadlock against a connection thread pruning its own
        // entries on exit.
        let streams = std::mem::take(&mut *lock_or_recover(&self.registry.streams));
        for stream in streams.into_values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads = std::mem::take(&mut *lock_or_recover(&self.registry.threads));
        for handle in threads.into_values() {
            let _ = handle.join();
        }
        self.router.shutdown();
    }
}

impl Drop for TcpService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<SessionRouter>,
    stop: Arc<AtomicBool>,
    registry: Arc<ConnRegistry>,
    options: TcpOptions,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            // Persistent accept errors (EMFILE and friends) must retry
            // slowly, not spin a core.
            std::thread::sleep(ACCEPT_ERROR_BACKOFF);
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            // The shutdown self-connection (or a late client): drop it.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        // Connections normally prune their own registry entries on exit;
        // reap any handle that finished before it was registered.
        reap_finished(&registry);
        let conn = router.new_conn_id();
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            lock_or_recover(&registry.streams).insert(conn, clone);
        }
        let conn_router = router.clone();
        let conn_registry = registry.clone();
        let spawned = std::thread::Builder::new()
            .name("grandma-conn".into())
            .spawn(move || handle_connection(conn, stream, conn_router, conn_registry, options));
        match spawned {
            Ok(handle) => {
                lock_or_recover(&registry.threads).insert(conn, handle);
            }
            Err(_) => {
                lock_or_recover(&registry.streams).remove(&conn);
            }
        }
    }
}

/// Joins and removes every registry thread handle whose connection has
/// already finished.
fn reap_finished(registry: &ConnRegistry) {
    let finished: Vec<JoinHandle<()>> = {
        let mut guard = lock_or_recover(&registry.threads);
        let done: Vec<u64> = guard
            .iter()
            .filter(|(_, handle)| handle.is_finished())
            .map(|(conn, _)| *conn)
            .collect();
        done.iter().filter_map(|conn| guard.remove(conn)).collect()
    };
    // Join outside the lock: these threads have already finished, but a
    // join that races their last instructions must not hold the registry.
    for handle in finished {
        let _ = handle.join();
    }
}

/// Sends `frame` to the connection's writer; a dead writer just means the
/// client is gone.
fn reply(tx: &Sender<ServerFrame>, frame: ServerFrame) {
    let _ = tx.send(frame);
}

/// One connection: reads frames, routes them stamped with the
/// connection's identity, and on exit closes every session the
/// connection left open, then prunes its registry entries.
fn handle_connection(
    conn: u64,
    mut stream: TcpStream,
    router: Arc<SessionRouter>,
    registry: Arc<ConnRegistry>,
    options: TcpOptions,
) {
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<ServerFrame>();
    let writer_metrics = router.metrics().clone();
    let writer = stream.try_clone().ok().and_then(|mut out| {
        std::thread::Builder::new()
            .name("grandma-conn-writer".into())
            .spawn(move || {
                // One reusable encode buffer for the connection's whole
                // lifetime, flushed as one write per coalescing round.
                // The threshold adapts: a flush that was capped by the
                // threshold (replies still queued) doubles it, a flush
                // that drained the queue naturally halves it back toward
                // the floor — bursty sessions get big writes, idle ones
                // get low latency.
                let floor = options.start_bytes();
                let ceiling = options.max_bytes();
                let mut threshold = floor;
                let mut bytes = Vec::with_capacity(floor);
                while let Ok(frame) = reply_rx.recv() {
                    bytes.clear();
                    let mut queued = 1u64;
                    encode_server(&frame, &mut bytes);
                    while bytes.len() < threshold {
                        match reply_rx.try_recv() {
                            Ok(next) => {
                                encode_server(&next, &mut bytes);
                                queued += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    let capped = bytes.len() >= threshold;
                    if out.write_all(&bytes).is_err() {
                        return;
                    }
                    let _ = out.flush();
                    writer_metrics.writer_flushes.fetch_add(1, Ordering::Relaxed);
                    writer_metrics.frames_sent.fetch_add(queued, Ordering::Relaxed);
                    threshold = if capped {
                        (threshold * 2).min(ceiling)
                    } else {
                        (threshold / 2).max(floor)
                    };
                }
            })
            .ok()
    });

    let mut frames = FrameBuffer::new();
    // Heap chunk: big enough that one read drains the kernel buffer for
    // a whole burst of batches before the thread blocks again.
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut hello_ok = false;
    let mut open_sessions: HashSet<u64> = HashSet::new();
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        frames.extend(chunk.get(..n).unwrap_or(&[]));
        loop {
            // Zero-copy decode: batch payloads are iterated straight out
            // of the frame buffer; only the pooled `Vec` that crosses
            // the shard channel is written to.
            let frame = match frames.next_client_view() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    router
                        .metrics()
                        .decode_errors
                        .fetch_add(1, Ordering::Relaxed);
                    reply(
                        &reply_tx,
                        ServerFrame::Fault {
                            session: 0,
                            seq: 0,
                            code: FaultCode::BadFrame,
                        },
                    );
                    break 'conn;
                }
            };
            if !hello_ok {
                match frame {
                    ClientFrameView::Hello { version }
                        if (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) =>
                    {
                        hello_ok = true;
                        continue;
                    }
                    ClientFrameView::Hello { .. } => {
                        reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session: 0,
                                seq: 0,
                                code: FaultCode::VersionMismatch,
                            },
                        );
                    }
                    _ => {
                        reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session: 0,
                                seq: 0,
                                code: FaultCode::BadFrame,
                            },
                        );
                    }
                }
                break 'conn;
            }
            match frame {
                ClientFrameView::Hello { .. } => {
                    // A second Hello is harmless; ignore it.
                }
                ClientFrameView::Open { session } => {
                    let msg = ShardMsg::Open {
                        conn,
                        session,
                        seq: 0,
                        reply: reply_tx.clone(),
                    };
                    match router.submit(msg) {
                        Ok(()) => {
                            // Optimistic: the shard may still reject the
                            // Open (AlreadyOpen/SessionLimit). That is
                            // harmless — the teardown Close below carries
                            // our conn id, so it cannot touch a session
                            // some other connection owns.
                            open_sessions.insert(session);
                        }
                        Err(SubmitError::Busy) => reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session,
                                seq: 0,
                                code: FaultCode::Busy,
                            },
                        ),
                        Err(SubmitError::Closed) => break 'conn,
                    }
                }
                ClientFrameView::Event {
                    session,
                    seq,
                    event,
                } => match router.submit(ShardMsg::Event {
                    conn,
                    session,
                    seq,
                    event,
                    reply: reply_tx.clone(),
                }) {
                    Ok(()) => {}
                    Err(SubmitError::Busy) => reply(
                        &reply_tx,
                        ServerFrame::Fault {
                            session,
                            seq,
                            code: FaultCode::Busy,
                        },
                    ),
                    Err(SubmitError::Closed) => break 'conn,
                },
                ClientFrameView::EventBatch(view) => {
                    let session = view.session();
                    let mut events = router.batch_pool().take();
                    events.extend(view.iter());
                    let first_seq = events.first().map(|&(s, _)| s).unwrap_or(0);
                    match router.submit(ShardMsg::EventBatch {
                        conn,
                        session,
                        events,
                        reply: reply_tx.clone(),
                    }) {
                        Ok(()) => {}
                        // The whole batch is rejected as a unit; submit
                        // already recycled its buffer.
                        Err(SubmitError::Busy) => reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session,
                                seq: first_seq,
                                code: FaultCode::Busy,
                            },
                        ),
                        Err(SubmitError::Closed) => break 'conn,
                    }
                }
                ClientFrameView::Close { session, seq } => {
                    open_sessions.remove(&session);
                    match submit_close(&router, conn, session, seq, &reply_tx) {
                        Ok(()) => {}
                        Err(SubmitError::Busy) => reply(
                            &reply_tx,
                            ServerFrame::Fault {
                                session,
                                seq,
                                code: FaultCode::Busy,
                            },
                        ),
                        Err(SubmitError::Closed) => break 'conn,
                    }
                }
            }
        }
    }
    // Reap sessions the connection abandoned so their pipelines finalize.
    for session in open_sessions {
        let _ = submit_close(&router, conn, session, u32::MAX, &reply_tx);
    }
    drop(reply_tx);
    if let Some(handle) = writer {
        let _ = handle.join();
    }
    let _ = stream.shutdown(Shutdown::Both);
    // Prune our registry entries so a long-running server does not leak
    // one fd + one thread handle per past connection. The cleanup Closes
    // above were submitted before this removal, so a shutdown that finds
    // the handle already gone still sees them queued at the router.
    lock_or_recover(&registry.streams).remove(&conn);
    // Dropping our own JoinHandle detaches this thread; shutdown either
    // joined it already or finds nothing left to wait for.
    let _ = lock_or_recover(&registry.threads).remove(&conn);
}

/// Close is the one message worth briefly retrying under backpressure:
/// losing it leaks the session until connection teardown.
fn submit_close(
    router: &Arc<SessionRouter>,
    conn: u64,
    session: u64,
    seq: u32,
    reply: &Sender<ServerFrame>,
) -> Result<(), SubmitError> {
    for _ in 0..64 {
        let msg = ShardMsg::Close {
            conn,
            session,
            seq,
            reply: reply.clone(),
        };
        match router.submit(msg) {
            Err(SubmitError::Busy) => std::thread::sleep(std::time::Duration::from_micros(250)),
            other => return other,
        }
    }
    Err(SubmitError::Busy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ServeConfig;
    use crate::wire::{encode_client, ClientFrame, OutcomeKind};
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_synth::datasets;
    use std::time::Duration;

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    fn read_server_frames(stream: &mut TcpStream, until_closed_for: u64) -> Vec<ServerFrame> {
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 4096];
        let mut out = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return out,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("valid server bytes") {
                let done = matches!(
                    frame,
                    ServerFrame::Outcome {
                        session,
                        outcome: OutcomeKind::Closed,
                        ..
                    } if session == until_closed_for
                );
                out.push(frame);
                if done {
                    return out;
                }
            }
        }
    }

    #[test]
    fn tcp_session_round_trips_and_shuts_down() {
        use grandma_events::{Button, EventScript};
        let service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut service = service;
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 1 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session: 1,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 1,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 1);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        assert_eq!(service.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn batched_tcp_session_round_trips() {
        use grandma_events::{Button, EventScript};
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 2 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events: Vec<(u32, grandma_events::InputEvent)> = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (i as u32, e))
            .collect();
        crate::wire::encode_event_batch(2, &events, &mut bytes);
        encode_client(
            &ClientFrame::Close {
                session: 2,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 2);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.batches_ingested, 1);
        assert_eq!(snap.events_ingested, events.len() as u64);
        assert!(snap.frames_sent >= frames.len() as u64);
        assert!(snap.writer_flushes >= 1);
    }

    #[test]
    fn v1_client_round_trips_against_v2_server() {
        use grandma_events::{Button, EventScript};
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        let mut bytes = Vec::new();
        // A v1 client: old Hello version, single-Event frames only.
        encode_client(
            &ClientFrame::Hello {
                version: MIN_WIRE_VERSION,
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Open { session: 3 }, &mut bytes);
        let data = datasets::eight_way(0x7e57, 0, 1);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .into_events();
        for (i, e) in events.iter().enumerate() {
            encode_client(
                &ClientFrame::Event {
                    session: 3,
                    seq: i as u32,
                    event: *e,
                },
                &mut bytes,
            );
        }
        encode_client(
            &ClientFrame::Close {
                session: 3,
                seq: events.len() as u32,
            },
            &mut bytes,
        );
        stream.write_all(&bytes).expect("write");
        let frames = read_server_frames(&mut stream, 3);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        assert_eq!(service.metrics().snapshot().sessions_closed, 1);
    }

    #[test]
    fn garbage_bytes_fault_and_close_the_connection() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
        stream
            .write_all(&[0xFF; 64])
            .expect("write garbage");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 256];
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut got_fault = false;
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => fb.extend(&chunk[..n]),
            }
            while let Some(frame) = fb.next_server().expect("server bytes") {
                if matches!(
                    frame,
                    ServerFrame::Fault {
                        code: FaultCode::BadFrame,
                        ..
                    }
                ) {
                    got_fault = true;
                }
            }
            if got_fault {
                break;
            }
        }
        assert!(got_fault, "hostile bytes must earn a BadFrame fault");
        service.shutdown();
        assert!(service.metrics().snapshot().decode_errors >= 1);
    }

    #[test]
    fn sessions_are_bound_to_their_connection() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let addr = service.local_addr();
        let mut hello = Vec::new();
        encode_client(
            &ClientFrame::Hello {
                version: WIRE_VERSION,
            },
            &mut hello,
        );

        let mut owner = TcpStream::connect(addr).expect("connect owner");
        let mut bytes = hello.clone();
        encode_client(&ClientFrame::Open { session: 5 }, &mut bytes);
        owner.write_all(&bytes).expect("owner open");

        // A second connection tries to close (and feed) the owner's
        // session; it must only ever see UnknownSession.
        let mut intruder = TcpStream::connect(addr).expect("connect intruder");
        let mut bytes = hello.clone();
        encode_client(
            &ClientFrame::Event {
                session: 5,
                seq: 0,
                event: grandma_events::InputEvent::new(
                    grandma_events::EventKind::MouseMove,
                    1.0,
                    1.0,
                    1.0,
                ),
            },
            &mut bytes,
        );
        encode_client(&ClientFrame::Close { session: 5, seq: 1 }, &mut bytes);
        intruder.write_all(&bytes).expect("intruder write");
        let mut fb = FrameBuffer::new();
        let mut chunk = [0u8; 1024];
        intruder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut faults = 0;
        while faults < 2 {
            let n = match intruder.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            fb.extend(&chunk[..n]);
            while let Some(frame) = fb.next_server().expect("server bytes") {
                assert!(
                    matches!(
                        frame,
                        ServerFrame::Fault {
                            session: 5,
                            code: FaultCode::UnknownSession,
                            ..
                        }
                    ),
                    "intruder saw {frame:?}"
                );
                faults += 1;
            }
        }
        assert_eq!(faults, 2, "both intrusions must bounce as UnknownSession");
        drop(intruder);

        // The owner's session survived the foreign Close.
        let mut bytes = Vec::new();
        encode_client(&ClientFrame::Close { session: 5, seq: 2 }, &mut bytes);
        owner.write_all(&bytes).expect("owner close");
        let frames = read_server_frames(&mut owner, 5);
        assert!(matches!(
            frames.last(),
            Some(ServerFrame::Outcome {
                outcome: OutcomeKind::Closed,
                ..
            })
        ));
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert_eq!(snap.unknown_sessions, 2, "{snap:?}");
    }

    #[test]
    fn finished_connections_are_pruned_from_the_registry() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        let addr = service.local_addr();
        for round in 0..4u64 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut bytes = Vec::new();
            encode_client(
                &ClientFrame::Hello {
                    version: WIRE_VERSION,
                },
                &mut bytes,
            );
            encode_client(&ClientFrame::Open { session: round }, &mut bytes);
            encode_client(
                &ClientFrame::Close {
                    session: round,
                    seq: 0,
                },
                &mut bytes,
            );
            stream.write_all(&bytes).expect("write");
            let frames = read_server_frames(&mut stream, round);
            assert!(!frames.is_empty());
        }
        // Connection threads prune their own entries as they exit; wait
        // for the last ones to get there.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let streams = lock_or_recover(&service.registry.streams).len();
            let threads = lock_or_recover(&service.registry.threads).len();
            if streams == 0 && threads == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "registry still holds {streams} streams / {threads} threads"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 4);
        assert_eq!(snap.sessions_closed, 4);
    }

    #[test]
    fn dropped_connection_reaps_its_sessions() {
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), ServeConfig::default()),
            "127.0.0.1:0",
        )
        .expect("bind");
        {
            let mut stream = TcpStream::connect(service.local_addr()).expect("connect");
            let mut bytes = Vec::new();
            encode_client(
                &ClientFrame::Hello {
                    version: WIRE_VERSION,
                },
                &mut bytes,
            );
            encode_client(&ClientFrame::Open { session: 9 }, &mut bytes);
            stream.write_all(&bytes).expect("write");
            stream.flush().expect("flush");
            // Give the server a moment to register the session, then
            // vanish without a Close.
            std::thread::sleep(Duration::from_millis(100));
        }
        // Shutdown joins the reader, which must have closed session 9.
        service.shutdown();
        let snap = service.metrics().snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1, "{snap:?}");
    }
}
