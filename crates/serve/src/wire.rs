//! The versioned binary wire protocol.
//!
//! Every frame on the wire is length-prefixed:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────────┐
//! │ u32 LE len │ u8 tag  │ payload (len − 1 bytes)  │
//! └────────────┴─────────┴──────────────────────────┘
//! ```
//!
//! `len` counts the tag plus the payload and is capped at
//! [`MAX_FRAME_LEN`]; a larger prefix is a protocol violation
//! ([`WireError::Oversized`]), never an allocation request. All integers
//! are little-endian; floating-point fields travel as raw IEEE-754 bit
//! patterns so NaN and ±∞ — which corrupted device streams legitimately
//! contain — cross the wire unchanged and are repaired *server-side* by
//! the [`grandma_events::EventSanitizer`].
//!
//! Client → server: [`ClientFrame`] (`Hello`, `Open`, `Event`,
//! `EventBatch`, `Close`, `Resume`, `Handoff`). Server → client:
//! [`ServerFrame`] (`Recognized`, `Manipulate`, `Outcome`, `Fault`,
//! `Resumed`, `HandoffAck`, `NotOwner`).
//!
//! # Wire v2: event batching
//!
//! Version 2 adds the `EventBatch` frame (tag `0x05`): up to
//! [`MAX_BATCH_EVENTS`] events for one session packed into a single
//! length-prefixed frame, each record carrying its own `seq` so the seq
//! echo (and per-event RTT attribution) is preserved. Batched frames use
//! a larger length cap ([`MAX_BATCH_FRAME_LEN`]); every other frame is
//! still held to [`MAX_FRAME_LEN`]. The server speaks every protocol
//! version in `MIN_WIRE_VERSION..=WIRE_VERSION` (currently 1..=4): a v4
//! server accepts v1 `Hello`s and v1 single-`Event` streams unchanged; a
//! batch of events is defined to be semantically identical to the same
//! events sent as consecutive single `Event` frames.
//!
//! # Wire v3: session resume
//!
//! Version 3 adds the crash/disconnect recovery pair. `Resume` (tag
//! `0x06`, client → server) re-binds an existing session to the sending
//! connection after a disconnect, carrying the session id and the
//! client's last-acked `seq`. The server answers with `Resumed` (tag
//! `0x85`) carrying *its* last processed `seq` for the session — the
//! server replays nothing; the client re-sends every event with
//! `seq > last_seq` from its unacked window. A `Resume` for a session
//! the server does not hold (or one still owned by a live connection)
//! is answered with a [`FaultCode::UnknownSession`] fault, exactly like
//! a misaddressed `Event`, so sessions cannot be probed across
//! connections.
//!
//! # Wire v4: cluster routing and session handoff
//!
//! Version 4 adds the multi-node triplet. `Handoff` (tag `0x07`,
//! client → server) installs an encoded
//! [`crate::session::SessionSnapshot`] on the receiving node — the
//! payload is the same versioned snapshot format the WAL persists, so
//! the snapshot-version lockstep lint covers handoff bytes for free.
//! The receiver answers with `HandoffAck` (tag `0x86`) carrying the
//! installed session's `last_seq`; the session sits orphaned until its
//! client `Resume`s it. `NotOwner` (tag `0x87`, server → client) is the
//! typed redirect a cluster node sends when the consistent-hash ring
//! says another node owns the session: it names the owner's socket
//! address and the client re-routes there. `Handoff` frames use their
//! own length cap ([`MAX_HANDOFF_FRAME_LEN`]), sized so a handoff
//! record always fits a WAL record.
//!
//! The hot decode path is allocation-free: [`decode_client_view`] returns
//! a [`ClientFrameView`] whose batch variant ([`EventBatchView`]) borrows
//! the packed records straight out of the receive buffer — records are
//! fully validated at decode time so iterating them cannot fail.
//!
//! Encoding and decoding are pure functions of bytes; the streaming
//! [`FrameBuffer`] feeds a byte stream through them incrementally. A
//! decoder handed hostile bytes returns a typed [`WireError`] — it must
//! never panic, which the fuzz suite in `tests/wire_roundtrip.rs` checks
//! against seeded byte soup.

use grandma_events::{Button, EventKind, InputEvent};
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6};

/// Protocol version spoken by this build; [`ClientFrame::Hello`] carries
/// the client's version and anything outside
/// [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] closes the connection with
/// [`FaultCode::VersionMismatch`].
pub const WIRE_VERSION: u16 = 4;

/// Oldest client version this build still serves. Version 1 clients
/// (single-`Event` frames only) round-trip against a v4 server
/// unchanged; they simply never send `EventBatch`, `Resume`, or
/// `Handoff`.
pub const MIN_WIRE_VERSION: u16 = 1;

/// Upper bound on the length prefix (tag + payload) for every frame
/// except `EventBatch`. The largest real single frame is `Event` at 39
/// bytes; anything claiming more is hostile.
pub const MAX_FRAME_LEN: usize = 128;

/// Bytes of one packed batch record: `seq: u32`, `kind: u8`,
/// `button: u8`, and `x`/`y`/`t` as raw `f64` bits.
pub const EVENT_RECORD_LEN: usize = 30;

/// Maximum events one `EventBatch` frame may carry; longer client-side
/// batches are split across frames by [`encode_event_batch`].
pub const MAX_BATCH_EVENTS: usize = 256;

/// Length-prefix cap for `EventBatch` frames: tag + session + count +
/// a full complement of records.
pub const MAX_BATCH_FRAME_LEN: usize = 1 + 8 + 2 + MAX_BATCH_EVENTS * EVENT_RECORD_LEN;

/// Length-prefix cap for `Handoff` frames (wire v4). A handoff carries a
/// whole encoded session snapshot, so its cap is far above every other
/// frame's — but it is sized so the full wire frame (4-byte prefix +
/// tag + snapshot) still fits a single WAL record
/// (`wal::MAX_RECORD_LEN`), because handed-off sessions are journaled
/// as-received.
pub const MAX_HANDOFF_FRAME_LEN: usize = (1 << 20) - 8;

/// Typed decoding failure. Every variant is a protocol violation that is
/// fatal for the connection; an incomplete frame is *not* an error (the
/// decoders return `Ok(None)` until more bytes arrive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed length.
        len: usize,
    },
    /// The length prefix was zero (no room for a tag).
    EmptyFrame,
    /// The frame tag byte is not a known frame kind.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// A payload field held a value outside its enum's range.
    BadEnum {
        /// Which field.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The payload ended before the frame's fields did.
    Malformed {
        /// Which field ran out of bytes.
        what: &'static str,
    },
    /// The payload was longer than the frame's fields.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A wire integer did not fit the host type it feeds (decode paths
    /// convert with `try_from`, never a truncating `as` cast).
    IntOutOfRange {
        /// Which field.
        what: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => write!(f, "frame length {len} exceeds cap"),
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::UnknownTag { tag } => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::BadEnum { what, value } => write!(f, "bad {what} value {value}"),
            WireError::Malformed { what } => write!(f, "frame truncated reading {what}"),
            WireError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes in frame"),
            WireError::IntOutOfRange { what } => {
                write!(f, "{what} does not fit the host integer type")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Protocol handshake: the client's wire version. Must be the first
    /// frame on a connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Opens a recognition session. Session ids are client-chosen and
    /// route the session to a shard.
    Open {
        /// Session id.
        session: u64,
    },
    /// One input event for a session. `seq` is a client-assigned
    /// correlation id echoed on every server frame the event provokes.
    Event {
        /// Session id.
        session: u64,
        /// Client-assigned sequence number.
        seq: u32,
        /// The raw (possibly corrupted) input event.
        event: InputEvent,
    },
    /// Many events for one session in a single frame (wire v2). Each
    /// record keeps its own `seq`, so server frames correlate exactly as
    /// they would for the same events sent as single `Event` frames.
    EventBatch {
        /// Session id (resolved once per batch server-side).
        session: u64,
        /// The `(seq, event)` records, in send order.
        events: Vec<(u32, InputEvent)>,
    },
    /// Ends a session: the server flushes its sanitizer, finalizes any
    /// open interaction, and replies with a terminal
    /// [`OutcomeKind::Closed`] outcome.
    Close {
        /// Session id.
        session: u64,
        /// Client-assigned sequence number.
        seq: u32,
    },
    /// Re-binds an existing (orphaned or same-connection) session to the
    /// sending connection after a disconnect (wire v3). Answered with
    /// [`ServerFrame::Resumed`] on success, an
    /// [`FaultCode::UnknownSession`] fault otherwise.
    Resume {
        /// Session id.
        session: u64,
        /// Highest `seq` the client has seen acknowledged; advisory (the
        /// server's own `last_seq` in the `Resumed` reply is
        /// authoritative).
        last_seq: u32,
    },
    /// Transfers one session to the receiving node (wire v4). The
    /// payload is an encoded [`crate::session::SessionSnapshot`] —
    /// opaque at the wire layer; the versioned snapshot codec validates
    /// it. Answered with [`ServerFrame::HandoffAck`] on success, a
    /// typed fault otherwise.
    Handoff {
        /// The encoded snapshot bytes.
        snapshot: Vec<u8>,
    },
}

/// How an interaction (or session) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Classified at mouse-up; the manipulation phase was omitted.
    Recognized,
    /// Classified mid-gesture and manipulated to a clean mouse-up.
    Manipulated,
    /// Torn down: grab break or fault budget exhausted.
    Cancelled,
    /// Classification declined to act (low probability or degenerate
    /// features).
    Rejected,
    /// The session itself was closed; emitted exactly once per
    /// [`ClientFrame::Close`] as the end-of-session marker.
    Closed,
}

impl OutcomeKind {
    fn to_u8(self) -> u8 {
        match self {
            OutcomeKind::Recognized => 0,
            OutcomeKind::Manipulated => 1,
            OutcomeKind::Cancelled => 2,
            OutcomeKind::Rejected => 3,
            OutcomeKind::Closed => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => OutcomeKind::Recognized,
            1 => OutcomeKind::Manipulated,
            2 => OutcomeKind::Cancelled,
            3 => OutcomeKind::Rejected,
            4 => OutcomeKind::Closed,
            _ => {
                return Err(WireError::BadEnum {
                    what: "outcome",
                    value: v,
                })
            }
        })
    }
}

/// What went wrong, as reported in a [`ServerFrame::Fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// Non-finite coordinates repaired or dropped by the sanitizer.
    NonFiniteCoordinates,
    /// Non-finite timestamp repaired or dropped.
    NonFiniteTimestamp,
    /// Out-of-order timestamp clamped to the present.
    OutOfOrder,
    /// Event older than the reorder window; dropped.
    DroppedStale,
    /// Duplicate `MouseDown` demoted to a move.
    DuplicateMouseDown,
    /// `MouseUp` with no interaction in progress; dropped.
    UnmatchedMouseUp,
    /// Grab presumed broken; a `GrabBreak` was synthesized.
    MissingMouseUp,
    /// The session's shard queue is full; the frame was rejected, not
    /// queued. The client may retry after draining replies.
    Busy,
    /// The connection sent bytes that do not decode; the connection is
    /// closed after this frame.
    BadFrame,
    /// An `Event`/`Close` referenced a session this server does not hold
    /// — or one opened by a different connection, which is deliberately
    /// reported identically so sessions cannot be probed or disturbed
    /// across connections.
    UnknownSession,
    /// An `Open` for a session id that is already open.
    AlreadyOpen,
    /// The shard is at its session-count cap; the `Open` was rejected.
    SessionLimit,
    /// The client's `Hello` version differs from [`WIRE_VERSION`]; the
    /// connection is closed after this frame.
    VersionMismatch,
}

impl FaultCode {
    fn to_u8(self) -> u8 {
        match self {
            FaultCode::NonFiniteCoordinates => 0,
            FaultCode::NonFiniteTimestamp => 1,
            FaultCode::OutOfOrder => 2,
            FaultCode::DroppedStale => 3,
            FaultCode::DuplicateMouseDown => 4,
            FaultCode::UnmatchedMouseUp => 5,
            FaultCode::MissingMouseUp => 6,
            FaultCode::Busy => 7,
            FaultCode::BadFrame => 8,
            FaultCode::UnknownSession => 9,
            FaultCode::AlreadyOpen => 10,
            FaultCode::SessionLimit => 11,
            FaultCode::VersionMismatch => 12,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            0 => FaultCode::NonFiniteCoordinates,
            1 => FaultCode::NonFiniteTimestamp,
            2 => FaultCode::OutOfOrder,
            3 => FaultCode::DroppedStale,
            4 => FaultCode::DuplicateMouseDown,
            5 => FaultCode::UnmatchedMouseUp,
            6 => FaultCode::MissingMouseUp,
            7 => FaultCode::Busy,
            8 => FaultCode::BadFrame,
            9 => FaultCode::UnknownSession,
            10 => FaultCode::AlreadyOpen,
            11 => FaultCode::SessionLimit,
            12 => FaultCode::VersionMismatch,
            _ => {
                return Err(WireError::BadEnum {
                    what: "fault code",
                    value: v,
                })
            }
        })
    }
}

/// Frames the server sends. Every frame carries the session id and the
/// `seq` of the client event that provoked it, so clients can correlate
/// replies (and measure per-event round trips).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerFrame {
    /// The eager recognizer (or dwell/mouse-up classification) committed
    /// to a class mid-gesture; the session is now manipulating.
    Recognized {
        /// Session id.
        session: u64,
        /// Triggering event's sequence number.
        seq: u32,
        /// Winning class index.
        class: u16,
        /// Points collected when classification fired.
        points: u32,
    },
    /// One manipulation-phase position update (the `manip` stream the
    /// consuming application would drive its direct manipulation from).
    Manipulate {
        /// Session id.
        session: u64,
        /// Triggering event's sequence number.
        seq: u32,
        /// Pointer x.
        x: f64,
        /// Pointer y.
        y: f64,
    },
    /// Terminal state of one interaction (or of the session itself, for
    /// [`OutcomeKind::Closed`]).
    Outcome {
        /// Session id.
        session: u64,
        /// Triggering event's sequence number.
        seq: u32,
        /// How the interaction ended.
        outcome: OutcomeKind,
        /// The recognized class, when there was one.
        class: Option<u16>,
        /// Points in the whole interaction.
        total_points: u32,
        /// Stream faults charged to the interaction.
        faults: u32,
    },
    /// A stream repair, rejection, or protocol error.
    Fault {
        /// Session id (0 when the fault is connection-level).
        session: u64,
        /// Triggering event's sequence number (0 when connection-level).
        seq: u32,
        /// What happened.
        code: FaultCode,
    },
    /// Acknowledges a [`ClientFrame::Resume`] (wire v3): the session is
    /// re-bound to this connection and `last_seq` is the highest event
    /// sequence number the server has processed — the client re-sends
    /// everything after it.
    Resumed {
        /// Session id.
        session: u64,
        /// Highest `seq` the server has processed for the session.
        last_seq: u32,
    },
    /// Acknowledges a [`ClientFrame::Handoff`] (wire v4): the snapshot
    /// decoded and the session is installed (orphaned, awaiting its
    /// client's `Resume`).
    HandoffAck {
        /// Session id recovered from the snapshot.
        session: u64,
        /// Highest `seq` baked into the snapshot.
        last_seq: u32,
    },
    /// Cluster redirect (wire v4): the consistent-hash ring maps the
    /// session to a different node. The client should reconnect to
    /// `owner` and retry there; nothing was done with the frame that
    /// provoked this.
    NotOwner {
        /// Session id the redirect is about.
        session: u64,
        /// Socket address of the owning node.
        owner: SocketAddr,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_OPEN: u8 = 0x02;
const TAG_EVENT: u8 = 0x03;
const TAG_CLOSE: u8 = 0x04;
const TAG_EVENT_BATCH: u8 = 0x05;
const TAG_RESUME: u8 = 0x06;
const TAG_HANDOFF: u8 = 0x07;
const TAG_RECOGNIZED: u8 = 0x81;
const TAG_MANIPULATE: u8 = 0x82;
const TAG_OUTCOME: u8 = 0x83;
const TAG_FAULT: u8 = 0x84;
const TAG_RESUMED: u8 = 0x85;
const TAG_HANDOFF_ACK: u8 = 0x86;
const TAG_NOT_OWNER: u8 = 0x87;

/// Sentinel for "no class" in an `Outcome` frame.
pub(crate) const NO_CLASS: u16 = u16::MAX;

fn kind_to_bytes(kind: EventKind) -> (u8, u8) {
    match kind {
        EventKind::MouseDown { button } => (0, button_to_u8(button)),
        EventKind::MouseMove => (1, 0),
        EventKind::MouseUp { button } => (2, button_to_u8(button)),
        EventKind::Timeout => (3, 0),
        EventKind::GrabBreak => (4, 0),
    }
}

fn button_to_u8(b: Button) -> u8 {
    match b {
        Button::Left => 0,
        Button::Middle => 1,
        Button::Right => 2,
    }
}

fn button_from_u8(v: u8) -> Result<Button, WireError> {
    Ok(match v {
        0 => Button::Left,
        1 => Button::Middle,
        2 => Button::Right,
        _ => {
            return Err(WireError::BadEnum {
                what: "button",
                value: v,
            })
        }
    })
}

fn kind_from_bytes(kind: u8, button: u8) -> Result<EventKind, WireError> {
    Ok(match kind {
        0 => EventKind::MouseDown {
            button: button_from_u8(button)?,
        },
        1 => EventKind::MouseMove,
        2 => EventKind::MouseUp {
            button: button_from_u8(button)?,
        },
        3 => EventKind::Timeout,
        4 => EventKind::GrabBreak,
        _ => {
            return Err(WireError::BadEnum {
                what: "event kind",
                value: kind,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Patches the 4-byte length prefix reserved at `at` once the body is
/// written.
fn finish_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    let bytes = len.to_le_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if let Some(slot) = out.get_mut(at + i) {
            *slot = *b;
        }
    }
}

/// Appends the encoded client frame(s) to `out`. Every variant encodes
/// to exactly one frame except `EventBatch`, which splits into as many
/// frames as [`MAX_BATCH_EVENTS`] requires (see [`encode_event_batch`]).
pub fn encode_client(frame: &ClientFrame, out: &mut Vec<u8>) {
    if let ClientFrame::EventBatch { session, events } = frame {
        encode_event_batch(*session, events, out);
        return;
    }
    let at = out.len();
    put_u32(out, 0);
    match *frame {
        ClientFrame::Hello { version } => {
            out.push(TAG_HELLO);
            put_u16(out, version);
        }
        ClientFrame::Open { session } => {
            out.push(TAG_OPEN);
            put_u64(out, session);
        }
        ClientFrame::Event {
            session,
            seq,
            event,
        } => {
            out.push(TAG_EVENT);
            put_u64(out, session);
            put_u32(out, seq);
            let (kind, button) = kind_to_bytes(event.kind);
            out.push(kind);
            out.push(button);
            put_f64(out, event.x);
            put_f64(out, event.y);
            put_f64(out, event.t);
        }
        ClientFrame::Close { session, seq } => {
            out.push(TAG_CLOSE);
            put_u64(out, session);
            put_u32(out, seq);
        }
        ClientFrame::Resume { session, last_seq } => {
            out.push(TAG_RESUME);
            put_u64(out, session);
            put_u32(out, last_seq);
        }
        ClientFrame::Handoff { ref snapshot } => {
            out.push(TAG_HANDOFF);
            out.extend_from_slice(snapshot);
        }
        // Handled above; unreachable here.
        ClientFrame::EventBatch { .. } => {}
    }
    finish_frame(out, at);
}

/// Appends `events` for `session` as `EventBatch` frame(s) to `out`:
/// one frame per [`MAX_BATCH_EVENTS`] chunk (a single count-zero frame
/// when `events` is empty). Encoding appends to the caller's buffer, so
/// a connection can reuse one `Vec` for its entire lifetime — the
/// steady-state encode path performs no allocation.
pub fn encode_event_batch(session: u64, events: &[(u32, InputEvent)], out: &mut Vec<u8>) {
    let mut chunks = events.chunks(MAX_BATCH_EVENTS);
    let mut emit = |chunk: &[(u32, InputEvent)]| {
        let at = out.len();
        put_u32(out, 0);
        out.push(TAG_EVENT_BATCH);
        put_u64(out, session);
        put_u16(out, chunk.len() as u16);
        for &(seq, event) in chunk {
            put_u32(out, seq);
            let (kind, button) = kind_to_bytes(event.kind);
            out.push(kind);
            out.push(button);
            put_f64(out, event.x);
            put_f64(out, event.y);
            put_f64(out, event.t);
        }
        finish_frame(out, at);
    };
    match chunks.next() {
        None => emit(&[]),
        Some(first) => {
            emit(first);
            for chunk in chunks {
                emit(chunk);
            }
        }
    }
}

/// Appends one encoded server frame (length prefix included) to `out`.
pub fn encode_server(frame: &ServerFrame, out: &mut Vec<u8>) {
    let at = out.len();
    put_u32(out, 0);
    match *frame {
        ServerFrame::Recognized {
            session,
            seq,
            class,
            points,
        } => {
            out.push(TAG_RECOGNIZED);
            put_u64(out, session);
            put_u32(out, seq);
            put_u16(out, class);
            put_u32(out, points);
        }
        ServerFrame::Manipulate { session, seq, x, y } => {
            out.push(TAG_MANIPULATE);
            put_u64(out, session);
            put_u32(out, seq);
            put_f64(out, x);
            put_f64(out, y);
        }
        ServerFrame::Outcome {
            session,
            seq,
            outcome,
            class,
            total_points,
            faults,
        } => {
            out.push(TAG_OUTCOME);
            put_u64(out, session);
            put_u32(out, seq);
            out.push(outcome.to_u8());
            put_u16(out, class.unwrap_or(NO_CLASS));
            put_u32(out, total_points);
            put_u32(out, faults);
        }
        ServerFrame::Fault { session, seq, code } => {
            out.push(TAG_FAULT);
            put_u64(out, session);
            put_u32(out, seq);
            out.push(code.to_u8());
        }
        ServerFrame::Resumed { session, last_seq } => {
            out.push(TAG_RESUMED);
            put_u64(out, session);
            put_u32(out, last_seq);
        }
        ServerFrame::HandoffAck { session, last_seq } => {
            out.push(TAG_HANDOFF_ACK);
            put_u64(out, session);
            put_u32(out, last_seq);
        }
        ServerFrame::NotOwner { session, owner } => {
            out.push(TAG_NOT_OWNER);
            put_u64(out, session);
            match owner {
                SocketAddr::V4(a) => {
                    out.push(4);
                    out.extend_from_slice(&a.ip().octets());
                    put_u16(out, a.port());
                }
                SocketAddr::V6(a) => {
                    out.push(6);
                    out.extend_from_slice(&a.ip().octets());
                    put_u16(out, a.port());
                }
            }
        }
    }
    finish_frame(out, at);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one frame body.
pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Bytes consumed so far (the cursor position).
    pub(crate) fn consumed(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Malformed { what })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Malformed { what })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
}

/// Splits off the next frame body from `buf`. `Ok(None)` means the buffer
/// holds an incomplete frame (wait for more bytes); `Ok(Some)` yields the
/// body and the total bytes consumed (prefix included).
fn next_body(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    let Some(prefix) = buf.get(..4) else {
        return Ok(None);
    };
    let len = usize::try_from(u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]))
        .map_err(|_| WireError::IntOutOfRange { what: "frame length" })?;
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    // The cap depends on the tag: only EventBatch and Handoff may exceed
    // the single-frame limit. Until the tag byte arrives only the
    // absolute bound (the largest per-tag cap) can be enforced; one more
    // byte settles it.
    if len > MAX_HANDOFF_FRAME_LEN {
        return Err(WireError::Oversized { len });
    }
    let Some(&tag) = buf.get(4) else {
        return Ok(None);
    };
    let cap = match tag {
        TAG_EVENT_BATCH => MAX_BATCH_FRAME_LEN,
        TAG_HANDOFF => MAX_HANDOFF_FRAME_LEN,
        _ => MAX_FRAME_LEN,
    };
    if len > cap {
        return Err(WireError::Oversized { len });
    }
    match buf.get(4..4 + len) {
        Some(body) => Ok(Some((body, 4 + len))),
        None => Ok(None),
    }
}

fn finish_body(cur: &Cur<'_>) -> Result<(), WireError> {
    match cur.remaining() {
        0 => Ok(()),
        extra => Err(WireError::TrailingBytes { extra }),
    }
}

/// A zero-copy view over one `EventBatch` frame's packed records,
/// borrowed straight from the receive buffer. Every record was validated
/// when the view was constructed, so iteration is infallible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventBatchView<'a> {
    session: u64,
    records: &'a [u8],
}

impl<'a> EventBatchView<'a> {
    /// The session every record in the batch belongs to.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len() / EVENT_RECORD_LEN
    }

    /// `true` when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates the `(seq, event)` records in send order without
    /// allocating or copying.
    pub fn iter(&self) -> EventBatchIter<'a> {
        EventBatchIter { rest: self.records }
    }
}

impl<'a> IntoIterator for &EventBatchView<'a> {
    type Item = (u32, InputEvent);
    type IntoIter = EventBatchIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over an [`EventBatchView`]'s records.
#[derive(Debug, Clone)]
pub struct EventBatchIter<'a> {
    rest: &'a [u8],
}

impl Iterator for EventBatchIter<'_> {
    type Item = (u32, InputEvent);

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.len() < EVENT_RECORD_LEN {
            return None;
        }
        let (rec, rest) = self.rest.split_at(EVENT_RECORD_LEN);
        self.rest = rest;
        let seq = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        // Validated at decode time; a mismatch here would be a codec bug
        // and ends iteration rather than panicking.
        let kind = kind_from_bytes(rec[4], rec[5]).ok()?;
        let bits = |at: usize| {
            u64::from_le_bytes([
                rec[at],
                rec[at + 1],
                rec[at + 2],
                rec[at + 3],
                rec[at + 4],
                rec[at + 5],
                rec[at + 6],
                rec[at + 7],
            ])
        };
        let event = InputEvent::new(
            kind,
            f64::from_bits(bits(6)),
            f64::from_bits(bits(14)),
            f64::from_bits(bits(22)),
        );
        Some((seq, event))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rest.len() / EVENT_RECORD_LEN;
        (n, Some(n))
    }
}

/// A decoded client frame that borrows batch payloads from the input
/// buffer instead of copying them — the allocation-free fast path used by
/// the transports. [`ClientFrameView::into_frame`] converts to the owned
/// [`ClientFrame`] when a copy is wanted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientFrameView<'a> {
    /// See [`ClientFrame::Hello`].
    Hello {
        /// The client's wire version.
        version: u16,
    },
    /// See [`ClientFrame::Open`].
    Open {
        /// Session id.
        session: u64,
    },
    /// See [`ClientFrame::Event`].
    Event {
        /// Session id.
        session: u64,
        /// Client-assigned sequence number.
        seq: u32,
        /// The raw event.
        event: InputEvent,
    },
    /// See [`ClientFrame::EventBatch`]; the records stay in the receive
    /// buffer.
    EventBatch(EventBatchView<'a>),
    /// See [`ClientFrame::Close`].
    Close {
        /// Session id.
        session: u64,
        /// Client-assigned sequence number.
        seq: u32,
    },
    /// See [`ClientFrame::Resume`].
    Resume {
        /// Session id.
        session: u64,
        /// Client's last-acked sequence number (advisory).
        last_seq: u32,
    },
    /// See [`ClientFrame::Handoff`]; the snapshot bytes stay in the
    /// receive buffer.
    Handoff {
        /// The encoded snapshot bytes, borrowed from the input buffer.
        snapshot: &'a [u8],
    },
}

impl ClientFrameView<'_> {
    /// Copies the view into an owned [`ClientFrame`] (allocates for
    /// batches; the transports never call this on the hot path).
    pub fn into_frame(self) -> ClientFrame {
        match self {
            ClientFrameView::Hello { version } => ClientFrame::Hello { version },
            ClientFrameView::Open { session } => ClientFrame::Open { session },
            ClientFrameView::Event {
                session,
                seq,
                event,
            } => ClientFrame::Event {
                session,
                seq,
                event,
            },
            ClientFrameView::EventBatch(view) => ClientFrame::EventBatch {
                session: view.session(),
                events: view.iter().collect(),
            },
            ClientFrameView::Close { session, seq } => ClientFrame::Close { session, seq },
            ClientFrameView::Resume { session, last_seq } => {
                ClientFrame::Resume { session, last_seq }
            }
            ClientFrameView::Handoff { snapshot } => ClientFrame::Handoff {
                snapshot: snapshot.to_vec(),
            },
        }
    }
}

fn decode_batch_body<'a>(cur: &mut Cur<'a>) -> Result<EventBatchView<'a>, WireError> {
    let session = cur.u64("session")?;
    let count = usize::from(cur.u16("batch count")?);
    if count > MAX_BATCH_EVENTS {
        return Err(WireError::Malformed {
            what: "batch count",
        });
    }
    let records = cur.take(count * EVENT_RECORD_LEN, "batch records")?;
    // Validate every record now so the view's iterator cannot fail.
    for rec in records.chunks_exact(EVENT_RECORD_LEN) {
        kind_from_bytes(rec[4], rec[5])?;
    }
    Ok(EventBatchView { session, records })
}

/// Decodes the next client frame from `buf` without copying batch
/// payloads. Returns `Ok(None)` while the frame is incomplete,
/// `Ok(Some((view, consumed)))` on success, and a typed [`WireError`] on
/// protocol violation. Never panics on any input.
pub fn decode_client_view(buf: &[u8]) -> Result<Option<(ClientFrameView<'_>, usize)>, WireError> {
    let Some((body, consumed)) = next_body(buf)? else {
        return Ok(None);
    };
    let mut cur = Cur::new(body);
    let view = match cur.u8("tag")? {
        TAG_HELLO => ClientFrameView::Hello {
            version: cur.u16("version")?,
        },
        TAG_OPEN => ClientFrameView::Open {
            session: cur.u64("session")?,
        },
        TAG_EVENT => {
            let session = cur.u64("session")?;
            let seq = cur.u32("seq")?;
            let kind = cur.u8("event kind")?;
            let button = cur.u8("button")?;
            let x = cur.f64("x")?;
            let y = cur.f64("y")?;
            let t = cur.f64("t")?;
            ClientFrameView::Event {
                session,
                seq,
                event: InputEvent::new(kind_from_bytes(kind, button)?, x, y, t),
            }
        }
        TAG_EVENT_BATCH => ClientFrameView::EventBatch(decode_batch_body(&mut cur)?),
        TAG_CLOSE => ClientFrameView::Close {
            session: cur.u64("session")?,
            seq: cur.u32("seq")?,
        },
        TAG_RESUME => ClientFrameView::Resume {
            session: cur.u64("session")?,
            last_seq: cur.u32("last seq")?,
        },
        TAG_HANDOFF => ClientFrameView::Handoff {
            snapshot: cur.take(cur.remaining(), "snapshot")?,
        },
        tag => return Err(WireError::UnknownTag { tag }),
    };
    finish_body(&cur)?;
    Ok(Some((view, consumed)))
}

/// Decodes the next client frame from `buf` into the owned
/// [`ClientFrame`]; same contract as [`decode_client_view`] (which the
/// transports use to avoid the batch copy).
pub fn decode_client(buf: &[u8]) -> Result<Option<(ClientFrame, usize)>, WireError> {
    match decode_client_view(buf)? {
        None => Ok(None),
        Some((view, consumed)) => Ok(Some((view.into_frame(), consumed))),
    }
}

/// Decodes the next server frame from `buf`; same contract as
/// [`decode_client`].
pub fn decode_server(buf: &[u8]) -> Result<Option<(ServerFrame, usize)>, WireError> {
    let Some((body, consumed)) = next_body(buf)? else {
        return Ok(None);
    };
    let mut cur = Cur::new(body);
    let frame = match cur.u8("tag")? {
        TAG_RECOGNIZED => ServerFrame::Recognized {
            session: cur.u64("session")?,
            seq: cur.u32("seq")?,
            class: cur.u16("class")?,
            points: cur.u32("points")?,
        },
        TAG_MANIPULATE => ServerFrame::Manipulate {
            session: cur.u64("session")?,
            seq: cur.u32("seq")?,
            x: cur.f64("x")?,
            y: cur.f64("y")?,
        },
        TAG_OUTCOME => {
            let session = cur.u64("session")?;
            let seq = cur.u32("seq")?;
            let outcome = OutcomeKind::from_u8(cur.u8("outcome")?)?;
            let class = match cur.u16("class")? {
                NO_CLASS => None,
                c => Some(c),
            };
            ServerFrame::Outcome {
                session,
                seq,
                outcome,
                class,
                total_points: cur.u32("total points")?,
                faults: cur.u32("faults")?,
            }
        }
        TAG_FAULT => ServerFrame::Fault {
            session: cur.u64("session")?,
            seq: cur.u32("seq")?,
            code: FaultCode::from_u8(cur.u8("fault code")?)?,
        },
        TAG_RESUMED => ServerFrame::Resumed {
            session: cur.u64("session")?,
            last_seq: cur.u32("last seq")?,
        },
        TAG_HANDOFF_ACK => ServerFrame::HandoffAck {
            session: cur.u64("session")?,
            last_seq: cur.u32("last seq")?,
        },
        TAG_NOT_OWNER => {
            let session = cur.u64("session")?;
            let owner = match cur.u8("address family")? {
                4 => {
                    let b = cur.take(4, "ipv4 octets")?;
                    let ip = Ipv4Addr::new(b[0], b[1], b[2], b[3]);
                    SocketAddr::V4(SocketAddrV4::new(ip, cur.u16("port")?))
                }
                6 => {
                    let b = cur.take(16, "ipv6 octets")?;
                    let mut octets = [0u8; 16];
                    octets.copy_from_slice(b);
                    let ip = Ipv6Addr::from(octets);
                    SocketAddr::V6(SocketAddrV6::new(ip, cur.u16("port")?, 0, 0))
                }
                value => {
                    return Err(WireError::BadEnum {
                        what: "address family",
                        value,
                    })
                }
            };
            ServerFrame::NotOwner { session, owner }
        }
        tag => return Err(WireError::UnknownTag { tag }),
    };
    finish_body(&cur)?;
    Ok(Some((frame, consumed)))
}

/// Incremental framing over a byte stream: [`FrameBuffer::extend`] with
/// whatever the transport delivered, then drain complete frames with
/// [`FrameBuffer::next_client`] / [`FrameBuffer::next_server`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw transport bytes. Compaction happens here — never in
    /// the frame-draining calls — so a [`ClientFrameView`] borrowed from
    /// the buffer stays valid until the next `extend`.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix once it dominates the buffer,
        // keeping the amortized cost linear and the steady-state
        // footprint bounded.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len().saturating_sub(self.start)
    }

    fn advance(&mut self, consumed: usize) {
        self.start += consumed;
    }

    /// Next complete client frame, if one is buffered.
    pub fn next_client(&mut self) -> Result<Option<ClientFrame>, WireError> {
        let tail = self.buf.get(self.start..).unwrap_or(&[]);
        match decode_client(tail)? {
            Some((frame, consumed)) => {
                self.advance(consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Next complete client frame as a borrowed [`ClientFrameView`] — the
    /// allocation-free decode path. The view borrows this buffer and is
    /// invalidated by the next [`FrameBuffer::extend`].
    pub fn next_client_view(&mut self) -> Result<Option<ClientFrameView<'_>>, WireError> {
        match decode_client_view(self.buf.get(self.start..).unwrap_or(&[]))? {
            Some((view, consumed)) => {
                self.start += consumed;
                Ok(Some(view))
            }
            None => Ok(None),
        }
    }

    /// Next complete server frame, if one is buffered.
    pub fn next_server(&mut self) -> Result<Option<ServerFrame>, WireError> {
        let tail = self.buf.get(self.start..).unwrap_or(&[]);
        match decode_server(tail)? {
            Some((frame, consumed)) => {
                self.advance(consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

/// Maps a sanitizer repair to its wire fault code.
pub fn fault_code_of(fault: &grandma_events::StreamFault) -> FaultCode {
    use grandma_events::StreamFault as F;
    match fault {
        F::NonFiniteCoordinates { .. } => FaultCode::NonFiniteCoordinates,
        F::NonFiniteTimestamp { .. } => FaultCode::NonFiniteTimestamp,
        F::OutOfOrder { .. } => FaultCode::OutOfOrder,
        F::DroppedStale { .. } => FaultCode::DroppedStale,
        F::DuplicateMouseDown { .. } => FaultCode::DuplicateMouseDown,
        F::UnmatchedMouseUp { .. } => FaultCode::UnmatchedMouseUp,
        F::MissingMouseUp { .. } => FaultCode::MissingMouseUp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(frame: ClientFrame) {
        let mut bytes = Vec::new();
        encode_client(&frame, &mut bytes);
        let (decoded, consumed) = decode_client(&bytes)
            .expect("decodes")
            .expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    fn roundtrip_server(frame: ServerFrame) {
        let mut bytes = Vec::new();
        encode_server(&frame, &mut bytes);
        let (decoded, consumed) = decode_server(&bytes)
            .expect("decodes")
            .expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn client_frames_round_trip() {
        roundtrip_client(ClientFrame::Hello {
            version: WIRE_VERSION,
        });
        roundtrip_client(ClientFrame::Open { session: u64::MAX });
        roundtrip_client(ClientFrame::Event {
            session: 7,
            seq: 42,
            event: InputEvent::new(
                EventKind::MouseDown {
                    button: Button::Middle,
                },
                1.5,
                -2.5,
                1e12,
            ),
        });
        roundtrip_client(ClientFrame::Close { session: 7, seq: 43 });
        roundtrip_client(ClientFrame::Resume {
            session: 7,
            last_seq: 41,
        });
    }

    #[test]
    fn resume_frames_round_trip_and_view_matches() {
        roundtrip_server(ServerFrame::Resumed {
            session: u64::MAX,
            last_seq: u32::MAX,
        });
        let frame = ClientFrame::Resume {
            session: 0xFEED,
            last_seq: 17,
        };
        let mut bytes = Vec::new();
        encode_client(&frame, &mut bytes);
        let (view, consumed) = decode_client_view(&bytes)
            .expect("decodes")
            .expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(
            view,
            ClientFrameView::Resume {
                session: 0xFEED,
                last_seq: 17
            }
        );
        assert_eq!(view.into_frame(), frame);
    }

    #[test]
    fn server_frames_round_trip() {
        roundtrip_server(ServerFrame::Recognized {
            session: 9,
            seq: 1,
            class: 3,
            points: 17,
        });
        roundtrip_server(ServerFrame::Manipulate {
            session: 9,
            seq: 2,
            x: 0.25,
            y: -0.75,
        });
        roundtrip_server(ServerFrame::Outcome {
            session: 9,
            seq: 3,
            outcome: OutcomeKind::Manipulated,
            class: Some(3),
            total_points: 40,
            faults: 2,
        });
        roundtrip_server(ServerFrame::Outcome {
            session: 9,
            seq: 4,
            outcome: OutcomeKind::Rejected,
            class: None,
            total_points: 5,
            faults: 0,
        });
        roundtrip_server(ServerFrame::Fault {
            session: 9,
            seq: 5,
            code: FaultCode::Busy,
        });
    }

    #[test]
    fn handoff_frames_round_trip_owned_and_viewed() {
        for len in [0usize, 1, 57, 4096] {
            let snapshot: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let frame = ClientFrame::Handoff {
                snapshot: snapshot.clone(),
            };
            let mut bytes = Vec::new();
            encode_client(&frame, &mut bytes);
            let (decoded, consumed) = decode_client(&bytes)
                .expect("decodes")
                .expect("complete frame");
            assert_eq!(consumed, bytes.len(), "len = {len}");
            assert_eq!(decoded, frame, "len = {len}");
            let (view, _) = decode_client_view(&bytes)
                .expect("view decodes")
                .expect("complete");
            let ClientFrameView::Handoff { snapshot: borrowed } = view else {
                panic!("expected a handoff view");
            };
            assert_eq!(borrowed, snapshot.as_slice());
        }
    }

    #[test]
    fn handoff_ack_and_not_owner_round_trip() {
        roundtrip_server(ServerFrame::HandoffAck {
            session: u64::MAX,
            last_seq: 91,
        });
        roundtrip_server(ServerFrame::NotOwner {
            session: 0xFACE,
            owner: "127.0.0.1:9901".parse().expect("v4 addr"),
        });
        roundtrip_server(ServerFrame::NotOwner {
            session: 3,
            owner: "[2001:db8::17]:443".parse().expect("v6 addr"),
        });
    }

    #[test]
    fn not_owner_bad_address_family_is_typed() {
        let mut bytes = Vec::new();
        encode_server(
            &ServerFrame::NotOwner {
                session: 1,
                owner: "10.0.0.1:80".parse().expect("v4 addr"),
            },
            &mut bytes,
        );
        // Family byte sits after prefix(4) + tag(1) + session(8).
        bytes[13] = 9;
        assert_eq!(
            decode_server(&bytes),
            Err(WireError::BadEnum {
                what: "address family",
                value: 9
            })
        );
    }

    #[test]
    fn handoff_cap_is_enforced_per_tag() {
        // A Handoff may exceed the batch cap…
        let frame = ClientFrame::Handoff {
            snapshot: vec![0xAB; MAX_BATCH_FRAME_LEN + 100],
        };
        let mut bytes = Vec::new();
        encode_client(&frame, &mut bytes);
        let (decoded, _) = decode_client(&bytes).expect("decodes").expect("complete");
        assert_eq!(decoded, frame);
        // …but not the handoff cap itself.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((MAX_HANDOFF_FRAME_LEN as u32) + 1).to_le_bytes());
        bytes.push(TAG_HANDOFF);
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::Oversized {
                len: MAX_HANDOFF_FRAME_LEN + 1
            })
        );
        // A non-handoff tag claiming a huge length dies at the small cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        bytes.push(TAG_OPEN);
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn non_finite_floats_cross_the_wire_bit_exact() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let frame = ClientFrame::Event {
                session: 1,
                seq: 0,
                event: InputEvent::new(EventKind::MouseMove, bad, 2.0, bad),
            };
            let mut bytes = Vec::new();
            encode_client(&frame, &mut bytes);
            let (decoded, _) = decode_client(&bytes).unwrap().unwrap();
            if let ClientFrame::Event { event, .. } = decoded {
                assert_eq!(event.x.to_bits(), bad.to_bits());
                assert_eq!(event.t.to_bits(), bad.to_bits());
            } else {
                panic!("wrong frame kind");
            }
        }
    }

    #[test]
    fn incomplete_prefixes_wait_for_more_bytes() {
        let mut bytes = Vec::new();
        encode_client(&ClientFrame::Open { session: 5 }, &mut bytes);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_client(&bytes[..cut]).expect("truncation is not an error"),
                None,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.push(TAG_OPEN);
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn zero_length_and_bad_tag_are_typed_errors() {
        assert_eq!(decode_client(&0u32.to_le_bytes()), Err(WireError::EmptyFrame));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0x7f);
        assert_eq!(decode_client(&bytes), Err(WireError::UnknownTag { tag: 0x7f }));
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let mut bytes = Vec::new();
        encode_client(&ClientFrame::Open { session: 5 }, &mut bytes);
        // Grow the declared length by one and append a stray byte.
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) + 1;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        bytes.push(0xEE);
        assert_eq!(decode_client(&bytes), Err(WireError::TrailingBytes { extra: 1 }));
    }

    fn batch_events(n: usize) -> Vec<(u32, InputEvent)> {
        (0..n)
            .map(|i| {
                let kind = match i % 3 {
                    0 => EventKind::MouseDown {
                        button: Button::Left,
                    },
                    1 => EventKind::MouseMove,
                    _ => EventKind::MouseUp {
                        button: Button::Right,
                    },
                };
                (
                    i as u32,
                    InputEvent::new(kind, i as f64 * 1.5, -(i as f64), i as f64),
                )
            })
            .collect()
    }

    #[test]
    fn event_batch_round_trips_owned_and_viewed() {
        for n in [0usize, 1, 7, MAX_BATCH_EVENTS] {
            let frame = ClientFrame::EventBatch {
                session: 0xDEAD_BEEF,
                events: batch_events(n),
            };
            let mut bytes = Vec::new();
            encode_client(&frame, &mut bytes);
            let (decoded, consumed) = decode_client(&bytes)
                .expect("decodes")
                .expect("complete frame");
            assert_eq!(consumed, bytes.len(), "n = {n}");
            assert_eq!(decoded, frame, "n = {n}");
            // The borrowed view yields the same records without copying.
            let (view, _) = decode_client_view(&bytes)
                .expect("view decodes")
                .expect("complete");
            let ClientFrameView::EventBatch(batch) = view else {
                panic!("expected a batch view");
            };
            assert_eq!(batch.session(), 0xDEAD_BEEF);
            assert_eq!(batch.len(), n);
            let collected: Vec<_> = batch.iter().collect();
            assert_eq!(collected, batch_events(n));
        }
    }

    #[test]
    fn oversized_batches_split_across_frames() {
        let events = batch_events(MAX_BATCH_EVENTS + 3);
        let mut bytes = Vec::new();
        encode_event_batch(9, &events, &mut bytes);
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (view, consumed) = decode_client_view(&bytes[pos..])
                .expect("decodes")
                .expect("complete");
            let ClientFrameView::EventBatch(batch) = view else {
                panic!("expected batch frames");
            };
            assert!(batch.len() <= MAX_BATCH_EVENTS);
            got.extend(batch.iter());
            pos += consumed;
        }
        assert_eq!(got, events, "split batches concatenate losslessly");
    }

    #[test]
    fn batch_count_beyond_cap_is_malformed() {
        let mut bytes = Vec::new();
        encode_event_batch(1, &batch_events(2), &mut bytes);
        // Forge the count to exceed the cap while leaving the length
        // prefix intact: must be rejected, not iterated.
        let count = (MAX_BATCH_EVENTS as u16 + 1).to_le_bytes();
        bytes[13..15].copy_from_slice(&count);
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::Malformed {
                what: "batch count"
            })
        );
    }

    #[test]
    fn batch_record_count_mismatch_is_rejected() {
        let mut bytes = Vec::new();
        encode_event_batch(1, &batch_events(2), &mut bytes);
        // Claim 3 records while carrying 2: the record take runs out.
        bytes[13..15].copy_from_slice(&3u16.to_le_bytes());
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::Malformed {
                what: "batch records"
            })
        );
        // Claim 1 record while carrying 2: trailing bytes.
        let mut bytes = Vec::new();
        encode_event_batch(1, &batch_events(2), &mut bytes);
        bytes[13..15].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::TrailingBytes {
                extra: EVENT_RECORD_LEN
            })
        );
    }

    #[test]
    fn batch_bad_event_kind_is_typed_not_panicking() {
        let mut bytes = Vec::new();
        encode_event_batch(1, &batch_events(2), &mut bytes);
        // First record's kind byte: prefix(4) + tag(1) + session(8) +
        // count(2) + seq(4) = offset 19.
        bytes[19] = 0x7F;
        assert_eq!(
            decode_client(&bytes),
            Err(WireError::BadEnum {
                what: "event kind",
                value: 0x7F
            })
        );
    }

    #[test]
    fn batch_floats_cross_the_wire_bit_exact() {
        let events = vec![
            (0, InputEvent::new(EventKind::MouseMove, f64::NAN, f64::INFINITY, -0.0)),
            (1, InputEvent::new(EventKind::MouseMove, f64::NEG_INFINITY, 1e-310, f64::NAN)),
        ];
        let mut bytes = Vec::new();
        encode_event_batch(5, &events, &mut bytes);
        let (view, _) = decode_client_view(&bytes).unwrap().unwrap();
        let ClientFrameView::EventBatch(batch) = view else {
            panic!("expected batch");
        };
        for ((_, got), (_, want)) in batch.iter().zip(&events) {
            assert_eq!(got.x.to_bits(), want.x.to_bits());
            assert_eq!(got.y.to_bits(), want.y.to_bits());
            assert_eq!(got.t.to_bits(), want.t.to_bits());
        }
    }

    #[test]
    fn frame_buffer_views_survive_byte_at_a_time_chunking() {
        let mut bytes = Vec::new();
        encode_event_batch(7, &batch_events(40), &mut bytes);
        encode_client(&ClientFrame::Close { session: 7, seq: 40 }, &mut bytes);
        let mut fb = FrameBuffer::new();
        let mut batch_records = Vec::new();
        let mut got_close = false;
        for b in bytes {
            fb.extend(&[b]);
            loop {
                match fb.next_client_view().expect("valid stream") {
                    Some(ClientFrameView::EventBatch(batch)) => {
                        batch_records.extend(batch.iter());
                    }
                    Some(ClientFrameView::Close { session: 7, seq: 40 }) => got_close = true,
                    Some(other) => panic!("unexpected frame {other:?}"),
                    None => break,
                }
            }
        }
        assert_eq!(batch_records, batch_events(40));
        assert!(got_close);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut bytes = Vec::new();
        encode_server(
            &ServerFrame::Fault {
                session: 3,
                seq: 9,
                code: FaultCode::OutOfOrder,
            },
            &mut bytes,
        );
        encode_server(
            &ServerFrame::Manipulate {
                session: 3,
                seq: 10,
                x: 1.0,
                y: 2.0,
            },
            &mut bytes,
        );
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in bytes {
            fb.extend(&[b]);
            while let Some(f) = fb.next_server().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], ServerFrame::Fault { .. }));
        assert!(matches!(got[1], ServerFrame::Manipulate { .. }));
        assert_eq!(fb.pending(), 0);
    }
}
