//! A reconnecting wire client: retry, timeout, backoff, and seq-based
//! session resume over TCP.
//!
//! [`ReconnectingClient`] drives **one** session over a TCP connection
//! it is prepared to lose at any moment. Every event is numbered from 1
//! and held in an unacked window until a server frame proves it was
//! processed; when the connection dies the client redials with
//! exponential backoff plus deterministic jitter, sends
//! `Resume { session, last_seq }`, and the **server** answers
//! `Resumed { last_seq }` with what *it* processed — the client then
//! re-sends exactly the window entries above that mark. The server
//! replays nothing and never duplicates an outcome; the client is the
//! retry side of the protocol (DESIGN.md §14).
//!
//! Give-up is typed: [`ClientError::GaveUp`] carries the attempt count
//! and the final I/O error, [`ClientError::Timeout`] the deadline that
//! expired, [`ClientError::Rejected`] the server fault. A caller can
//! distinguish "the service is down" from "my session is gone".
//!
//! Known limitation: a `Fault(Busy)` does not advance the window (the
//! event was *not* processed), but the client does not re-send
//! busy-bounced events either — chaos harnesses should provision queue
//! capacity so sustained `Busy` is not part of the experiment.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use grandma_events::InputEvent;

use crate::wire::{
    encode_client, ClientFrame, FaultCode, FrameBuffer, OutcomeKind, ServerFrame, WireError,
    WIRE_VERSION,
};

/// Retry/timeout/backoff tuning for [`ReconnectingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Dial-and-resume attempts per operation before giving up.
    pub max_attempts: u32,
    /// First backoff delay; doubles per failed attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Per-request deadline: how long one read/write (or one wait for a
    /// specific reply) may take.
    pub request_timeout: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Why a [`ReconnectingClient`] operation failed for good.
#[derive(Debug)]
pub enum ClientError {
    /// Every reconnect attempt failed; carries the final I/O error.
    GaveUp {
        /// Attempts made (= the policy's `max_attempts`).
        attempts: u32,
        /// The error the last attempt died on.
        last: std::io::Error,
    },
    /// A reply the client was owed did not arrive within the deadline.
    Timeout {
        /// The deadline that expired.
        waited: Duration,
    },
    /// The server faulted the session (e.g. `UnknownSession` on resume:
    /// the session is gone and cannot be recovered from this side).
    Rejected {
        /// The wire fault code.
        code: FaultCode,
    },
    /// The server answered `NotOwner`: the cluster ring maps the session
    /// to another node. The caller should [`ReconnectingClient::redirect`]
    /// there and retry.
    Redirected {
        /// The owning node's address.
        owner: SocketAddr,
    },
    /// The server sent bytes that do not decode.
    Protocol(WireError),
    /// The server closed the connection while a reply was outstanding
    /// and reconnecting did not help.
    ServerClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Timeout { waited } => {
                write!(f, "no reply within {waited:?}")
            }
            ClientError::Rejected { code } => write!(f, "server rejected session: {code:?}"),
            ClientError::Redirected { owner } => {
                write!(f, "session is owned by another node: {owner}")
            }
            ClientError::Protocol(e) => write!(f, "undecodable server bytes: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Attempt `n`'s pre-jitter dial backoff: `base_delay` doubling per
/// failed attempt, saturating at `max_delay`. Attempt numbering starts
/// at 1 (attempts 0 and 1 both map to the base delay).
fn backoff_delay(policy: &RetryPolicy, attempt: u32) -> Duration {
    let shift = attempt.saturating_sub(1).min(31);
    policy
        .base_delay
        .saturating_mul(1u32 << shift)
        .min(policy.max_delay)
}

/// Half-to-full jitter on `delay`, driven by an LCG so chaos runs are
/// reproducible: returns a duration in `[delay/2, delay]`.
fn jittered(rng: &mut u64, delay: Duration) -> Duration {
    *rng = rng
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    let frac = ((*rng >> 33) as f64) / ((1u64 << 31) as f64);
    let half = delay.as_secs_f64() / 2.0;
    Duration::from_secs_f64(half + half * frac)
}

/// Drops window entries proven processed: everything with
/// `seq <= acked`.
fn prune_window(window: &mut VecDeque<(u32, InputEvent)>, acked: u32) {
    while window.front().is_some_and(|&(seq, _)| seq <= acked) {
        window.pop_front();
    }
}

/// The seq a server frame proves processing through, if any. `Fault`s
/// prove nothing: a `Busy` bounce in particular means the event was
/// *not* fed.
fn acked_seq(frame: &ServerFrame, session: u64) -> Option<u32> {
    match *frame {
        ServerFrame::Recognized { session: s, seq, .. }
        | ServerFrame::Manipulate { session: s, seq, .. }
        | ServerFrame::Outcome { session: s, seq, .. }
            if s == session =>
        {
            Some(seq)
        }
        _ => None,
    }
}

/// A TCP wire client for one session that transparently survives
/// connection loss. See the module docs for the resume protocol.
pub struct ReconnectingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    session: u64,
    rng: u64,
    stream: Option<TcpStream>,
    frames: FrameBuffer,
    chunk: Vec<u8>,
    scratch: Vec<u8>,
    /// Next event seq to assign; events are numbered from 1 so the
    /// server's `last_seq = 0` unambiguously means "nothing processed".
    next_seq: u32,
    /// Sent-but-unproven events, oldest first, re-sent on resume.
    window: VecDeque<(u32, InputEvent)>,
    /// Frames received for the session, in arrival order.
    inbox: Vec<ServerFrame>,
    /// `true` once the session's `Closed` outcome arrived.
    closed_seen: bool,
    /// Seq assigned to the session's `Close`, once: a retried close
    /// (e.g. after a cluster re-route) must not renumber it, or the
    /// terminal outcome's seq would drift from the single-run truth.
    close_seq: Option<u32>,
    /// Ever sent `Open` (reconnects use `Resume` from then on).
    opened: bool,
    reconnects: u64,
    resent_events: u64,
}

impl ReconnectingClient {
    /// Dials `addr`, performs the `Hello` handshake, and opens
    /// `session`.
    pub fn connect(
        addr: SocketAddr,
        session: u64,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let mut client = Self {
            addr,
            policy,
            session,
            rng: policy.jitter_seed ^ session,
            stream: None,
            frames: FrameBuffer::new(),
            chunk: vec![0u8; 16 * 1024],
            scratch: Vec::new(),
            next_seq: 1,
            window: VecDeque::new(),
            inbox: Vec::new(),
            closed_seen: false,
            close_seq: None,
            opened: false,
            reconnects: 0,
            resent_events: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Times the connection has been re-established after loss.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Window events re-sent across all resumes.
    pub fn resent_events(&self) -> u64 {
        self.resent_events
    }

    /// The session this client drives.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Frames received so far, in order; the internal inbox is drained.
    pub fn take_frames(&mut self) -> Vec<ServerFrame> {
        std::mem::take(&mut self.inbox)
    }

    /// The address the client currently dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cluster redirect: point the client at `addr` and drop the live
    /// connection, so the next operation dials the new node and
    /// `Resume`s the session there. Used when a server answers
    /// `NotOwner { owner }` after a ring change.
    pub fn redirect(&mut self, addr: SocketAddr) {
        if self.addr != addr {
            self.addr = addr;
            self.drop_stream();
        }
    }

    /// Sent-but-unproven events still in the resume window. When this
    /// is 0 every event the client sent has been acked by a reply
    /// frame, and — replies being FIFO per connection — every frame the
    /// server generated for those events has been received.
    pub fn unacked_events(&self) -> usize {
        self.window.len()
    }

    /// Reads whatever the server has sent (waiting up to `wait` for
    /// bytes to arrive) and files it in the inbox without writing
    /// anything: lets callers collect asynchronous outcome frames
    /// between events.
    pub fn pump(&mut self, wait: Duration) -> Result<(), ClientError> {
        self.ensure_connected()?;
        if let Some(stream) = self.stream.as_mut() {
            let _ = stream.set_read_timeout(Some(wait.max(Duration::from_millis(1))));
        }
        let read = self.read_once();
        if let Some(stream) = self.stream.as_mut() {
            let _ = stream.set_read_timeout(Some(self.policy.request_timeout));
        }
        read?;
        self.pump_frames()
    }

    /// The seq assigned to the most recent event (0 before any event).
    /// Lets a routing layer recover the seq of an event whose
    /// `send_event` failed mid-redirect: the event stays in the window
    /// and is re-sent by the resume, so the seq is still valid.
    pub fn last_assigned_seq(&self) -> u32 {
        self.next_seq.wrapping_sub(1)
    }

    /// Dials, handshakes, and opens or resumes the session now if the
    /// connection is down; a no-op while connected. Routing layers call
    /// this after [`ReconnectingClient::redirect`] so the resume (and
    /// the window re-send it implies) happens eagerly rather than on
    /// the next event.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        self.ensure_connected()
    }

    /// Test/chaos hook: kill the connection abruptly. The next
    /// operation reconnects and resumes.
    pub fn force_disconnect(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Sends one event (assigning and returning its seq) and
    /// opportunistically drains any replies into the inbox. Reconnects
    /// and re-sends the unacked window as needed.
    pub fn send_event(&mut self, event: InputEvent) -> Result<u32, ClientError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.window.push_back((seq, event));
        self.ensure_connected()?;
        let frame = ClientFrame::Event {
            session: self.session,
            seq,
            event,
        };
        if self.write_frame(&frame).is_err() {
            // The resume inside re-sends this event from the window.
            self.drop_stream();
            self.ensure_connected()?;
        }
        self.drain_available()?;
        Ok(seq)
    }

    /// Closes the session and waits for its terminal `Closed` outcome,
    /// returning every frame received over the client's lifetime (the
    /// drained inbox). A session the server no longer knows (it was
    /// closed before the connection died) counts as closed.
    pub fn close(&mut self) -> Result<Vec<ServerFrame>, ClientError> {
        let seq = match self.close_seq {
            Some(seq) => seq,
            None => {
                let seq = self.next_seq;
                self.next_seq = self.next_seq.wrapping_add(1);
                self.close_seq = Some(seq);
                seq
            }
        };
        let mut attempts = 0u32;
        while !self.closed_seen {
            attempts += 1;
            let result = self
                .ensure_connected()
                .and_then(|()| {
                    self.write_frame(&ClientFrame::Close {
                        session: self.session,
                        seq,
                    })
                    .map_err(|_| ClientError::ServerClosed)
                })
                .and_then(|()| self.wait_closed());
            match result {
                Ok(()) => break,
                // The session being unknown after a reconnect means the
                // Close landed before the connection died.
                Err(ClientError::Rejected {
                    code: FaultCode::UnknownSession,
                }) => break,
                Err(e) if attempts >= self.policy.max_attempts => return Err(e),
                Err(_) => self.drop_stream(),
            }
        }
        Ok(self.take_frames())
    }

    /// Reads until the session's `Closed` outcome arrives or the
    /// request deadline expires.
    fn wait_closed(&mut self) -> Result<(), ClientError> {
        let deadline = Instant::now() + self.policy.request_timeout;
        while !self.closed_seen {
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout {
                    waited: self.policy.request_timeout,
                });
            }
            self.read_once()?;
            self.pump_frames()?;
        }
        Ok(())
    }

    /// Drains whatever replies are already buffered without blocking
    /// meaningfully (1 ms read timeout).
    fn drain_available(&mut self) -> Result<(), ClientError> {
        let Some(stream) = self.stream.as_mut() else {
            return Ok(());
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        loop {
            match self.read_raw() {
                Ok(0) => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        if let Some(stream) = self.stream.as_mut() {
            let _ = stream.set_read_timeout(Some(self.policy.request_timeout));
        }
        self.pump_frames()
    }

    /// One read respecting the stream's current timeout; a clean server
    /// EOF or I/O error drops the stream and reports `ServerClosed`.
    fn read_once(&mut self) -> Result<(), ClientError> {
        match self.read_raw() {
            Ok(0) => Ok(()),
            Ok(_) => Ok(()),
            Err(_) => {
                self.drop_stream();
                Err(ClientError::ServerClosed)
            }
        }
    }

    /// Reads into the frame buffer. Returns bytes read (0 on timeout);
    /// EOF is an error (the server never half-closes first).
    fn read_raw(&mut self) -> std::io::Result<usize> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(std::io::Error::from(std::io::ErrorKind::NotConnected));
        };
        match stream.read(&mut self.chunk) {
            Ok(0) => Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => {
                self.frames.extend(self.chunk.get(..n).unwrap_or(&[]));
                Ok(n)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(0)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Decodes every complete frame: prunes the window on proof of
    /// processing, files session frames in the inbox, flags `Closed`.
    fn pump_frames(&mut self) -> Result<(), ClientError> {
        while let Some(frame) = self.frames.next_server()? {
            if let Some(acked) = acked_seq(&frame, self.session) {
                prune_window(&mut self.window, acked);
            }
            if let ServerFrame::Outcome {
                session,
                outcome: OutcomeKind::Closed,
                ..
            } = frame
            {
                if session == self.session {
                    self.closed_seen = true;
                }
            }
            self.inbox.push(frame);
        }
        Ok(())
    }

    fn drop_stream(&mut self) {
        self.force_disconnect();
    }

    /// Dials (with backoff + jitter), handshakes, and opens or resumes
    /// the session, re-sending the unacked window per the server's
    /// `Resumed.last_seq`. No-op while connected.
    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.try_session_handshake() {
                Ok(()) => {
                    if attempts > 1 || self.opened {
                        self.reconnects += 1;
                    }
                    self.opened = true;
                    return Ok(());
                }
                // The session is truly gone (or owned elsewhere):
                // backoff cannot fix that... except right after a crash
                // of *our* connection, when the server may not have
                // detached it yet — so retry within the attempt budget
                // before surfacing.
                Err(ClientError::Rejected { code }) if attempts >= self.policy.max_attempts => {
                    return Err(ClientError::Rejected { code });
                }
                // A redirect is authoritative routing, not a transient
                // failure: surface it immediately so the caller can
                // re-dial the owning node.
                Err(ClientError::Redirected { owner }) => {
                    self.drop_stream();
                    return Err(ClientError::Redirected { owner });
                }
                Err(e) => {
                    self.drop_stream();
                    if attempts >= self.policy.max_attempts {
                        return Err(match e {
                            // Stamp the real attempt count over the
                            // per-dial placeholder.
                            ClientError::GaveUp { last, .. } => {
                                ClientError::GaveUp { attempts, last }
                            }
                            ClientError::Rejected { .. } | ClientError::Protocol(_) => e,
                            _ => ClientError::GaveUp {
                                attempts,
                                last: std::io::Error::from(std::io::ErrorKind::ConnectionReset),
                            },
                        });
                    }
                    std::thread::sleep(jittered(
                        &mut self.rng,
                        backoff_delay(&self.policy, attempts),
                    ));
                }
            }
        }
    }

    /// One dial + handshake + open/resume attempt.
    fn try_session_handshake(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.policy.request_timeout)
            .map_err(|last| ClientError::GaveUp { attempts: 1, last })?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.policy.request_timeout));
        let _ = stream.set_write_timeout(Some(self.policy.request_timeout));
        // Stale half-frames from the old connection must not leak in.
        self.frames = FrameBuffer::new();
        self.stream = Some(stream);
        self.write_frame(&ClientFrame::Hello {
            version: WIRE_VERSION,
        })
        .map_err(|_| ClientError::ServerClosed)?;
        if !self.opened {
            self.write_frame(&ClientFrame::Open {
                session: self.session,
            })
            .map_err(|_| ClientError::ServerClosed)?;
            return Ok(());
        }
        // Resume: tell the server what we think, obey what it answers.
        let believed = self
            .window
            .front()
            .map(|&(seq, _)| seq.saturating_sub(1))
            .unwrap_or(self.next_seq.saturating_sub(1));
        self.write_frame(&ClientFrame::Resume {
            session: self.session,
            last_seq: believed,
        })
        .map_err(|_| ClientError::ServerClosed)?;
        let server_last = self.await_resumed()?;
        prune_window(&mut self.window, server_last);
        // Re-send everything the server has not processed.
        let pending: Vec<(u32, InputEvent)> = self.window.iter().copied().collect();
        for (seq, event) in pending {
            self.write_frame(&ClientFrame::Event {
                session: self.session,
                seq,
                event,
            })
            .map_err(|_| ClientError::ServerClosed)?;
            self.resent_events += 1;
        }
        Ok(())
    }

    /// Waits for `Resumed` (returning the server's `last_seq`) or the
    /// resume-rejecting fault.
    fn await_resumed(&mut self) -> Result<u32, ClientError> {
        let deadline = Instant::now() + self.policy.request_timeout;
        loop {
            // Resumed/Fault may arrive interleaved with nothing else on
            // a fresh connection, but scan defensively.
            while let Some(frame) = self.frames.next_server()? {
                match frame {
                    ServerFrame::Resumed { session, last_seq } if session == self.session => {
                        return Ok(last_seq);
                    }
                    ServerFrame::Fault { session, code, .. } if session == self.session => {
                        return Err(ClientError::Rejected { code });
                    }
                    ServerFrame::NotOwner { session, owner } if session == self.session => {
                        return Err(ClientError::Redirected { owner });
                    }
                    other => {
                        if let Some(acked) = acked_seq(&other, self.session) {
                            prune_window(&mut self.window, acked);
                        }
                        self.inbox.push(other);
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout {
                    waited: self.policy.request_timeout,
                });
            }
            self.read_once()?;
        }
    }

    /// Encodes and writes one frame on the live stream.
    fn write_frame(&mut self, frame: &ClientFrame) -> std::io::Result<()> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(std::io::Error::from(std::io::ErrorKind::NotConnected));
        };
        self.scratch.clear();
        encode_client(frame, &mut self.scratch);
        stream.write_all(&self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ServeConfig, SessionRouter};
    use crate::tcp::TcpService;
    use grandma_core::{EagerConfig, EagerRecognizer, FeatureMask};
    use grandma_events::{Button, EventScript};
    use grandma_synth::datasets;
    use std::sync::Arc;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let delay = Duration::from_millis(100);
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..64 {
            let da = jittered(&mut a, delay);
            let db = jittered(&mut b, delay);
            assert_eq!(da, db, "same seed, same jitter");
            assert!(da >= delay / 2 && da <= delay, "out of band: {da:?}");
        }
        let mut c = 43u64;
        let diverged = (0..64).any(|_| jittered(&mut a, delay) != jittered(&mut c, delay));
        assert!(diverged, "different seeds should diverge");
    }

    #[test]
    fn backoff_schedule_is_capped_exponential_with_seeded_jitter() {
        let policy = RetryPolicy::default();
        // The pre-jitter schedule: 10 ms doubling, pinned to the 1 s cap.
        let expected_ms = [10u64, 20, 40, 80, 160, 320, 640, 1000, 1000, 1000];
        for (i, &ms) in expected_ms.iter().enumerate() {
            assert_eq!(
                backoff_delay(&policy, i as u32 + 1),
                Duration::from_millis(ms),
                "attempt {}",
                i + 1
            );
        }
        // Attempt numbering starts at 1; the cap holds arbitrarily far out
        // (the shift saturates rather than overflowing).
        assert_eq!(backoff_delay(&policy, 0), policy.base_delay);
        assert_eq!(backoff_delay(&policy, u32::MAX), policy.max_delay);
        // The jitter stream a client would use (seed xor session id) is
        // deterministic and confined to half-to-full of each delay.
        let mut rng = policy.jitter_seed ^ 7;
        let mut replay = policy.jitter_seed ^ 7;
        for attempt in 1..=10u32 {
            let delay = backoff_delay(&policy, attempt);
            let jittered_delay = jittered(&mut rng, delay);
            assert_eq!(
                jittered_delay,
                jittered(&mut replay, delay),
                "same seed must replay the same schedule"
            );
            assert!(
                jittered_delay >= delay / 2 && jittered_delay <= delay,
                "attempt {attempt}: {jittered_delay:?} outside [{:?}, {delay:?}]",
                delay / 2
            );
        }
    }

    #[test]
    fn window_prunes_only_proven_seqs() {
        use grandma_events::EventKind;
        let ev = |seq: u32| (seq, InputEvent::new(EventKind::MouseMove, 0.0, 0.0, seq as f64));
        let mut window: VecDeque<(u32, InputEvent)> = (1..=5).map(ev).collect();
        prune_window(&mut window, 0);
        assert_eq!(window.len(), 5, "last_seq 0 = nothing processed");
        prune_window(&mut window, 3);
        assert_eq!(window.front().map(|&(s, _)| s), Some(4));
        // Faults (e.g. Busy) must not ack anything.
        let fault = ServerFrame::Fault {
            session: 9,
            seq: 5,
            code: FaultCode::Busy,
        };
        assert_eq!(acked_seq(&fault, 9), None);
        let outcome = ServerFrame::Outcome {
            session: 9,
            seq: 5,
            outcome: OutcomeKind::Recognized,
            class: None,
            total_points: 0,
            faults: 0,
        };
        assert_eq!(acked_seq(&outcome, 9), Some(5));
        assert_eq!(acked_seq(&outcome, 8), None, "foreign session");
    }

    #[test]
    fn give_up_is_typed_and_bounded() {
        // Bind then drop: the port refuses connections quickly.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            request_timeout: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let started = Instant::now();
        match ReconnectingClient::connect(addr, 1, policy) {
            Err(ClientError::GaveUp { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected GaveUp, got {other:?}", other = other.map(|_| "Ok")),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bounded backoff must not hang"
        );
    }

    fn recognizer() -> Arc<EagerRecognizer> {
        let data = datasets::eight_way(0x2b2b, 10, 0);
        let (rec, _) =
            EagerRecognizer::train(&data.training, &FeatureMask::all(), &EagerConfig::default())
                .expect("training succeeds");
        Arc::new(rec)
    }

    #[test]
    fn client_survives_forced_disconnect_without_duplicate_outcomes() {
        let config = ServeConfig {
            detach_on_disconnect: true,
            ..ServeConfig::default()
        };
        let mut service = TcpService::start(
            SessionRouter::new(recognizer(), config),
            "127.0.0.1:0",
        )
        .expect("bind");
        let data = datasets::eight_way(0x7e57, 0, 2);
        let events = EventScript::new()
            .then_gesture(&data.testing[0].gesture, Button::Left)
            .then_gesture(&data.testing[1].gesture, Button::Left)
            .into_events();
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(5),
            ..RetryPolicy::default()
        };
        let mut client =
            ReconnectingClient::connect(service.local_addr(), 11, policy).expect("connect");
        let cut = events.len() / 2;
        for (i, &event) in events.iter().enumerate() {
            if i == cut {
                client.force_disconnect();
            }
            client.send_event(event).expect("send survives disconnect");
        }
        let frames = client.close().expect("close");
        assert!(client.reconnects() >= 1, "must have reconnected");
        // Exactly one terminal Closed, and no outcome seq seen twice:
        // the server replays nothing.
        let closed = frames
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    ServerFrame::Outcome {
                        outcome: OutcomeKind::Closed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(closed, 1, "exactly one Closed: {frames:?}");
        let mut outcome_seqs: Vec<u32> = frames
            .iter()
            .filter_map(|f| match f {
                ServerFrame::Outcome { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        let before = outcome_seqs.len();
        outcome_seqs.dedup();
        assert_eq!(outcome_seqs.len(), before, "duplicate outcome seqs");
        service.shutdown();
    }
}
