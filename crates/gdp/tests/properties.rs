//! Property-style tests for the GDP scene.
//!
//! Plain `#[test]` loops over a seeded xorshift generator (the build
//! environment is offline, so no proptest).

use grandma_gdp::{Scene, Shape};
use grandma_geom::Point;

/// Tiny deterministic PRNG (xorshift64*) for generating test cases.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    Create(f64, f64),
    Delete(usize),
    Translate(usize, f64, f64),
    Copy(usize, f64, f64),
    Group(usize, usize),
    RotateScale(usize, f64),
}

fn random_op(rng: &mut TestRng) -> Op {
    match rng.usize_in(0, 6) {
        0 => Op::Create(rng.range(-100.0, 100.0), rng.range(-100.0, 100.0)),
        1 => Op::Delete(rng.usize_in(0, 20)),
        2 => Op::Translate(
            rng.usize_in(0, 20),
            rng.range(-50.0, 50.0),
            rng.range(-50.0, 50.0),
        ),
        3 => Op::Copy(
            rng.usize_in(0, 20),
            rng.range(-50.0, 50.0),
            rng.range(-50.0, 50.0),
        ),
        4 => Op::Group(rng.usize_in(0, 20), rng.usize_in(0, 20)),
        _ => Op::RotateScale(rng.usize_in(0, 20), rng.range(0.3, 3.0)),
    }
}

fn nth_id(scene: &Scene, n: usize) -> Option<usize> {
    scene.iter().map(|o| o.id).nth(n % scene.len().max(1))
}

#[test]
fn scene_survives_arbitrary_operation_sequences() {
    let mut rng = TestRng::new(0x6d01);
    for _ in 0..64 {
        let n_ops = rng.usize_in(0, 60);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut scene = Scene::new();
        for op in ops {
            match op {
                Op::Create(x, y) => {
                    scene.create(Shape::line(Point::xy(x, y), Point::xy(x + 10.0, y + 5.0)));
                }
                Op::Delete(n) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.delete(id);
                    }
                }
                Op::Translate(n, dx, dy) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.translate(id, dx, dy);
                    }
                }
                Op::Copy(n, dx, dy) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.copy(id, dx, dy);
                    }
                }
                Op::Group(a, b) => {
                    if let (Some(ida), Some(idb)) = (nth_id(&scene, a), nth_id(&scene, b)) {
                        scene.group(&[ida, idb]);
                    }
                }
                Op::RotateScale(n, s) => {
                    if let Some(id) = nth_id(&scene, n) {
                        let c = scene.get(id).unwrap().shape.bbox().center();
                        scene.rotate_scale(
                            id,
                            c,
                            Point::xy(c.x + 10.0, c.y),
                            Point::xy(c.x + 10.0 * s, c.y),
                        );
                    }
                }
            }
            // Invariants after every step:
            // 1. Every group reference points at a live member set with
            //    at least two members.
            for obj in scene.iter() {
                if let Some(g) = obj.group {
                    let members = scene.group_members(obj.id);
                    assert!(members.len() >= 2, "singleton group {g}");
                    assert!(members.contains(&obj.id));
                }
            }
            // 2. All shapes stay finite.
            for obj in scene.iter() {
                let b = obj.shape.bbox();
                assert!(b.min_x.is_finite() && b.max_y.is_finite());
            }
            // 3. Editing target, if any, is alive.
            if let Some(e) = scene.editing() {
                assert!(scene.get(e).is_some());
            }
        }
    }
}

#[test]
fn group_translation_is_rigid() {
    let mut rng = TestRng::new(0x6d02);
    for _ in 0..128 {
        let n = rng.usize_in(2, 6);
        let dx = rng.range(-40.0, 40.0);
        let dy = rng.range(-40.0, 40.0);
        let mut scene = Scene::new();
        let ids: Vec<usize> = (0..n)
            .map(|i| {
                scene.create(Shape::line(
                    Point::xy(i as f64 * 30.0, 0.0),
                    Point::xy(i as f64 * 30.0 + 10.0, 5.0),
                ))
            })
            .collect();
        scene.group(&ids);
        let before: Vec<(f64, f64)> = ids
            .iter()
            .map(|&id| {
                let c = scene.get(id).unwrap().shape.bbox().center();
                (c.x, c.y)
            })
            .collect();
        scene.translate(ids[0], dx, dy);
        for (i, &id) in ids.iter().enumerate() {
            let c = scene.get(id).unwrap().shape.bbox().center();
            assert!((c.x - before[i].0 - dx).abs() < 1e-9);
            assert!((c.y - before[i].1 - dy).abs() < 1e-9);
        }
    }
}

#[test]
fn copy_preserves_the_original() {
    let mut rng = TestRng::new(0x6d03);
    for _ in 0..128 {
        let x = rng.range(-50.0, 50.0);
        let dx = rng.range(-30.0, 30.0);
        let mut scene = Scene::new();
        let id = scene.create(Shape::ellipse(Point::xy(x, 0.0), 5.0, 3.0));
        let original = scene.get(id).unwrap().shape.clone();
        let copy = scene.copy(id, dx, 0.0).unwrap();
        assert_eq!(&scene.get(id).unwrap().shape, &original);
        assert_ne!(copy, id);
        assert_eq!(scene.len(), 2);
    }
}

#[test]
fn pick_always_returns_a_live_containing_object() {
    let mut rng = TestRng::new(0x6d04);
    for _ in 0..128 {
        let n = rng.usize_in(1, 10);
        let shapes: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.range(-50.0, 50.0), rng.range(-50.0, 50.0)))
            .collect();
        let px = rng.range(-60.0, 60.0);
        let py = rng.range(-60.0, 60.0);
        let mut scene = Scene::new();
        for &(x, y) in &shapes {
            scene.create(Shape::rect(Point::xy(x, y), Point::xy(x + 20.0, y + 20.0)));
        }
        if let Some(id) = scene.pick(px, py, 0.0) {
            let obj = scene.get(id);
            assert!(obj.is_some());
            assert!(obj.unwrap().shape.bbox().contains(px, py));
        }
    }
}
