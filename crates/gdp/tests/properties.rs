//! Property-based tests for the GDP scene.

use grandma_gdp::{Scene, Shape};
use grandma_geom::Point;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(f64, f64),
    Delete(usize),
    Translate(usize, f64, f64),
    Copy(usize, f64, f64),
    Group(usize, usize),
    RotateScale(usize, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Op::Create(x, y)),
        (0usize..20).prop_map(Op::Delete),
        (0usize..20, -50.0f64..50.0, -50.0f64..50.0)
            .prop_map(|(i, dx, dy)| Op::Translate(i, dx, dy)),
        (0usize..20, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(i, dx, dy)| Op::Copy(i, dx, dy)),
        (0usize..20, 0usize..20).prop_map(|(a, b)| Op::Group(a, b)),
        (0usize..20, 0.3f64..3.0).prop_map(|(i, s)| Op::RotateScale(i, s)),
    ]
}

fn nth_id(scene: &Scene, n: usize) -> Option<usize> {
    scene.iter().map(|o| o.id).nth(n % scene.len().max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scene_survives_arbitrary_operation_sequences(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut scene = Scene::new();
        for op in ops {
            match op {
                Op::Create(x, y) => {
                    scene.create(Shape::line(Point::xy(x, y), Point::xy(x + 10.0, y + 5.0)));
                }
                Op::Delete(n) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.delete(id);
                    }
                }
                Op::Translate(n, dx, dy) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.translate(id, dx, dy);
                    }
                }
                Op::Copy(n, dx, dy) => {
                    if let Some(id) = nth_id(&scene, n) {
                        scene.copy(id, dx, dy);
                    }
                }
                Op::Group(a, b) => {
                    if let (Some(ida), Some(idb)) = (nth_id(&scene, a), nth_id(&scene, b)) {
                        scene.group(&[ida, idb]);
                    }
                }
                Op::RotateScale(n, s) => {
                    if let Some(id) = nth_id(&scene, n) {
                        let c = scene.get(id).unwrap().shape.bbox().center();
                        scene.rotate_scale(
                            id,
                            c,
                            Point::xy(c.x + 10.0, c.y),
                            Point::xy(c.x + 10.0 * s, c.y),
                        );
                    }
                }
            }
            // Invariants after every step:
            // 1. Every group reference points at a live member set with
            //    at least two members.
            for obj in scene.iter() {
                if let Some(g) = obj.group {
                    let members = scene.group_members(obj.id);
                    prop_assert!(members.len() >= 2, "singleton group {g}");
                    prop_assert!(members.contains(&obj.id));
                }
            }
            // 2. All shapes stay finite.
            for obj in scene.iter() {
                let b = obj.shape.bbox();
                prop_assert!(b.min_x.is_finite() && b.max_y.is_finite());
            }
            // 3. Editing target, if any, is alive.
            if let Some(e) = scene.editing() {
                prop_assert!(scene.get(e).is_some());
            }
        }
    }

    #[test]
    fn group_translation_is_rigid(n in 2usize..6, dx in -40.0f64..40.0, dy in -40.0f64..40.0) {
        let mut scene = Scene::new();
        let ids: Vec<usize> = (0..n)
            .map(|i| scene.create(Shape::line(Point::xy(i as f64 * 30.0, 0.0), Point::xy(i as f64 * 30.0 + 10.0, 5.0))))
            .collect();
        scene.group(&ids);
        let before: Vec<(f64, f64)> = ids
            .iter()
            .map(|&id| {
                let c = scene.get(id).unwrap().shape.bbox().center();
                (c.x, c.y)
            })
            .collect();
        scene.translate(ids[0], dx, dy);
        for (i, &id) in ids.iter().enumerate() {
            let c = scene.get(id).unwrap().shape.bbox().center();
            prop_assert!((c.x - before[i].0 - dx).abs() < 1e-9);
            prop_assert!((c.y - before[i].1 - dy).abs() < 1e-9);
        }
    }

    #[test]
    fn copy_preserves_the_original(x in -50.0f64..50.0, dx in -30.0f64..30.0) {
        let mut scene = Scene::new();
        let id = scene.create(Shape::ellipse(Point::xy(x, 0.0), 5.0, 3.0));
        let original = scene.get(id).unwrap().shape.clone();
        let copy = scene.copy(id, dx, 0.0).unwrap();
        prop_assert_eq!(&scene.get(id).unwrap().shape, &original);
        prop_assert_ne!(copy, id);
        prop_assert_eq!(scene.len(), 2);
    }

    #[test]
    fn pick_always_returns_a_live_containing_object(
        shapes in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..10),
        px in -60.0f64..60.0,
        py in -60.0f64..60.0,
    ) {
        let mut scene = Scene::new();
        for &(x, y) in &shapes {
            scene.create(Shape::rect(Point::xy(x, y), Point::xy(x + 20.0, y + 20.0)));
        }
        if let Some(id) = scene.pick(px, py, 0.0) {
            let obj = scene.get(id);
            prop_assert!(obj.is_some());
            prop_assert!(obj.unwrap().shape.bbox().contains(px, py));
        }
    }
}
