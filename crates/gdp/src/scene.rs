//! The GDP drawing: an ordered collection of shapes with grouping.

use grandma_geom::{BBox, Point, Transform};

use crate::shape::Shape;

/// Identifier of an object within a [`Scene`].
pub type ObjectId = usize;

/// One object in the scene.
#[derive(Debug, Clone)]
pub struct SceneObject {
    /// The object's id.
    pub id: ObjectId,
    /// Its shape.
    pub shape: Shape,
    /// The composite (group) it belongs to, if any. Group ids are the id
    /// of the group's representative — see [`Scene::group`].
    pub group: Option<ObjectId>,
}

/// The drawing: objects in creation order, plus grouping and editing
/// state.
///
/// Operations mirror GDP's gesture commands: create, delete (with
/// touch-to-extend), copy, move, rotate-scale, group (with
/// touch-to-extend), and control-point editing (the `edit` gesture).
#[derive(Debug, Default)]
pub struct Scene {
    objects: Vec<SceneObject>,
    next_id: ObjectId,
    /// The object whose control points are showing (after an `edit`
    /// gesture), if any.
    editing: Option<ObjectId>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shape; returns its id.
    pub fn create(&mut self, shape: Shape) -> ObjectId {
        let id = self.next_id;
        self.next_id += 1;
        self.objects.push(SceneObject {
            id,
            shape,
            group: None,
        });
        id
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` when the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns an object.
    pub fn get(&self, id: ObjectId) -> Option<&SceneObject> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// Returns an object mutably.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut SceneObject> {
        self.objects.iter_mut().find(|o| o.id == id)
    }

    /// Iterates objects in creation (z) order.
    pub fn iter(&self) -> impl Iterator<Item = &SceneObject> {
        self.objects.iter()
    }

    /// The topmost object whose bounding box (expanded by `slop`) contains
    /// the point — GDP's picking rule for move/copy/delete/rotate-scale
    /// gesture starts.
    pub fn pick(&self, x: f64, y: f64, slop: f64) -> Option<ObjectId> {
        self.objects
            .iter()
            .rev()
            .find(|o| o.shape.bbox().expanded(slop).contains(x, y))
            .map(|o| o.id)
    }

    /// Deletes an object (and returns whether it existed). Deleting a
    /// grouped object deletes the whole group, since GDP composites act as
    /// single objects.
    pub fn delete(&mut self, id: ObjectId) -> bool {
        let Some(obj) = self.get(id) else {
            return false;
        };
        match obj.group {
            Some(g) => {
                let before = self.objects.len();
                self.objects.retain(|o| o.group != Some(g));
                if self.editing.is_some_and(|e| self.get(e).is_none()) {
                    self.editing = None;
                }
                before != self.objects.len()
            }
            None => {
                self.objects.retain(|o| o.id != id);
                if self.editing == Some(id) {
                    self.editing = None;
                }
                true
            }
        }
    }

    /// Returns every member of `id`'s group (or just `id` when
    /// ungrouped).
    pub fn group_members(&self, id: ObjectId) -> Vec<ObjectId> {
        match self.get(id).and_then(|o| o.group) {
            Some(g) => self
                .objects
                .iter()
                .filter(|o| o.group == Some(g))
                .map(|o| o.id)
                .collect(),
            None => vec![id],
        }
    }

    /// Forms a composite out of the given objects (the `group` gesture);
    /// returns the group id (the lowest member id), or `None` when fewer
    /// than two distinct objects result (a composite of one is not a
    /// composite). Objects already in groups bring their whole group
    /// along.
    pub fn group(&mut self, ids: &[ObjectId]) -> Option<ObjectId> {
        let mut members: Vec<ObjectId> = Vec::new();
        for &id in ids {
            if self.get(id).is_none() {
                continue;
            }
            for m in self.group_members(id) {
                if !members.contains(&m) {
                    members.push(m);
                }
            }
        }
        if members.len() < 2 {
            return None;
        }
        let gid = members.iter().min().copied()?;
        for o in self.objects.iter_mut() {
            if members.contains(&o.id) {
                o.group = Some(gid);
            }
        }
        Some(gid)
    }

    /// Adds an object (and its group) to an existing group — the
    /// manipulation-phase "touching them" extension of the `group`
    /// gesture.
    pub fn add_to_group(&mut self, group: ObjectId, id: ObjectId) {
        let members = self.group_members(id);
        for o in self.objects.iter_mut() {
            if members.contains(&o.id) {
                o.group = Some(group);
            }
        }
    }

    /// Translates an object (with its group).
    pub fn translate(&mut self, id: ObjectId, dx: f64, dy: f64) {
        let members = self.group_members(id);
        for o in self.objects.iter_mut() {
            if members.contains(&o.id) {
                o.shape.translate(dx, dy);
            }
        }
    }

    /// Copies an object (with its group), translated by `(dx, dy)`;
    /// returns the id of the copy (group id for composites).
    pub fn copy(&mut self, id: ObjectId, dx: f64, dy: f64) -> Option<ObjectId> {
        let members = self.group_members(id);
        if members.is_empty() || self.get(id).is_none() {
            return None;
        }
        let mut new_ids = Vec::new();
        for m in members {
            let mut shape = self.get(m)?.shape.clone();
            shape.translate(dx, dy);
            new_ids.push(self.create(shape));
        }
        if new_ids.len() > 1 {
            self.group(&new_ids)
        } else {
            new_ids.first().copied()
        }
    }

    /// Applies a rotate-scale about a pivot so that the point that was at
    /// `from` lands at `to` (GDP's rotate-scale manipulation: the final
    /// gesture point is dragged around to set size and orientation
    /// simultaneously).
    pub fn rotate_scale(&mut self, id: ObjectId, pivot: Point, from: Point, to: Point) {
        let r_from = pivot.distance(&from);
        let r_to = pivot.distance(&to);
        if r_from < 1e-9 {
            return;
        }
        let scale = r_to / r_from;
        let angle = pivot.angle_to(&to) - pivot.angle_to(&from);
        let t = Transform::translation(pivot.x, pivot.y)
            .then_inner(&Transform::rotation(angle))
            .then_inner(&Transform::scale(scale))
            .then_inner(&Transform::translation(-pivot.x, -pivot.y));
        let members = self.group_members(id);
        for o in self.objects.iter_mut() {
            if members.contains(&o.id) {
                o.shape.apply(&t);
            }
        }
    }

    /// Starts control-point editing of an object (the `edit` gesture).
    pub fn begin_edit(&mut self, id: ObjectId) {
        if self.get(id).is_some() {
            self.editing = Some(id);
        }
    }

    /// The object currently showing control points.
    pub fn editing(&self) -> Option<ObjectId> {
        self.editing
    }

    /// Stops editing.
    pub fn end_edit(&mut self) {
        self.editing = None;
    }

    /// The bounding box of the whole drawing.
    pub fn bbox(&self) -> BBox {
        let mut b = BBox::empty();
        for o in &self.objects {
            b.union(&o.shape.bbox());
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_at(scene: &mut Scene, x: f64) -> ObjectId {
        scene.create(Shape::line(Point::xy(x, 0.0), Point::xy(x + 10.0, 0.0)))
    }

    #[test]
    fn create_and_pick() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = s.create(Shape::rect(
            Point::xy(100.0, 100.0),
            Point::xy(120.0, 120.0),
        ));
        assert_eq!(s.pick(5.0, 0.0, 2.0), Some(a));
        assert_eq!(s.pick(110.0, 110.0, 0.0), Some(b));
        assert_eq!(s.pick(500.0, 500.0, 0.0), None);
    }

    #[test]
    fn pick_prefers_topmost() {
        let mut s = Scene::new();
        let _a = s.create(Shape::rect(Point::xy(0.0, 0.0), Point::xy(10.0, 10.0)));
        let b = s.create(Shape::rect(Point::xy(0.0, 0.0), Point::xy(10.0, 10.0)));
        assert_eq!(s.pick(5.0, 5.0, 0.0), Some(b));
    }

    #[test]
    fn delete_removes_object() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        assert!(s.delete(a));
        assert!(!s.delete(a));
        assert!(s.is_empty());
    }

    #[test]
    fn group_moves_as_one() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = line_at(&mut s, 50.0);
        let g = s.group(&[a, b]).unwrap();
        assert_eq!(g, a.min(b));
        s.translate(a, 0.0, 10.0);
        assert_eq!(s.get(b).unwrap().shape.bbox().min_y, 10.0);
    }

    #[test]
    fn group_of_groups_flattens() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = line_at(&mut s, 50.0);
        let c = line_at(&mut s, 100.0);
        s.group(&[a, b]);
        let g2 = s.group(&[a, c]).unwrap();
        assert_eq!(s.group_members(g2).len(), 3);
    }

    #[test]
    fn add_to_group_extends_composite() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = line_at(&mut s, 50.0);
        let c = line_at(&mut s, 100.0);
        let g = s.group(&[a, b]).unwrap();
        s.add_to_group(g, c);
        assert_eq!(s.group_members(a).len(), 3);
    }

    #[test]
    fn deleting_a_group_member_deletes_the_group() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = line_at(&mut s, 50.0);
        s.group(&[a, b]);
        assert!(s.delete(a));
        assert!(s.is_empty(), "composites act as single objects");
    }

    #[test]
    fn copy_duplicates_with_offset() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let copy = s.copy(a, 5.0, 5.0).unwrap();
        assert_ne!(copy, a);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(copy).unwrap().shape.bbox().min_x, 5.0);
    }

    #[test]
    fn copy_of_group_copies_all_members() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        let b = line_at(&mut s, 50.0);
        s.group(&[a, b]);
        let copy = s.copy(a, 0.0, 100.0).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.group_members(copy).len(), 2);
    }

    #[test]
    fn rotate_scale_doubles_size() {
        let mut s = Scene::new();
        let a = s.create(Shape::line(Point::xy(0.0, 0.0), Point::xy(10.0, 0.0)));
        // Pivot at origin; the point previously at (10, 0) is dragged to
        // (20, 0): pure 2x scale.
        s.rotate_scale(
            a,
            Point::xy(0.0, 0.0),
            Point::xy(10.0, 0.0),
            Point::xy(20.0, 0.0),
        );
        assert_eq!(s.get(a).unwrap().shape.bbox().max_x, 20.0);
    }

    #[test]
    fn rotate_scale_quarter_turn() {
        let mut s = Scene::new();
        let a = s.create(Shape::line(Point::xy(0.0, 0.0), Point::xy(10.0, 0.0)));
        s.rotate_scale(
            a,
            Point::xy(0.0, 0.0),
            Point::xy(10.0, 0.0),
            Point::xy(0.0, 10.0),
        );
        let b = s.get(a).unwrap().shape.bbox();
        assert!(b.max_y > 9.9 && b.width() < 0.1);
    }

    #[test]
    fn editing_lifecycle() {
        let mut s = Scene::new();
        let a = line_at(&mut s, 0.0);
        assert_eq!(s.editing(), None);
        s.begin_edit(a);
        assert_eq!(s.editing(), Some(a));
        s.delete(a);
        assert_eq!(s.editing(), None, "deleting the edited object ends editing");
    }

    #[test]
    fn scene_bbox_unions_objects() {
        let mut s = Scene::new();
        line_at(&mut s, 0.0);
        line_at(&mut s, 100.0);
        let b = s.bbox();
        assert_eq!(b.min_x, 0.0);
        assert_eq!(b.max_x, 110.0);
    }
}
