//! GDP drawing primitives.

use grandma_geom::{BBox, Point, Transform};

/// A drawable GDP object.
///
/// Shapes carry exactly the parameters Figure 3 says gestures determine:
/// lines have two endpoints and a thickness (the modified GDP maps gesture
/// length to thickness), rectangles have two corners and an orientation
/// (the modified GDP maps the gesture's initial angle to it), ellipses
/// have a center plus radii, text has a position and content, dots a
/// position.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A line segment.
    Line {
        /// First endpoint (set at recognition time).
        p0: Point,
        /// Second endpoint (rubberbanded during manipulation).
        p1: Point,
        /// Stroke thickness.
        thickness: f64,
    },
    /// A rectangle given by two opposite corners, rotated by
    /// `orientation` radians about its first corner.
    Rect {
        /// First corner (recognition time).
        c0: Point,
        /// Opposite corner (manipulation).
        c1: Point,
        /// Orientation with respect to the horizontal.
        orientation: f64,
    },
    /// An axis-aligned ellipse.
    Ellipse {
        /// Center (recognition time).
        center: Point,
        /// Horizontal radius (manipulation).
        rx: f64,
        /// Vertical radius (manipulation).
        ry: f64,
    },
    /// A text label.
    Text {
        /// Anchor position.
        pos: Point,
        /// Contents.
        content: String,
    },
    /// A dot.
    Dot {
        /// Position.
        pos: Point,
    },
}

impl Shape {
    /// A line of default thickness 1.
    pub fn line(p0: Point, p1: Point) -> Shape {
        Shape::Line {
            p0,
            p1,
            thickness: 1.0,
        }
    }

    /// An axis-aligned rectangle.
    pub fn rect(c0: Point, c1: Point) -> Shape {
        Shape::Rect {
            c0,
            c1,
            orientation: 0.0,
        }
    }

    /// An ellipse.
    pub fn ellipse(center: Point, rx: f64, ry: f64) -> Shape {
        Shape::Ellipse { center, rx, ry }
    }

    /// The shape's bounding box.
    pub fn bbox(&self) -> BBox {
        match self {
            Shape::Line { p0, p1, .. } => {
                let mut b = BBox::empty();
                b.include(p0);
                b.include(p1);
                b
            }
            Shape::Rect {
                c0,
                c1,
                orientation,
            } => {
                let mut b = BBox::empty();
                for p in rect_corners(c0, c1, *orientation) {
                    b.include(&p);
                }
                b
            }
            Shape::Ellipse { center, rx, ry } => BBox::from_corners(
                center.x - rx.abs(),
                center.y - ry.abs(),
                center.x + rx.abs(),
                center.y + ry.abs(),
            ),
            Shape::Text { pos, content } => BBox::from_corners(
                pos.x,
                pos.y,
                pos.x + 6.0 * content.len().max(1) as f64,
                pos.y + 10.0,
            ),
            Shape::Dot { pos } => {
                BBox::from_corners(pos.x - 1.0, pos.y - 1.0, pos.x + 1.0, pos.y + 1.0)
            }
        }
    }

    /// Translates the shape.
    pub fn translate(&mut self, dx: f64, dy: f64) {
        let t = Transform::translation(dx, dy);
        self.apply(&t);
    }

    /// Applies an affine transform to the shape's defining points.
    ///
    /// Radii and thickness scale by the transform's average stretch; text
    /// content is unaffected.
    pub fn apply(&mut self, t: &Transform) {
        // Estimate uniform scale from the image of a unit vector.
        let o = t.apply(&Point::xy(0.0, 0.0));
        let u = t.apply(&Point::xy(1.0, 0.0));
        let scale = o.distance(&u);
        match self {
            Shape::Line { p0, p1, thickness } => {
                *p0 = t.apply(p0);
                *p1 = t.apply(p1);
                *thickness *= scale;
            }
            Shape::Rect {
                c0,
                c1,
                orientation,
            } => {
                let rot = {
                    let v = t.apply(&Point::xy(1.0, 0.0));
                    (v.y - o.y).atan2(v.x - o.x)
                };
                *c0 = t.apply(c0);
                *c1 = t.apply(c1);
                *orientation += rot;
            }
            Shape::Ellipse { center, rx, ry } => {
                *center = t.apply(center);
                *rx *= scale;
                *ry *= scale;
            }
            Shape::Text { pos, .. } => {
                *pos = t.apply(pos);
            }
            Shape::Dot { pos } => {
                *pos = t.apply(pos);
            }
        }
    }

    /// The control points exposed by the `edit` gesture: dragging one
    /// rescales/reshapes the object directly.
    pub fn control_points(&self) -> Vec<Point> {
        match self {
            Shape::Line { p0, p1, .. } => vec![*p0, *p1],
            Shape::Rect {
                c0,
                c1,
                orientation,
            } => rect_corners(c0, c1, *orientation).to_vec(),
            Shape::Ellipse { center, rx, ry } => vec![
                Point::xy(center.x + rx, center.y),
                Point::xy(center.x - rx, center.y),
                Point::xy(center.x, center.y + ry),
                Point::xy(center.x, center.y - ry),
            ],
            Shape::Text { pos, .. } => vec![*pos],
            Shape::Dot { pos } => vec![*pos],
        }
    }

    /// Moves one control point (index into [`Shape::control_points`]) to a
    /// new position, reshaping the object.
    pub fn move_control_point(&mut self, index: usize, to: Point) {
        match self {
            Shape::Line { p0, p1, .. } => {
                if index == 0 {
                    *p0 = to;
                } else {
                    *p1 = to;
                }
            }
            Shape::Rect { c0, c1, .. } => {
                // Opposite-corner editing: indices 0/2 map to c0/c1; side
                // corners adjust both coordinates.
                match index {
                    0 => *c0 = to,
                    2 => *c1 = to,
                    1 => {
                        c1.x = to.x;
                        c0.y = to.y;
                    }
                    _ => {
                        c0.x = to.x;
                        c1.y = to.y;
                    }
                }
            }
            Shape::Ellipse { center, rx, ry } => match index {
                0 | 1 => *rx = (to.x - center.x).abs(),
                _ => *ry = (to.y - center.y).abs(),
            },
            Shape::Text { pos, .. } | Shape::Dot { pos } => *pos = to,
        }
    }

    /// A short kind name for rendering and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            Shape::Line { .. } => "line",
            Shape::Rect { .. } => "rect",
            Shape::Ellipse { .. } => "ellipse",
            Shape::Text { .. } => "text",
            Shape::Dot { .. } => "dot",
        }
    }
}

fn rect_corners(c0: &Point, c1: &Point, orientation: f64) -> [Point; 4] {
    // The rectangle has corner c0, with sides at `orientation`; c1 is the
    // opposite corner expressed in world space.
    let rot = Transform::rotation_about(orientation, c0.x, c0.y);
    let inv = Transform::rotation_about(-orientation, c0.x, c0.y);
    let local_c1 = inv.apply(c1);
    [
        *c0,
        rot.apply(&Point::xy(local_c1.x, c0.y)),
        *c1,
        rot.apply(&Point::xy(c0.x, local_c1.y)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn line_bbox_covers_endpoints() {
        let l = Shape::line(Point::xy(0.0, 5.0), Point::xy(10.0, -5.0));
        let b = l.bbox();
        assert_eq!((b.min_x, b.min_y, b.max_x, b.max_y), (0.0, -5.0, 10.0, 5.0));
    }

    #[test]
    fn axis_aligned_rect_bbox() {
        let r = Shape::rect(Point::xy(1.0, 1.0), Point::xy(5.0, 3.0));
        let b = r.bbox();
        assert_eq!((b.min_x, b.max_x), (1.0, 5.0));
    }

    #[test]
    fn rotated_rect_bbox_grows() {
        let mut r = Shape::rect(Point::xy(0.0, 0.0), Point::xy(4.0, 2.0));
        if let Shape::Rect { orientation, .. } = &mut r {
            *orientation = FRAC_PI_2 / 2.0; // 45 degrees
        }
        let b = r.bbox();
        assert!(b.width() > 0.0 && b.height() > 0.0);
    }

    #[test]
    fn translate_moves_bbox() {
        let mut e = Shape::ellipse(Point::xy(0.0, 0.0), 2.0, 1.0);
        e.translate(10.0, 20.0);
        let b = e.bbox();
        assert_eq!(b.center().x, 10.0);
        assert_eq!(b.center().y, 20.0);
    }

    #[test]
    fn scale_about_grows_radii_and_thickness() {
        let mut l = Shape::line(Point::xy(0.0, 0.0), Point::xy(10.0, 0.0));
        l.apply(&Transform::scale_about(2.0, 0.0, 0.0));
        match l {
            Shape::Line { p1, thickness, .. } => {
                assert_eq!(p1.x, 20.0);
                assert_eq!(thickness, 2.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn rotation_updates_rect_orientation() {
        let mut r = Shape::rect(Point::xy(0.0, 0.0), Point::xy(4.0, 2.0));
        r.apply(&Transform::rotation(FRAC_PI_2));
        match r {
            Shape::Rect { orientation, .. } => {
                assert!((orientation - FRAC_PI_2).abs() < 1e-9);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn control_points_match_shape_kind() {
        assert_eq!(
            Shape::line(Point::xy(0.0, 0.0), Point::xy(1.0, 0.0))
                .control_points()
                .len(),
            2
        );
        assert_eq!(
            Shape::rect(Point::xy(0.0, 0.0), Point::xy(1.0, 1.0))
                .control_points()
                .len(),
            4
        );
        assert_eq!(
            Shape::ellipse(Point::xy(0.0, 0.0), 1.0, 1.0)
                .control_points()
                .len(),
            4
        );
    }

    #[test]
    fn moving_a_line_control_point_reshapes() {
        let mut l = Shape::line(Point::xy(0.0, 0.0), Point::xy(10.0, 0.0));
        l.move_control_point(1, Point::xy(5.0, 5.0));
        match l {
            Shape::Line { p1, .. } => assert_eq!((p1.x, p1.y), (5.0, 5.0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn moving_an_ellipse_control_point_changes_radius() {
        let mut e = Shape::ellipse(Point::xy(0.0, 0.0), 2.0, 1.0);
        e.move_control_point(0, Point::xy(5.0, 0.0));
        match e {
            Shape::Ellipse { rx, .. } => assert_eq!(rx, 5.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(
            Shape::Dot {
                pos: Point::xy(0.0, 0.0)
            }
            .kind(),
            "dot"
        );
        assert_eq!(
            Shape::Text {
                pos: Point::xy(0.0, 0.0),
                content: "hi".into()
            }
            .kind(),
            "text"
        );
    }
}
